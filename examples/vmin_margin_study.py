#!/usr/bin/env python3
"""Vmin margin study: how much guard-band does each noise scenario eat?

Reproduces the flavor of the paper's Figure 12: undervolt the chip in
0.5 % steps under different stressmark configurations until the R-Unit
reports the first error, and compare the available margins — including
the extrapolated worst-case *customer* workload the paper uses to argue
there is "plenty of margin for optimization opportunities".

Run:  python examples/vmin_margin_study.py
"""

from repro import RunOptions, StressmarkGenerator, reference_chip
from repro.analysis.margins import customer_margin_line
from repro.analysis.report import render_table
from repro.measure.vmin import run_vmin_experiment


def main() -> None:
    generator = StressmarkGenerator(epi_repetitions=200)
    chip = reference_chip()
    options = RunOptions(segments=6)

    scenarios = [
        ("sync, 1000 events, 2.6 MHz", dict(freq_hz=2.6e6, synchronize=True)),
        ("sync, 1 event, 2.6 MHz",
         dict(freq_hz=2.6e6, synchronize=True, n_events=1)),
        ("sync, 1000 events, 37 kHz", dict(freq_hz=3.7e4, synchronize=True)),
        ("no sync, 2.6 MHz", dict(freq_hz=2.6e6, synchronize=False)),
        ("sync, 1 Hz", dict(freq_hz=1.0, synchronize=True)),
        ("sync, 100 MHz", dict(freq_hz=1e8, synchronize=True)),
    ]

    rows = []
    for name, spec in scenarios:
        program = generator.max_didt(**spec).current_program()
        result = run_vmin_experiment(chip, [program] * 6, options=options)
        rows.append([
            name,
            f"{result.margin_frac * 100:.1f}%",
            result.steps_survived,
            f"{result.simulated_minutes:.0f} min",
        ])

    customer = customer_margin_line(
        chip,
        generator.max_didt(freq_hz=2.6e6, synchronize=False).current_program(),
        options=options,
    )
    rows.append([
        "customer worst case (80% ΔI, no sync)",
        f"{customer.margin_frac * 100:.1f}%",
        customer.steps_survived,
        f"{customer.simulated_minutes:.0f} min",
    ])

    print(render_table(
        ["scenario", "available margin", "0.5% steps survived",
         "hardware turnaround"],
        rows,
        title="Vmin margins (cf. paper Fig. 12)",
    ))
    print(
        "\nReadings to note: synchronized scenarios cluster at low margin "
        "regardless of event count and frequency; removing synchronization "
        "more than doubles the margin; and the realistic customer ceiling "
        "leaves room for dynamic guard-banding."
    )


if __name__ == "__main__":
    main()
