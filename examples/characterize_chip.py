#!/usr/bin/env python3
"""Characterize a chip's voltage-noise behavior, the paper's §V flow.

Sweeps the dI/dt stressmark's stimulus frequency with and without TOD
synchronization, locates the resonant bands, and compares them with the
PDN impedance profile — the simulation analogue of Figures 7a/7b/9.

Run:  python examples/characterize_chip.py
"""

from repro import ChipRunner, RunOptions, StressmarkGenerator, reference_chip
from repro.analysis.report import render_series
from repro.analysis.sensitivity import (
    default_frequency_grid,
    sweep_stimulus_frequency,
)
from repro.pdn.impedance import find_resonances, impedance_profile
from repro.units import format_freq


def main() -> None:
    generator = StressmarkGenerator(epi_repetitions=200)
    chip = reference_chip()
    options = RunOptions(segments=6)

    # --- impedance profile (design-side view) -------------------------
    profile = impedance_profile(
        chip.netlist, "load_core0", "core0", f_min=1e3, f_max=1e9,
        modal=chip.modal,
    )
    print("PDN impedance profile — resonant bands:")
    for freq, ohms in find_resonances(profile):
        print(f"  {format_freq(freq):>10}: {ohms * 1e3:.2f} mOhm")

    # --- measured noise sweep (workload-side view) ---------------------
    freqs = default_frequency_grid(points_per_decade=4)
    unsync = sweep_stimulus_frequency(
        generator, chip, freqs, synchronize=False, options=options
    )
    synced = sweep_stimulus_frequency(
        generator, chip, freqs, synchronize=True, options=options
    )
    print()
    print(
        render_series(
            "stimulus",
            [format_freq(f) for f in freqs],
            {
                "unsync max %p2p": [p.max_p2p for p in unsync],
                "sync max %p2p": [p.max_p2p for p in synced],
                "sync uplift": [
                    s.max_p2p - u.max_p2p for s, u in zip(synced, unsync)
                ],
            },
            title="Noise vs stimulus frequency (cf. paper Figs. 7a and 9)",
        )
    )

    peak = max(synced, key=lambda p: p.max_p2p)
    print(
        f"\nNoisiest configuration: synchronized stressmarks at "
        f"{format_freq(peak.freq_hz)} -> {peak.max_p2p:.1f} %p2p "
        f"(per-core: {', '.join(f'{v:.0f}' for v in peak.p2p_by_core)})"
    )
    print(
        "Note how the measured noise bands line up with the impedance "
        "peaks, and how synchronization lifts the whole spectrum."
    )


if __name__ == "__main__":
    main()
