#!/usr/bin/env python3
"""The mitigation playbook: scheduler, staggerer, throttle, guard-band.

Takes the worst co-schedule the characterization found (six synchronized
max dI/dt stressmarks at the resonant band) and applies each mitigation
mechanism in turn, reporting what it buys and what it costs.

Run:  python examples/mitigation_playbook.py
"""

from repro import RunOptions, StressmarkGenerator, reference_chip
from repro.analysis.guardband import build_policy
from repro.analysis.sensitivity import sweep_delta_i_mappings
from repro.mitigation.guardband import GuardbandController
from repro.mitigation.scheduler import NoiseAwareScheduler
from repro.mitigation.staggering import evaluate_stagger
from repro.mitigation.throttle import GlobalDidtThrottle
from repro.workloads.traces import synthetic_utilization_trace


def main() -> None:
    generator = StressmarkGenerator(epi_repetitions=200)
    chip = reference_chip()
    options = RunOptions(segments=6)
    program = generator.max_didt(freq_hz=2.6e6, synchronize=True).current_program()

    print("Adversarial co-schedule: six synchronized max dI/dt stressmarks.\n")

    # 1. Noise-aware placement (only helps with free cores).
    scheduler = NoiseAwareScheduler(chip, program, options)
    placement = scheduler.place(3)
    print(
        f"[scheduler]  3 workloads -> cores {placement.cores}: "
        f"{placement.worst_noise:.1f} %p2p vs {placement.worst_alternative:.1f} "
        f"adversarial ({placement.noise_saved:.1f} points, "
        f"{scheduler.margin_saved(3) * 1e3:.1f} mV of margin)"
    )

    # 2. ΔI-event staggering (TOD offsets, Figure 10's insight).
    stagger = evaluate_stagger(chip, [program] * 6, window_steps=8, options=options)
    print(
        f"[staggerer]  full chip: {stagger.baseline.max_p2p:.1f} -> "
        f"{stagger.staggered.max_p2p:.1f} %p2p "
        f"(x{stagger.reduction_factor:.2f}) with offsets spread over "
        f"{stagger.plan.window * 1e9:.0f} ns"
    )

    # 3. Global ΔI throttle (the next-gen monitor/reduce mechanism).
    throttle = GlobalDidtThrottle(chip, budget_amps=45.0)
    outcome = throttle.evaluate([program] * 6, options)
    print(
        f"[throttle]   budget 45 A coherent ΔI: "
        f"{outcome.baseline.max_p2p:.1f} -> {outcome.throttled.max_p2p:.1f} %p2p "
        f"at {outcome.throughput_cost * 100:.1f}% throughput cost"
    )

    # 4. Utilization-based dynamic guard-banding over a day of load.
    print("\n[guard-band] building the margin schedule from the ΔI study...")
    points = sweep_delta_i_mappings(
        generator, chip, options=options, placements_per_distribution=2
    )
    controller = GuardbandController(chip, build_policy(points))
    trace = synthetic_utilization_trace(seed=5)
    run = controller.run(trace)
    print(
        f"[guard-band] one simulated day at {trace.mean_utilization * 100:.0f}% "
        f"mean utilization: {run.energy_saving * 100:.2f}% dynamic energy saved, "
        f"{run.transitions} voltage transitions, "
        f"minimum safety headroom {run.min_headroom * 100:.2f}% (never negative)"
    )


if __name__ == "__main__":
    main()
