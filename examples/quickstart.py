#!/usr/bin/env python3
"""Quickstart: generate a dI/dt stressmark and measure its voltage noise.

Walks the paper's core loop end to end:

1. build the evaluation target (synthetic mainframe ISA + core model);
2. run the stressmark generation methodology (EPI profile -> max-power
   sequence search -> stressmark assembly);
3. execute six synchronized copies on the simulated chip (through the
   shared simulation engine — a repeat of the same run replays from its
   content-addressed cache);
4. read the per-core skitter macros.

Run:  python examples/quickstart.py
"""

from repro import (
    RunOptions,
    SimulationSession,
    StressmarkGenerator,
    reference_chip,
)

def main() -> None:
    print("Building the stressmark generator (EPI profile + search)...")
    generator = StressmarkGenerator(epi_repetitions=200)

    profile = generator.epi_profile
    print(f"\nEPI profile covers {len(profile)} instructions.")
    print("Most power-hungry:", ", ".join(e.mnemonic for e in profile.top(5)))
    print("Cheapest:         ", ", ".join(e.mnemonic for e in profile.bottom(5)))

    search = generator.max_power_result
    print(
        f"\nMax-power sequence: {' '.join(search.mnemonics)} "
        f"({search.power_w:.1f} W)\n"
        f"Search funnel: {search.enumerated} combinations -> "
        f"{search.microarch_stats.accepted} after microarch filtering -> "
        f"{search.ipc_stats.accepted} after IPC filtering -> 1 winner"
    )

    # A synchronized maximum dI/dt stressmark at the resonant band.
    mark = generator.max_didt(freq_hz=2.6e6, synchronize=True)
    print(
        f"\nStressmark {mark.name}: ΔI = {mark.delta_i:.1f} A per core "
        f"({mark.low_power_w:.1f} W -> {mark.high_power_w:.1f} W), "
        f"{mark.high_repetitions}x high / {mark.low_repetitions}x low "
        f"sequence repetitions per period"
    )

    chip = reference_chip()
    session = SimulationSession(chip, RunOptions(segments=8))
    result = session.run([mark.current_program()] * 6)

    print("\nPer-core skitter readings (sticky mode, %p2p):")
    for measurement in result.measurements:
        print(
            f"  core{measurement.core}: {measurement.p2p_pct:5.1f} %p2p   "
            f"(worst instantaneous Vdie {measurement.v_min * 1e3:7.1f} mV)"
        )
    print(f"\nWorst-case noise across cores: {result.max_p2p:.1f} %p2p")
    print("(the paper reads ~61 %p2p for this configuration on silicon)")


if __name__ == "__main__":
    main()
