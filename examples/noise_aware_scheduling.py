#!/usr/bin/env python3
"""Noise-aware workload mapping and dynamic guard-banding (paper §VII).

Enumerates every placement of k stressmarks on the six cores to expose
the best/worst mapping gap (Figures 14/15), then derives a
utilization-based guard-band schedule and the energy it saves on
representative utilization profiles.

Run:  python examples/noise_aware_scheduling.py
"""

from repro import RunOptions, StressmarkGenerator, reference_chip
from repro.analysis.guardband import build_policy, guardband_savings
from repro.analysis.mapping import mapping_extremes
from repro.analysis.report import render_table
from repro.analysis.sensitivity import sweep_delta_i_mappings


def main() -> None:
    generator = StressmarkGenerator(epi_repetitions=200)
    chip = reference_chip()
    options = RunOptions(segments=4)
    program = generator.max_didt(freq_hz=2.6e6, synchronize=True).current_program()

    # --- mapping opportunity (Figure 15) -------------------------------
    studies = mapping_extremes(chip, program, list(range(7)), options)
    rows = []
    for count in sorted(studies):
        study = studies[count]
        rows.append([
            count,
            f"{study.worst.worst_noise:.1f}",
            "{" + ",".join(map(str, study.worst.cores)) + "}",
            f"{study.best.worst_noise:.1f}",
            "{" + ",".join(map(str, study.best.cores)) + "}",
            f"{study.reduction_opportunity:.1f}",
        ])
    print(render_table(
        ["#workloads", "worst %p2p", "worst cores", "best %p2p",
         "best cores", "headroom"],
        rows,
        title="Noise-aware mapping opportunity (cf. paper Fig. 15)",
    ))
    print(
        "\nA noise-aware scheduler placing 2-4 stressmark-class workloads "
        "can shave the worst-case noise by the 'headroom' column, which "
        "translates directly into guard-band."
    )

    # --- utilization-based guard-banding (paper §VII-B) ----------------
    print("\nBuilding the ΔI dataset for the guard-band schedule...")
    points = sweep_delta_i_mappings(
        generator, chip, options=options, placements_per_distribution=2
    )
    policy = build_policy(points)
    rows = [
        [cores, f"{policy.margin_for(cores) * 100:.2f}%"]
        for cores in sorted(policy.margin_by_active_cores)
    ]
    print(render_table(
        ["active cores (max)", "required margin"], rows,
        title="Utilization-indexed margin schedule",
    ))
    for name, profile in {
        "fully utilized": {6: 1.0},
        "typical server": {2: 0.25, 4: 0.5, 6: 0.25},
        "lightly loaded": {0: 0.3, 1: 0.4, 2: 0.2, 6: 0.1},
    }.items():
        saving = guardband_savings(policy, profile)
        print(f"dynamic power saving, {name}: {saving * 100:.2f}%")


if __name__ == "__main__":
    main()
