"""Dynamic guard-band controller (paper §VII-B, executed).

"Once a new core is requested to execute some workload, the hardware
would raise the voltage to maintain the safety margin ... when a core
is freed from execution, the hardware would decrease the voltage to
ensure that the margin is not over-provisioned."

The controller walks a utilization trace, maps each interval's
active-core count through the margin schedule
(:class:`~repro.analysis.guardband.GuardbandPolicy`), programs the
service element in whole 0.5 % steps (rounding *up*, so the margin is
never under-provisioned), and accounts the dynamic-energy saving
against a statically guard-banded baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.guardband import GuardbandPolicy
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.system import VOLTAGE_STEP, ServiceElement
from ..workloads.traces import UtilizationTrace

__all__ = ["GuardbandRun", "GuardbandController"]


@dataclass
class GuardbandRun:
    """Outcome of one controller run over a utilization trace.

    Attributes
    ----------
    bias_by_interval:
        Programmed supply bias per trace interval.
    energy_saving:
        Dynamic-energy fraction saved versus the static-margin baseline
        (V² weighting over the trace).
    min_headroom:
        Smallest (margin_programmed − margin_required) observed, in
        fractions of nominal; non-negative means the controller never
        under-provisioned.
    transitions:
        Number of voltage changes the controller issued.
    """

    bias_by_interval: np.ndarray
    energy_saving: float
    min_headroom: float
    transitions: int


@dataclass
class GuardbandController:
    """Utilization-driven voltage controller for one chip."""

    chip: Chip
    policy: GuardbandPolicy
    #: Extra safety kept above the schedule (fraction of nominal).
    slack: float = 0.0025
    _service: ServiceElement = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise ExperimentError("slack cannot be negative")
        self._service = ServiceElement(self.chip)

    def bias_for(self, active_cores: int) -> float:
        """Supply bias programmed when *active_cores* may execute.

        The static design runs at bias 1.0 with the full margin baked
        in; with fewer cores active, the unused share of the static
        margin is removed, quantized to whole 0.5 % steps, rounding up
        (toward more margin).
        """
        unused = self.policy.static_margin - self.policy.margin_for(active_cores)
        reducible = max(unused - self.slack, 0.0)
        steps = int(np.floor(reducible / VOLTAGE_STEP))
        return 1.0 - steps * VOLTAGE_STEP

    def run(self, trace: UtilizationTrace) -> GuardbandRun:
        """Walk *trace* and account the saving and the safety headroom."""
        max_cores = max(self.policy.margin_by_active_cores)
        if trace.counts.max() > max_cores:
            raise ExperimentError(
                "trace demands more cores than the policy schedule covers"
            )
        biases = np.array([self.bias_for(int(c)) for c in trace.counts])

        # Safety audit: programmed margin vs required margin, per
        # interval.  Programmed margin = static margin − bias reduction.
        programmed = self.policy.static_margin - (1.0 - biases)
        required = np.array(
            [self.policy.margin_for(int(c)) for c in trace.counts]
        )
        headroom = programmed - required

        # Energy accounting: dynamic power ∝ V²; baseline sits at 1.0.
        saving = 1.0 - float(np.mean(biases**2))
        transitions = int(np.count_nonzero(np.diff(biases)))
        return GuardbandRun(
            bias_by_interval=biases,
            energy_saving=saving,
            min_headroom=float(headroom.min()),
            transitions=transitions,
        )
