"""Global ΔI throttle — the "globally monitor/reduce noise" mechanism.

The sensitivity summary (§V-F) concludes that "any mechanism
implemented to reduce the noise should be implemented on a chip-wide
basis", because small per-core ΔI events aligned across all cores beat
large events on a few cores.  The paper notes the next-generation chip
would carry such a mechanism.

This module models it: a monitor computes the chip-wide coherent ΔI a
mapping can generate (the same sliding-window metric the skitter
model uses); when it exceeds a budget, every swinging core's ΔI is
derated by a common factor — electrically, activity ramps are stretched
or capped (pipeline throttling), which costs throughput in proportion.
The evaluation reports the noise reduction bought per percent of
throughput given up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import SimulationSession
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.runner import RunOptions, RunResult
from ..machine.workload import CurrentProgram

__all__ = ["GlobalDidtThrottle", "ThrottleOutcome"]


@dataclass
class ThrottleOutcome:
    """Effect of the throttle on one mapping."""

    baseline: RunResult
    throttled: RunResult
    derate_factor: float
    throughput_cost: float

    @property
    def noise_reduction(self) -> float:
        """%p2p points removed."""
        return self.baseline.max_p2p - self.throttled.max_p2p

    @property
    def points_per_throughput_pct(self) -> float:
        """Noise points bought per percent of throughput given up."""
        if self.throughput_cost == 0:
            return float("inf") if self.noise_reduction > 0 else 0.0
        return self.noise_reduction / (100.0 * self.throughput_cost)


@dataclass
class GlobalDidtThrottle:
    """Chip-wide coherent-ΔI budget enforcement.

    Parameters
    ----------
    chip:
        The monitored chip (its coupling weights define coherence).
    budget_amps:
        Maximum worst-case coherent ΔI allowed at any core.
    throughput_per_derate:
        Throughput lost per unit of (1 − derate): derating the power
        swing by 30 % with the default of 0.5 costs 15 % throughput —
        throttling stretches activity ramps rather than stopping work.
    """

    chip: Chip
    budget_amps: float
    throughput_per_derate: float = 0.5

    def __post_init__(self) -> None:
        if self.budget_amps <= 0:
            raise ExperimentError("budget must be positive")
        if not 0.0 <= self.throughput_per_derate <= 1.0:
            raise ExperimentError("throughput_per_derate must be in [0, 1]")

    # ------------------------------------------------------------------
    def worst_coherent_delta_i(
        self, mapping: list[CurrentProgram | None]
    ) -> float:
        """Worst-case coherent ΔI any core could observe if every
        swinging core's events aligned (the monitor's planning bound)."""
        n_cores = self.chip.n_cores
        if len(mapping) != n_cores:
            raise ExperimentError(f"mapping must cover all {n_cores} cores")
        worst = 0.0
        for observer in range(n_cores):
            total = 0.0
            for core, program in enumerate(mapping):
                if program is None or program.is_steady:
                    continue
                total += program.delta_i * self.chip.coupling_weight(observer, core)
            worst = max(worst, total)
        return worst

    def required_derate(self, mapping: list[CurrentProgram | None]) -> float:
        """Common ΔI derate factor (≤ 1) keeping the mapping within
        budget."""
        worst = self.worst_coherent_delta_i(mapping)
        if worst <= self.budget_amps:
            return 1.0
        return self.budget_amps / worst

    def apply(
        self, mapping: list[CurrentProgram | None], derate: float
    ) -> list[CurrentProgram | None]:
        """Derate every swinging program's high level by *derate*."""
        if not 0.0 < derate <= 1.0:
            raise ExperimentError("derate must be in (0, 1]")
        throttled: list[CurrentProgram | None] = []
        for program in mapping:
            if program is None or program.is_steady or derate == 1.0:
                throttled.append(program)
                continue
            throttled.append(
                CurrentProgram(
                    name=f"{program.name}+throttled",
                    i_low=program.i_low,
                    i_high=program.i_low + derate * program.delta_i,
                    freq_hz=program.freq_hz,
                    duty=program.duty,
                    rise_time=program.rise_time,
                    sync=program.sync,
                )
            )
        return throttled

    def evaluate(
        self,
        mapping: list[CurrentProgram | None],
        options: RunOptions | None = None,
        session: SimulationSession | None = None,
    ) -> ThrottleOutcome:
        """Measure the throttle's noise/throughput trade on *mapping*;
        both runs execute through the engine session (shared result
        cache unless a private session is passed)."""
        derate = self.required_derate(mapping)
        session = session or SimulationSession(self.chip, options)
        throttled_mapping = self.apply(mapping, derate)
        baseline, throttled = session.run_many(
            [mapping, throttled_mapping],
            tags=["throttle-off", "throttle-on"],
        )
        cost = self.throughput_per_derate * (1.0 - derate)
        return ThrottleOutcome(
            baseline=baseline,
            throttled=throttled,
            derate_factor=derate,
            throughput_cost=cost,
        )
