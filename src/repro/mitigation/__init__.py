"""Noise mitigation mechanisms built on the characterization.

The paper closes by sketching optimization opportunities (§VII) and
notes that "the next generation processor chip for System z mainframes
will include a mechanism to globally monitor/reduce noise if
necessary".  This package implements those mechanisms against the
simulated platform, so their benefit can be measured with the same
harness that characterized the problem:

* :mod:`.scheduler` — a noise-aware workload mapper (§VII-A): places k
  workloads on the cores to minimize worst-case noise, using a cached
  placement study of the chip.
* :mod:`.staggering` — a global ΔI-event staggerer: assigns TOD
  misalignment offsets to co-scheduled swing-heavy workloads, spending
  the paper's Figure 10 insight (62.5 ns suffices) to cap coherent ΔI.
* :mod:`.guardband` — a dynamic guard-band controller (§VII-B): walks a
  utilization trace, adjusts the service-element bias to the margin
  schedule, and accounts the energy saved — checking at every step that
  the margin is never violated.
* :mod:`.throttle` — a global ΔI throttle, modeling the
  "globally monitor/reduce" mechanism: when the chip-wide coherent ΔI
  would exceed a budget, core power swings are derated, trading
  throughput for noise.
"""

from .scheduler import NoiseAwareScheduler, Placement
from .staggering import StaggerPlan, plan_stagger, evaluate_stagger
from .guardband import GuardbandController, GuardbandRun
from .throttle import GlobalDidtThrottle, ThrottleOutcome

__all__ = [
    "NoiseAwareScheduler",
    "Placement",
    "StaggerPlan",
    "plan_stagger",
    "evaluate_stagger",
    "GuardbandController",
    "GuardbandRun",
    "GlobalDidtThrottle",
    "ThrottleOutcome",
]
