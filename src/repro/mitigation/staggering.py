"""Global ΔI-event staggering.

The misalignment study (Figure 10) shows that a single 62.5 ns TOD step
of misalignment removes most of the synchronization effect, and the
paper concludes that "if a mechanism is implemented to avoid the
synchronization of ΔI events happening on different cores, the noise
can be reduced by 2-3x".  This module is that mechanism: given the
workloads mapped to the cores, it assigns programmed TOD offsets that
spread the swing-heavy ones across the alignment window, and evaluates
the noise with and without the plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.sync import spread_offsets
from ..engine import SimulationSession
from ..errors import ExperimentError
from ..machine.chip import N_CORES, Chip
from ..machine.runner import RunOptions, RunResult
from ..machine.tod import TOD_STEP
from ..machine.workload import CurrentProgram

__all__ = [
    "StaggerPlan",
    "plan_stagger",
    "plan_stagger_runs",
    "evaluate_stagger",
]


@dataclass
class StaggerPlan:
    """Per-core TOD offsets chosen by the staggerer.

    ``offsets[core]`` is the programmed misalignment for that core's
    sync spin-loop; steady/unsynchronized cores keep 0.0 (there is
    nothing to offset).
    """

    offsets: tuple[float, ...]
    staggered_cores: tuple[int, ...]
    window: float

    def apply(
        self, mapping: list[CurrentProgram | None]
    ) -> list[CurrentProgram | None]:
        """The mapping with the plan's offsets programmed in."""
        adjusted: list[CurrentProgram | None] = []
        for core, program in enumerate(mapping):
            if program is None or program.sync is None:
                adjusted.append(program)
                continue
            adjusted.append(
                program.with_sync(program.sync.with_offset(self.offsets[core]))
            )
        return adjusted


def plan_stagger(
    mapping: list[CurrentProgram | None],
    window_steps: int = 5,
    n_cores: int = N_CORES,
) -> StaggerPlan:
    """Assign offsets to the synchronized, swing-heavy cores.

    Offsets are spread evenly over ``window_steps`` TOD steps (the
    Figure 10 construction); cores without synchronized bursts keep a
    zero offset.  *n_cores* is the target chip's core count (the
    reference chip's six when unspecified).
    """
    if len(mapping) != n_cores:
        raise ExperimentError(f"mapping must cover all {n_cores} cores")
    if window_steps < 1:
        raise ExperimentError("need at least one TOD step of window")
    targets = [
        core
        for core, program in enumerate(mapping)
        if program is not None and program.sync is not None and not program.is_steady
    ]
    offsets = [0.0] * len(mapping)
    if targets:
        spread = spread_offsets(len(targets), window_steps * TOD_STEP)
        for core, offset in zip(targets, spread):
            offsets[core] = offset
    return StaggerPlan(
        offsets=tuple(offsets),
        staggered_cores=tuple(targets),
        window=window_steps * TOD_STEP,
    )


@dataclass
class StaggerOutcome:
    """Noise with and without the stagger plan."""

    baseline: RunResult
    staggered: RunResult
    plan: StaggerPlan

    @property
    def noise_reduction(self) -> float:
        """%p2p points removed by staggering."""
        return self.baseline.max_p2p - self.staggered.max_p2p

    @property
    def reduction_factor(self) -> float:
        """baseline/staggered worst-case noise ratio."""
        if self.staggered.max_p2p == 0:
            return float("inf")
        return self.baseline.max_p2p / self.staggered.max_p2p


def plan_stagger_runs(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    window_steps: int = 5,
    options: RunOptions | None = None,
    figure: str | None = None,
):
    """The declarative form of :func:`evaluate_stagger`: the baseline
    and staggered runs it would execute (named ``plan_stagger_runs`` to
    keep it apart from :func:`plan_stagger`, which builds the stagger
    *offset* plan, not a run plan)."""
    from ..machine.runner import RunOptions as _RunOptions
    from ..plan.spec import RunPlan

    plan = plan_stagger(mapping, window_steps, n_cores=chip.n_cores)
    run_plan = RunPlan.for_chip(chip)
    run_options = options or _RunOptions()
    run_plan.add(mapping, "stagger-baseline", run_options, figure)
    run_plan.add(plan.apply(mapping), "stagger-applied", run_options, figure)
    return run_plan


def evaluate_stagger(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    window_steps: int = 5,
    options: RunOptions | None = None,
    session: SimulationSession | None = None,
) -> StaggerOutcome:
    """Measure the stagger plan's effect on *mapping* (both runs go
    through the engine session, so a baseline another study already
    solved is replayed from the result cache)."""
    plan = plan_stagger(mapping, window_steps, n_cores=chip.n_cores)
    session = session or SimulationSession(chip, options)
    baseline, staggered = session.run_many(
        [mapping, plan.apply(mapping)],
        tags=["stagger-baseline", "stagger-applied"],
    )
    return StaggerOutcome(baseline=baseline, staggered=staggered, plan=plan)
