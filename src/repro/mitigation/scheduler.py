"""Noise-aware workload mapping policy (paper §VII-A).

"One can implement a task mapping policy with the objective of
minimizing the worst-case noise.  Then, one can proactively squeeze the
available voltage margin accordingly."

The scheduler measures (once, per workload class) the worst-case noise
of every placement of k copies on the chip, then answers placement
queries from the engine's content-addressed result cache: repeated
study queries — and any other consumer running the same placements —
replay the cached runs instead of re-solving them.  It also quantifies
what the placement bought: the margin saved versus the worst placement,
in %p2p and in volts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.mapping import (
    MappingStudy,
    enumerate_mappings,
    plan_mapping_extremes,
)
from ..engine import SimulationSession
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram
from ..plan.spec import RunPlan

__all__ = ["Placement", "NoiseAwareScheduler"]


@dataclass
class Placement:
    """A placement decision and its measured consequences."""

    cores: tuple[int, ...]
    worst_noise: float
    worst_alternative: float

    @property
    def noise_saved(self) -> float:
        """%p2p points saved versus the adversarial placement."""
        return self.worst_alternative - self.worst_noise


@dataclass
class NoiseAwareScheduler:
    """Placement oracle for one chip and one workload class.

    Parameters
    ----------
    chip:
        The chip to place on.
    program:
        The workload class's compiled electrical behavior.
    options:
        Run options for the placement studies.
    volts_per_p2p_point:
        Conversion from skitter %p2p to voltage margin, used by
        :meth:`margin_saved`.
    session:
        Run session the placement studies execute through (built over
        the process-shared result cache when omitted).
    """

    chip: Chip
    program: CurrentProgram
    options: RunOptions | None = None
    volts_per_p2p_point: float = 0.0016
    session: SimulationSession | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.session is None:
            self.session = SimulationSession(self.chip, self.options)

    def study(self, n_workloads: int) -> MappingStudy:
        """The exhaustive placement study for *n_workloads*; its runs
        are served from the engine cache after the first query."""
        if not 0 <= n_workloads <= self.chip.n_cores:
            raise ExperimentError(
                f"cannot place {n_workloads} workloads on "
                f"{self.chip.n_cores} cores"
            )
        return enumerate_mappings(
            self.chip, self.program, n_workloads, self.options,
            session=self.session,
        )

    def plan_studies(
        self,
        workload_counts: list[int] | None = None,
        figure: str | None = None,
    ) -> RunPlan:
        """The declarative run plan of the placement studies for
        *workload_counts* (all counts when omitted) — what a campaign
        including the scheduler's warm-up compiles to, fingerprint-
        identical to the runs :meth:`study` executes."""
        counts = (
            list(range(self.chip.n_cores + 1))
            if workload_counts is None
            else workload_counts
        )
        return plan_mapping_extremes(
            self.chip, self.program, counts, self.options, figure=figure
        )

    def place(self, n_workloads: int) -> Placement:
        """Best placement of *n_workloads* copies of the workload."""
        study = self.study(n_workloads)
        best = study.best
        return Placement(
            cores=best.cores,
            worst_noise=best.worst_noise,
            worst_alternative=study.worst.worst_noise,
        )

    def margin_saved(self, n_workloads: int) -> float:
        """Voltage margin (V) the noise-aware placement saves."""
        placement = self.place(n_workloads)
        return placement.noise_saved * self.volts_per_p2p_point

    def opportunity_profile(self) -> dict[int, float]:
        """Noise-saving headroom per workload count (the Figure 15
        series)."""
        return {
            count: self.study(count).reduction_opportunity
            for count in range(self.chip.n_cores + 1)
        }
