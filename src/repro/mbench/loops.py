"""Loop builders for generated microbenchmarks.

The EPI skeleton follows the paper exactly: "an endless loop with 4000
repetitions of the instruction, without dependencies".  Dependence
freedom is achieved by rotating destination registers through a pool
and reading from registers outside it.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..errors import GenerationError
from ..isa.instruction import InstructionDef
from ..isa.isa import Isa
from ..isa.operands import OperandKind
from .program import InstructionInstance, Program

__all__ = [
    "build_epi_loop",
    "build_sequence_loop",
    "find_loop_branch",
    "EPI_REPETITIONS",
]

#: Repetitions of the profiled instruction in an EPI microbenchmark.
EPI_REPETITIONS = 4000

#: Register pools: destinations rotate through the first pool, sources
#: read from the second, so no generated instruction depends on another.
_DEST_GPRS = [f"r{i}" for i in range(4, 10)]
_SRC_GPRS = [f"r{i}" for i in range(10, 14)]
_DEST_FPRS = [f"f{i}" for i in range(4, 10)]
_SRC_FPRS = [f"f{i}" for i in range(10, 14)]
_DEST_VRS = [f"v{i}" for i in range(4, 10)]
_SRC_VRS = [f"v{i}" for i in range(10, 14)]
_MEM_SLOTS = [f"{disp}(r2)" for disp in range(0, 4096, 256)]


class _OperandMaterializer:
    """Stateful operand renderer with register rotation."""

    def __init__(self, skip_label: str):
        self.skip_label = skip_label
        self._dest = {
            OperandKind.GPR: itertools.cycle(_DEST_GPRS),
            OperandKind.FPR: itertools.cycle(_DEST_FPRS),
            OperandKind.VR: itertools.cycle(_DEST_VRS),
        }
        self._src = {
            OperandKind.GPR: itertools.cycle(_SRC_GPRS),
            OperandKind.FPR: itertools.cycle(_SRC_FPRS),
            OperandKind.VR: itertools.cycle(_SRC_VRS),
        }
        self._mem = itertools.cycle(_MEM_SLOTS)

    def materialize(self, definition: InstructionDef) -> InstructionInstance:
        values: list[str] = []
        for operand in definition.operands:
            if operand.kind in self._dest:
                pool = self._dest if operand.is_written else self._src
                values.append(next(pool[operand.kind]))
            elif operand.kind is OperandKind.IMMEDIATE:
                values.append("7")
            elif operand.kind is OperandKind.MEMORY:
                values.append(next(self._mem))
            elif operand.kind is OperandKind.LABEL:
                # Branch targets inside straight-line bodies fall
                # through to the next instruction (never-taken
                # compare-and-branch keeps the front end busy without
                # redirecting fetch).
                values.append(self.skip_label)
            else:  # pragma: no cover - enum is closed
                raise GenerationError(f"unsupported operand kind {operand.kind}")
        return InstructionInstance(definition, tuple(values))


def find_loop_branch(isa: Isa) -> InstructionDef:
    """Pick the loop-closing branch-on-count instruction.

    Prefers ``BCT``-style branch-on-count mnemonics, then any
    group-ending branch; deterministic for a given ISA.
    """
    for mnemonic in ("BCT", "BCTG", "BRC", "J"):
        if mnemonic in isa:
            inst = isa[mnemonic]
            if inst.ends_group:
                return inst
    for inst in isa:
        if inst.ends_group:
            return inst
    raise GenerationError("ISA has no branch instruction to close loops")


def _close_loop(
    isa: Isa, body: list[InstructionInstance], label: str
) -> list[InstructionInstance]:
    branch = find_loop_branch(isa)
    materializer = _OperandMaterializer(skip_label=label)
    values = tuple(
        label if op.kind is OperandKind.LABEL else "r3"
        for op in branch.operands
    ) if branch.operands else ()
    body.append(InstructionInstance(branch, values))
    return body


def build_epi_loop(
    isa: Isa,
    definition: InstructionDef,
    repetitions: int = EPI_REPETITIONS,
    trip_count: int | None = None,
) -> Program:
    """The EPI microbenchmark: *repetitions* dependence-free copies of
    one instruction, closed by a loop branch."""
    if repetitions < 1:
        raise GenerationError("repetitions must be >= 1")
    label = f"epi_{definition.mnemonic.lower()}"
    materializer = _OperandMaterializer(skip_label="fallthrough")
    body = [materializer.materialize(definition) for _ in range(repetitions)]
    body = _close_loop(isa, body, label)
    return Program(
        name=f"epi-{definition.mnemonic}",
        loop_body=body,
        trip_count=trip_count,
        loop_label=label,
    )


def build_sequence_loop(
    isa: Isa,
    sequence: Sequence[InstructionDef],
    unroll: int = 1,
    trip_count: int | None = None,
    name: str | None = None,
    close_with_branch: bool = True,
) -> Program:
    """A loop repeating *sequence* ``unroll`` times per iteration.

    Used by the max-power search (sequence evaluation) and by the
    stressmark builder (high/low activity phases).
    """
    if not sequence:
        raise GenerationError("sequence is empty")
    if unroll < 1:
        raise GenerationError("unroll must be >= 1")
    label = "seq_loop"
    materializer = _OperandMaterializer(skip_label="fallthrough")
    body = [
        materializer.materialize(definition)
        for _ in range(unroll)
        for definition in sequence
    ]
    if close_with_branch:
        body = _close_loop(isa, body, label)
    return Program(
        name=name or "seq-" + "-".join(d.mnemonic for d in sequence),
        loop_body=body,
        trip_count=trip_count,
        loop_label=label,
    )
