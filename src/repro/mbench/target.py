"""Target definition: the binding of ISA, core model and energy model.

In Microprobe terms this is the "back-end knowledge base ... implemented
via target definition files" the paper had to build for the evaluation
platform before the characterization could start.  A :class:`Target`
is the single object the stressmark methodology carries around: it
answers "what instructions exist", "how fast does this loop run" and
"how much power does it burn".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..isa.isa import Isa
from ..isa.zmainframe import build_zmainframe_isa
from ..uarch.energy import EnergyModel
from ..uarch.power import PowerEstimate, estimate_loop_power
from ..uarch.resources import CoreConfig, default_core_config
from ..uarch.throughput import LoopProfile, analyze_loop
from .program import Program

__all__ = ["Target", "default_target"]


@dataclass
class Target:
    """A fully bound evaluation target."""

    isa: Isa
    core: CoreConfig

    @cached_property
    def energy_model(self) -> EnergyModel:
        """Per-µop energy model (built lazily; it profiles every
        instruction once)."""
        return EnergyModel(self.isa, self.core)

    def profile(self, program: Program) -> LoopProfile:
        """Steady-state throughput profile of *program*'s loop.

        The profile is memoized on the program object (keyed by this
        target's core config): generated programs are immutable after
        construction, and one EPI measurement reads the same program's
        profile from the meter, the counters and the energy model —
        re-deriving a 4000-instruction profile three times per ISA
        entry dominates generation wall clock."""
        memo = getattr(program, "_profile_memo", None)
        if memo is not None and memo[0] is self.core:
            return memo[1]
        profile = analyze_loop(program.loop_definitions, self.core)
        program._profile_memo = (self.core, profile)
        return profile

    def power(self, program: Program) -> PowerEstimate:
        """Steady-state power estimate of *program*'s loop."""
        return estimate_loop_power(
            program.loop_definitions,
            self.energy_model,
            profile=self.profile(program),
        )

    @property
    def idle_current(self) -> float:
        """Idle (static-only) current of one core, in amperes."""
        return self.energy_model.idle_current


def default_target() -> Target:
    """The reference target: synthetic mainframe ISA on the reference
    core configuration."""
    return Target(isa=build_zmainframe_isa(), core=default_core_config())
