"""Program intermediate representation for generated microbenchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GenerationError
from ..isa.instruction import InstructionDef

__all__ = ["InstructionInstance", "Program"]


@dataclass(frozen=True)
class InstructionInstance:
    """One instruction with materialized operand strings.

    ``operand_values`` are assembler-level operand renderings (register
    names, immediates, base-displacement memory references, labels) in
    the definition's operand order.
    """

    definition: InstructionDef
    operand_values: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        expected = len(self.definition.operands)
        if len(self.operand_values) != expected:
            raise GenerationError(
                f"{self.definition.mnemonic}: expected {expected} operands, "
                f"got {len(self.operand_values)}"
            )

    def render(self) -> str:
        """Assembler text of this instance."""
        if not self.operand_values:
            return self.definition.mnemonic
        return f"{self.definition.mnemonic} " + ",".join(self.operand_values)


@dataclass
class Program:
    """A generated microbenchmark: prologue, loop body, trip count.

    ``trip_count`` of ``None`` means an endless loop (the usual shape
    for measurement benchmarks, which are sampled while running).
    ``loop_definitions`` exposes the loop body as plain instruction
    definitions — the view the microarchitecture models consume.
    """

    name: str
    loop_body: list[InstructionInstance]
    prologue: list[InstructionInstance] = field(default_factory=list)
    trip_count: int | None = None
    loop_label: str = "loop"

    def __post_init__(self) -> None:
        if not self.loop_body:
            raise GenerationError(f"program {self.name!r} has an empty loop body")

    @property
    def loop_definitions(self) -> list[InstructionDef]:
        """Instruction definitions of one loop iteration."""
        return [inst.definition for inst in self.loop_body]

    @property
    def size(self) -> int:
        """Static instruction count (prologue + loop body)."""
        return len(self.prologue) + len(self.loop_body)
