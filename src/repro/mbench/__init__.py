"""Microbenchmark generation framework (the paper's Microprobe role).

The paper generates its EPI profiles and dI/dt stressmarks with the
Microprobe micro-benchmark generator, configured through target
definition files.  This package plays that role for the synthetic
platform:

* :mod:`.program` — a small IR: operand-materialized instruction
  instances inside an endless (or counted) loop;
* :mod:`.loops` — loop builders, including the EPI skeleton (4000
  dependence-free repetitions of one instruction) and arbitrary
  sequence loops with register rotation to avoid dependences;
* :mod:`.codegen` — synthetic assembly emission, so generated
  benchmarks are inspectable artifacts, as they are in the paper's
  flow;
* :mod:`.target` — the target definition binding ISA, core model and
  energy model, plus evaluation helpers (run a program on the modeled
  core, get IPC and power).
"""

from .program import InstructionInstance, Program
from .loops import build_epi_loop, build_sequence_loop
from .codegen import emit_assembly
from .target import Target, default_target

__all__ = [
    "InstructionInstance",
    "Program",
    "build_epi_loop",
    "build_sequence_loop",
    "emit_assembly",
    "Target",
    "default_target",
]
