"""Crash-safe filesystem primitives shared by the durable layers.

Every file the library persists — disk-cache entries, experiment
artifacts, telemetry snapshots, campaign manifests — goes through the
atomic publish pattern: write the full payload to a temporary file in
the destination directory, then :func:`os.replace` it over the final
name.  A reader (or a resumed campaign) therefore only ever observes
either the previous complete version or the new complete version, never
a torn write — the property the checkpoint/resume machinery depends on
when a run is killed mid-flush.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically publish *data* at *path* (parents created as needed).

    The temporary file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    finally:
        if os.path.exists(tmp_name):  # publish failed midway
            os.unlink(tmp_name)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically publish *text* (UTF-8) at *path*."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload: object) -> Path:
    """Atomically publish *payload* as pretty, key-sorted JSON."""
    import json

    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
