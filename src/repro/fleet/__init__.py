"""``repro.fleet`` — elastic, crash-tolerant multi-worker campaigns.

`repro.plan` shards a campaign *statically*: each process owns a fixed
hash slice, and a dead host's slice simply never finishes.  This
package replaces ownership with **leases**: every worker pulls
unfinished runs in small batches from one shared
:class:`~repro.engine.campaign.CampaignManifest` (the claim table),
heartbeats to keep its leases alive, and executes claim → execute →
checkpoint → renew until the campaign is exhausted.  A worker that
dies — or wedges long enough for its lease to expire — has its runs
*stolen* by survivors, and a run that keeps killing workers is benched
(poisoned) instead of wedging the fleet.

Determinism makes stealing safe: results are content-addressed, so a
stolen run raced by a not-quite-dead original worker produces the
*same* bytes on both sides and the cache publish is atomic — the
fleet's exports are byte-identical to a serial fault-free execution,
which is the chaos acceptance test in CI.

* :class:`FleetWorker` — the claim/execute/renew loop (one process).
* :class:`FleetDispatcher` — spawns and monitors N workers (local
  subprocesses, or remote via an ssh command template), respawns
  crashed ones within a budget, and folds the per-worker caches and
  manifests into the campaign result with
  :func:`~repro.engine.cache.merge_cache_dirs` /
  :meth:`~repro.engine.campaign.CampaignManifest.merge_from`.

Chaos is injected through :mod:`repro.faults` host-level kinds
(``kill=…,stall=…,lease_corrupt=…`` in ``$REPRO_FAULTS``), seeded and
content-keyed like every other fault in this tree.

* :class:`FleetLiveAggregator` — the live status plane: folds the
  workers' periodic ``live-telemetry.json`` sidecars and the shared
  lease table into ``live-status.json`` *during* the campaign
  (state transitions, observed steals, live completion rate — what
  ``repro-noise top --campaign`` renders).
"""

from .dispatcher import FleetDispatcher
from .live import (
    LIVE_SIDECAR_NAME,
    LIVE_STATUS_NAME,
    FleetLiveAggregator,
    load_live_status,
)
from .worker import KILL_EXIT_STATUS, FleetWorker

__all__ = [
    "FleetDispatcher",
    "FleetWorker",
    "FleetLiveAggregator",
    "KILL_EXIT_STATUS",
    "LIVE_SIDECAR_NAME",
    "LIVE_STATUS_NAME",
    "load_live_status",
]
