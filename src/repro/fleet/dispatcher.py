"""The fleet dispatcher: spawn, monitor, respawn, fold.

``repro-noise fleet --workers N`` builds one of these.  It lays out a
campaign directory::

    <campaign-dir>/
      campaign-manifest.json     shared claim table (all workers)
      cache/                     folded result cache (after the fold)
      events.jsonl               folded event log (after the fold)
      live-status.json           in-flight aggregate (during the run)
      workers/<id>/
        cache/                   the worker's private result cache
        campaign-manifest.json   the worker's private completion record
        events.jsonl             the worker's event log
        live-telemetry.json      the worker's live sidecar (periodic)
        log.txt                  the worker's stdout/stderr

spawns N ``fleet-worker`` subprocesses (locally, or through an ssh
command template for remote hosts), and watches them.  A worker that
*crashes* (nonzero exit — e.g. an injected ``worker_kill``) is
respawned under a fresh id within a bounded budget; its abandoned
leases expire and survivors steal them, so progress never depends on
the respawn.  A worker that exits cleanly found the campaign
exhausted.

The end-of-campaign **fold** reuses the shard-merge machinery: worker
caches union via :func:`~repro.engine.cache.merge_cache_dirs`, worker
manifests fold into the shared table via
:meth:`~repro.engine.campaign.CampaignManifest.merge_from` (healing
any chaos-scribbled claim entries — a private manifest records every
completion its worker made), and worker event logs concatenate into
one campaign log whose Chrome trace renders one lane per worker.
"""

from __future__ import annotations

import json
import os
import shlex
import signal
import subprocess
import sys
import time
from pathlib import Path

from ..engine.cache import merge_cache_dirs
from ..engine.campaign import MANIFEST_NAME, CampaignManifest
from ..errors import ConfigError
from ..machine.chip import Chip
from ..obs import Telemetry, get_telemetry
from ..plan.execute import ExecutionReport, run_point_id
from ..plan.planner import CampaignPlan
from .live import FleetLiveAggregator

__all__ = ["FleetDispatcher"]


class FleetDispatcher:
    """Run *campaign* to completion with an elastic worker fleet.

    Parameters
    ----------
    campaign / chip:
        The compiled plan (used for the run census and the fold) and
        its chip.
    campaign_dir:
        The shared directory sketched in the module docstring.
    worker_command:
        The ``fleet-worker`` invocation *minus* the per-worker parts —
        the dispatcher appends ``--worker-id``/``--workdir`` itself.
        Built by the CLI so every context/engine flag the user passed
        reaches the workers verbatim.
    workers:
        Fleet size.
    hosts / ssh_template:
        Second transport: with ``hosts=["a", "b"]`` and a template
        like ``"ssh {host} {command}"``, workers round-robin over the
        hosts and each local command is wrapped through the template
        (``{command}`` is the shell-quoted worker invocation).  The
        default (no template) spawns plain local subprocesses.
    slurm_template:
        Third transport, mutually exclusive with ``ssh_template``: a
        Slurm launcher template like ``"srun -N1 -n1 -J {job}
        {command}"``.  ``{command}`` (required) is the shell-quoted
        worker invocation and ``{job}`` (optional) a per-worker job
        name; the scheduler picks the host, so ``hosts`` does not
        apply.  The launcher must run the command to completion in the
        foreground (``srun``, not ``sbatch``) — the dispatcher's
        crash/respawn monitor watches the launcher's exit status.
    respawn:
        Total budget of crash respawns across the whole campaign
        (clean exits never consume it).
    poll_s / timeout_s:
        Monitor poll period and optional hard wall-clock ceiling
        (workers are terminated and the fold still runs, reporting the
        partial state).
    live_s:
        Period of the in-flight aggregation: every ``live_s`` the
        monitor folds the worker sidecars + the shared lease table
        into ``live-status.json`` (state transitions, steals, live
        completion rate) *while the campaign runs*.  ``0`` disables
        live aggregation.
    """

    def __init__(
        self,
        campaign: CampaignPlan,
        chip: Chip,
        campaign_dir: str | Path,
        worker_command: list[str],
        *,
        workers: int = 4,
        hosts: list[str] | None = None,
        ssh_template: str | None = None,
        slurm_template: str | None = None,
        respawn: int = 8,
        poll_s: float = 0.2,
        timeout_s: float | None = None,
        live_s: float = 1.0,
        telemetry: Telemetry | None = None,
    ):
        if workers < 1:
            raise ConfigError(f"fleet needs >= 1 worker (got {workers})")
        if ssh_template is not None and "{command}" not in ssh_template:
            raise ConfigError(
                "ssh template must contain '{command}' "
                "(and usually '{host}')"
            )
        if slurm_template is not None:
            if ssh_template is not None:
                raise ConfigError(
                    "--ssh-template and --slurm-template are mutually "
                    "exclusive transports"
                )
            if "{command}" not in slurm_template:
                raise ConfigError(
                    "slurm template must contain '{command}' "
                    "(and may use '{job}')"
                )
            try:
                slurm_template.format(command="true", job="probe")
            except (KeyError, IndexError) as error:
                raise ConfigError(
                    f"slurm template has an unknown placeholder ({error}); "
                    "supported placeholders are {command} and {job}"
                )
        if hosts and ssh_template is None:
            raise ConfigError("--hosts needs an --ssh-template transport")
        self.campaign = campaign
        self.chip = chip
        self.campaign_dir = Path(campaign_dir)
        self.worker_command = list(worker_command)
        self.workers = workers
        self.hosts = list(hosts) if hosts else []
        self.ssh_template = ssh_template
        self.slurm_template = slurm_template
        self.respawn_budget = respawn
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.telemetry = telemetry or get_telemetry()
        self.manifest = CampaignManifest(self.campaign_dir / MANIFEST_NAME)
        self.live_s = live_s
        self.live: FleetLiveAggregator | None = (
            FleetLiveAggregator(
                self.campaign_dir,
                manifest=self.manifest,
                total_runs=campaign.total_unique,
                telemetry=self.telemetry,
            )
            if live_s > 0 else None
        )
        self.unfinished: list[str] = []
        self.poisoned: list[str] = []
        self._procs: dict[str, subprocess.Popen] = {}
        self._logs: list = []
        self._respawns = 0
        self._draining = False

    # -- worker plumbing -------------------------------------------------
    def worker_dir(self, worker_id: str) -> Path:
        return self.campaign_dir / "workers" / worker_id

    def _spawn_command(self, worker_id: str, slot: int) -> list[str]:
        workdir = self.worker_dir(worker_id)
        command = self.worker_command + [
            "--worker-id", worker_id,
            "--workdir", str(workdir),
        ]
        if self.slurm_template is not None:
            wrapped = self.slurm_template.format(
                command=shlex.join(command),
                job=f"repro-{self.campaign_dir.name}-{worker_id}",
            )
            return shlex.split(wrapped)
        if self.ssh_template is None:
            return command
        host = self.hosts[slot % len(self.hosts)] if self.hosts else "localhost"
        wrapped = self.ssh_template.format(
            host=host, command=shlex.join(command)
        )
        return shlex.split(wrapped)

    def _spawn(self, worker_id: str, slot: int) -> None:
        workdir = self.worker_dir(worker_id)
        (workdir / "cache").mkdir(parents=True, exist_ok=True)
        log = (workdir / "log.txt").open("ab")
        self._logs.append(log)
        env = dict(os.environ)
        # The workers import repro the same way this process did; with
        # a source-tree launch that path may only live in sys.path.
        package_root = str(Path(__file__).resolve().parents[2])
        paths = env.get("PYTHONPATH", "").split(os.pathsep)
        if package_root not in paths:
            env["PYTHONPATH"] = os.pathsep.join(
                [package_root] + [p for p in paths if p]
            )
        self._procs[worker_id] = subprocess.Popen(
            self._spawn_command(worker_id, slot),
            stdout=log,
            stderr=subprocess.STDOUT,
            env=env,
        )
        self.telemetry.increment("fleet.workers_spawned")
        self.telemetry.emit(
            "fleet.dispatcher.spawned",
            worker=worker_id,
            pid=self._procs[worker_id].pid,
        )

    # -- main ------------------------------------------------------------
    def run(self) -> ExecutionReport:
        """Dispatch the fleet, wait it out, fold, and report."""
        plan_fp = self.campaign.fingerprint()
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        self.manifest.bind_campaign({"plan": plan_fp, "shard": None})
        self.telemetry.emit(
            "fleet.dispatcher.started",
            plan=plan_fp,
            workers=self.workers,
            runs=self.campaign.total_unique,
        )
        for slot in range(self.workers):
            self._spawn(f"w{slot}", slot)
        deadline = (
            time.monotonic() + self.timeout_s if self.timeout_s else None
        )
        try:
            self._monitor(deadline)
        except KeyboardInterrupt:
            self.stop()
            self._monitor(time.monotonic() + 30.0)
        finally:
            for log in self._logs:
                try:
                    log.close()
                except OSError:  # pragma: no cover - teardown best effort
                    pass
        return self._fold(plan_fp)

    def stop(self) -> None:
        """SIGTERM every live worker (they drain: finish the run in
        flight, release their claims, exit 0)."""
        self._draining = True
        for proc in self._procs.values():
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover - it just exited
                    pass

    def _monitor(self, deadline: float | None) -> None:
        slot = self.workers
        next_live = time.monotonic()
        while True:
            if self.live is not None and time.monotonic() >= next_live:
                next_live = time.monotonic() + self.live_s
                try:
                    self.live.poll()
                except Exception:  # noqa: BLE001 - observer must not kill
                    self.telemetry.increment("fleet.live.poll_errors")
            live = 0
            for worker_id, proc in list(self._procs.items()):
                status = proc.poll()
                if status is None:
                    live += 1
                    continue
                if status != 0 and not self._draining:
                    self.telemetry.increment("fleet.workers_crashed")
                    self.telemetry.emit(
                        "fleet.dispatcher.crashed",
                        worker=worker_id,
                        status=status,
                    )
                    if self._respawns < self.respawn_budget:
                        self._respawns += 1
                        del self._procs[worker_id]
                        replacement = f"{worker_id}r{self._respawns}"
                        self._spawn(replacement, slot)
                        slot += 1
                        live += 1
                        self.telemetry.increment("fleet.workers_respawned")
            if live == 0:
                return
            if deadline is not None and time.monotonic() > deadline:
                self.stop()
                deadline = None  # drain, then fall out on live == 0
            time.sleep(self.poll_s)

    # -- fold ------------------------------------------------------------
    def _fold(self, plan_fp: str) -> ExecutionReport:
        """Union the per-worker caches/manifests/event logs and build
        the campaign report from the healed shared manifest."""
        worker_dirs = sorted(
            d for d in (self.campaign_dir / "workers").glob("*") if d.is_dir()
        )
        copied, skipped = merge_cache_dirs(
            self.campaign_dir / "cache",
            *[d / "cache" for d in worker_dirs],
        )
        private = [
            CampaignManifest(d / MANIFEST_NAME)
            for d in worker_dirs
            if (d / MANIFEST_NAME).exists()
        ]
        if private:
            self.manifest.merge_from(*private)
        self._fold_events(worker_dirs)
        # Fold the workers' telemetry merge-payloads fleet-wide, so
        # fleet.* / engine.* counters of the whole campaign read from
        # this process (the claim counters CI asserts on).
        for d in worker_dirs:
            payload_path = d / "fleet-telemetry.json"
            try:
                self.telemetry.merge(json.loads(payload_path.read_text()))
            except (OSError, ValueError):
                continue

        statuses = self.manifest.statuses()
        by_worker = self.manifest.fleet_accounting()
        report = ExecutionReport(
            plan=plan_fp,
            shard=None,
            runs=self.campaign.total_unique,
            by_worker=by_worker,
        )
        executed = sum(t["completed"] for t in by_worker.values())
        complete = failed = 0
        self.unfinished = []
        self.poisoned = []
        for fingerprint in self.campaign.unique:
            status = statuses.get(run_point_id(fingerprint))
            if status == "complete":
                complete += 1
            elif status == "failed":
                failed += 1
            else:
                if status == "poisoned":
                    self.poisoned.append(fingerprint)
                self.unfinished.append(fingerprint)
        report.executed = min(executed, complete)
        report.replayed = complete - report.executed
        report.failed = failed
        self.manifest.mark_complete("shard:fleet", meta=report.summary())
        if self.live is not None:
            # Final status write: phase "folded" tells a tailing `top`
            # the campaign is over (and records what it folded to).
            try:
                self.live.finalize(report.summary())
            except Exception:  # noqa: BLE001 - observer must not kill
                self.telemetry.increment("fleet.live.poll_errors")
        self.telemetry.emit(
            "fleet.dispatcher.completed",
            plan=plan_fp,
            cache_copied=copied,
            cache_skipped=skipped,
            unfinished=len(self.unfinished),
            poisoned=len(self.poisoned),
            respawns=self._respawns,
            **{
                f"worker.{worker}.completed": tally["completed"]
                for worker, tally in by_worker.items()
            },
        )
        return report

    def _fold_events(self, worker_dirs: list[Path]) -> None:
        """Concatenate worker event logs (JSONL concatenation is a
        valid JSONL log; the trace exporter sorts by timestamp and
        lays one lane per worker)."""
        target = self.campaign_dir / "events.jsonl"
        with target.open("ab") as out:
            for d in worker_dirs:
                source = d / "events.jsonl"
                if not source.exists():
                    continue
                data = source.read_bytes()
                if data and not data.endswith(b"\n"):
                    data += b"\n"
                out.write(data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FleetDispatcher(workers={self.workers}, "
            f"dir={self.campaign_dir})"
        )
