"""In-flight campaign aggregation: the fleet's live status plane.

PR 7's dispatcher only learned what its workers did at the
end-of-campaign fold.  This module closes the gap: each worker
periodically rewrites a ``live-telemetry.json`` sidecar in its workdir
(state, held leases, accounting, telemetry merge payload — see
:meth:`~repro.fleet.worker.FleetWorker.live_snapshot`), and the
dispatcher's monitor loop drives a :class:`FleetLiveAggregator` that

* folds every sidecar plus the shared manifest's lease table into one
  ``live-status.json`` under the campaign directory (atomic rewrite —
  what ``repro-noise top --campaign`` tails),
* detects **per-worker state transitions** (claiming → executing →
  idle → stopped …) and **lease steals** as they happen, emitting
  ``fleet.transition`` events and ``fleet.live.*`` counters *during*
  the campaign, not after it, and
* feeds the summed worker counters into a
  :class:`~repro.obs.series.TelemetrySeries`, so the status file
  carries live fleet-wide rates (runs completed per second).

Everything here reads only atomic-rename artifacts (sidecars, the
manifest) — a torn read is impossible by construction, a missing file
just means that worker has not flushed yet.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..engine.campaign import MANIFEST_NAME, CampaignManifest
from ..obs import Telemetry, get_telemetry
from ..obs.series import TelemetrySeries
from .. import ioutil

__all__ = [
    "LIVE_SIDECAR_NAME",
    "LIVE_STATUS_NAME",
    "FleetLiveAggregator",
    "load_live_status",
]

#: Per-worker sidecar filename (inside ``workers/<id>/``).
LIVE_SIDECAR_NAME = "live-telemetry.json"

#: Aggregated status filename (inside the campaign directory).
LIVE_STATUS_NAME = "live-status.json"

#: Bound on retained transition records in the status file.
MAX_TRANSITIONS = 128

#: Summary fields surfaced per worker in the status file.
_SUMMARY_FIELDS = (
    "claimed", "stolen", "completed", "failed",
    "released", "poisoned", "serve_hits", "lost_leases",
)


class FleetLiveAggregator:
    """Fold worker sidecars + the shared lease table into a live
    campaign status, tracking transitions across polls."""

    def __init__(
        self,
        campaign_dir: str | Path,
        *,
        manifest: CampaignManifest | None = None,
        total_runs: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.campaign_dir = Path(campaign_dir)
        self.manifest = manifest or CampaignManifest(
            self.campaign_dir / MANIFEST_NAME
        )
        self.total_runs = total_runs
        self.telemetry = telemetry or get_telemetry()
        self.status_path = self.campaign_dir / LIVE_STATUS_NAME
        self.series = TelemetrySeries()
        self.ticks = 0
        self.observed_steals = 0
        self.transitions: list[dict] = []
        self._last_states: dict[str, str] = {}
        self._last_steals = 0

    # -- reading ---------------------------------------------------------
    def _read_sidecars(self) -> dict[str, dict]:
        sidecars: dict[str, dict] = {}
        workers_dir = self.campaign_dir / "workers"
        if not workers_dir.is_dir():
            return sidecars
        for path in sorted(workers_dir.glob(f"*/{LIVE_SIDECAR_NAME}")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):  # not flushed yet / vanished
                continue
            if isinstance(record, dict) and record.get("worker"):
                sidecars[str(record["worker"])] = record
        return sidecars

    def _manifest_steals(self) -> int:
        """Total steals recorded in the shared lease table (survives
        the thief dying before its next sidecar flush)."""
        steals = 0
        for entry in self.manifest.load()["points"].values():
            if isinstance(entry, dict):
                steals += int(entry.get("steals", 0) or 0)
        return steals

    # -- polling ---------------------------------------------------------
    def poll(self, now: float | None = None) -> dict:
        """One aggregation step: read, diff, account, write, return the
        status dict."""
        now = time.time() if now is None else float(now)
        self.ticks += 1
        sidecars = self._read_sidecars()
        statuses = self.manifest.statuses()
        claims = self.manifest.claims()

        # -- per-worker view + state transitions ------------------------
        workers: dict[str, dict] = {}
        for worker_id, record in sidecars.items():
            state = str(record.get("state", "?"))
            summary = record.get("summary") or {}
            workers[worker_id] = {
                "state": state,
                "pid": record.get("pid"),
                "host": record.get("host"),
                "point": record.get("point"),
                "held": len(record.get("held") or ()),
                "age_s": round(max(now - float(record.get("ts", now)), 0.0), 3),
                **{k: int(summary.get(k, 0)) for k in _SUMMARY_FIELDS},
            }
            previous = self._last_states.get(worker_id)
            if previous != state:
                self._last_states[worker_id] = state
                transition = {
                    "ts": round(now, 6),
                    "worker": worker_id,
                    "from": previous,
                    "to": state,
                }
                self.transitions.append(transition)
                self.telemetry.increment("fleet.live.transitions")
                self.telemetry.emit("fleet.transition", **transition)

        # -- steals observed mid-campaign --------------------------------
        total_steals = max(
            self._manifest_steals(),
            sum(w["stolen"] for w in workers.values()),
        )
        if total_steals > self._last_steals:
            delta = total_steals - self._last_steals
            self._last_steals = total_steals
            self.telemetry.increment("fleet.live.observed_steals", delta)
        self.observed_steals = max(self.observed_steals, total_steals)
        del self.transitions[:-MAX_TRANSITIONS]

        # -- fleet-wide rates from summed worker counters ----------------
        summed: dict[str, float] = {}
        for record in sidecars.values():
            payload = record.get("telemetry") or {}
            for name, value in (payload.get("counters") or {}).items():
                summed[name] = summed.get(name, 0) + value
        window = self.series.tick_state(
            {"counters": summed, "timers": {}, "histograms": {}}, now
        )

        # -- status census -----------------------------------------------
        tally = {"complete": 0, "failed": 0, "claimed": 0, "poisoned": 0}
        for point_id, status in statuses.items():
            if point_id.startswith("run:") and status in tally:
                tally[status] += 1
        status = {
            "ts": round(now, 6),
            "tick": self.ticks,
            "phase": "running",
            "plan": (self.manifest.campaign or {}).get("plan"),
            "total_runs": self.total_runs,
            "workers": workers,
            "counts": tally,
            "leases": {
                "live": len(claims),
                "by_worker": _claims_by_worker(claims),
            },
            "observed_steals": self.observed_steals,
            "completion_rate": (
                round(window.rate("fleet.completed"), 4)
                if window is not None else None
            ),
            "transitions": list(self.transitions),
        }
        self._write(status)
        return status

    def finalize(self, report_summary: dict | None = None) -> dict:
        """Mark the status file folded (``top`` exits on this phase)."""
        status = self.poll()
        status["phase"] = "folded"
        if report_summary:
            status["report"] = report_summary
        self._write(status)
        return status

    def _write(self, status: dict) -> None:
        try:
            ioutil.atomic_write_json(self.status_path, status)
        except OSError:  # pragma: no cover - disk full / dir vanished
            self.telemetry.increment("fleet.live.write_errors")


def _claims_by_worker(claims: dict[str, dict]) -> dict[str, int]:
    by_worker: dict[str, int] = {}
    for claim in claims.values():
        worker = str(claim.get("worker", "?"))
        by_worker[worker] = by_worker.get(worker, 0) + 1
    return by_worker


def load_live_status(campaign_dir: str | Path) -> dict | None:
    """The current ``live-status.json`` of a campaign directory, or
    ``None`` when no aggregator has written one yet."""
    path = Path(campaign_dir) / LIVE_STATUS_NAME
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None
