"""The fleet worker: one claim → execute → checkpoint → renew loop.

A :class:`FleetWorker` owns no shard.  It repeatedly claims a small
batch of unfinished runs from the shared campaign manifest under a
heartbeat-renewed lease, executes them through an ordinary
:class:`~repro.engine.session.SimulationSession` (same cache keys,
same retry semantics as every other execution path), and checkpoints
each completion back — to the shared claim table *and* to a private
per-worker manifest, so the end-of-campaign fold can heal the shared
table even if chaos scribbled over it.

Crash-tolerance properties this file is responsible for:

* **Leases, not ownership** — a claim carries worker id / host / pid
  and a deadline; a background heartbeat thread renews it.  Death or a
  long stall lets the deadline pass, and survivors steal the run.
* **Graceful drain** — :meth:`FleetWorker.drain` (wired to SIGTERM by
  the CLI) finishes the run in flight, releases the remaining claims
  back to the pool, and exits cleanly.
* **Harmless duplicates** — a stolen run still being executed by its
  not-actually-dead original worker completes twice with *identical*
  content-addressed results; the disk-cache publish is atomic and the
  manifest merge is status-precedence, so duplicates cannot diverge.
* **Seeded chaos** — host-level faults (:mod:`repro.faults`) fire as a
  pure function of ``(seed, worker id, point)``: a worker kill right
  after the claim commits (the worst possible moment), a scribbled
  lease, or silently skipped heartbeats.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import socket
import threading
import time

from ..engine.cache import ResultCache, global_cache
from ..engine.campaign import DEFAULT_POISON_AFTER, CampaignManifest
from ..engine.executor import Executor, make_executor
from ..engine.fingerprint import canonical
from ..engine.resilience import RetryPolicy, RunFailure
from ..engine.session import SimulationSession
from ..errors import ConcurrencyError, ProtocolError
from ..faults import FaultPlan
from ..machine.chip import Chip
from ..obs import Telemetry, get_telemetry
from ..plan.execute import run_point_id
from ..plan.planner import CampaignPlan
from .. import ioutil

__all__ = ["FleetWorker", "KILL_EXIT_STATUS"]

#: Exit status of an injected worker kill (distinct from the run-level
#: ``CRASH_EXIT_STATUS`` so dispatcher logs tell host chaos apart from
#: pool-worker chaos).
KILL_EXIT_STATUS = 43

_UNSET = object()


def _poll_jitter(worker_id: str, cycle: int) -> float:
    """Deterministic factor in [0.5, 1.5) decorrelating idle polls of
    different workers (same construction as the manifest lock jitter)."""
    digest = hashlib.sha256(f"{worker_id}|poll|{cycle}".encode()).digest()
    return 0.5 + int.from_bytes(digest[:8], "big") / 2**64


class FleetWorker:
    """One elastic worker process over a shared campaign manifest.

    Parameters
    ----------
    campaign / chip:
        The compiled plan and the chip it targets (every worker
        recompiles the same plan from the same arguments; plan
        fingerprints are content-addressed, so they provably agree).
    manifest:
        The *shared* claim table.
    worker_id:
        Stable identity of this worker (claims, steals and completions
        are attributed to it; fault draws are keyed by it, so a
        respawned worker under a new id gets fresh draws).
    private_manifest:
        Optional per-worker completion record (no contention; folded
        into the shared table at campaign end to heal chaos damage).
    batch / lease_s / heartbeat_s / poison_after / poll_s:
        Claim batch size, lease duration, renewal period (default
        ``lease_s / 4``), distinct-victim quarantine threshold, and
        idle poll period while other workers hold the remaining runs.
    serve:
        Optional ``(host, port)`` of a running ``repro-noise serve``
        endpoint; claimed runs are probed against its disk tier
        (``fetch``) before executing, so a fleet and the always-on
        service share one answer space.
    faults:
        Host-level :class:`~repro.faults.FaultPlan` (environment
        default); only its ``worker_kill`` / ``lease_corrupt`` /
        ``heartbeat_stall`` decisions are consulted here — run-level
        kinds keep flowing through the session layer as usual.
    live_path / flush_s:
        When ``live_path`` is set, a background thread atomically
        rewrites that file every ``flush_s`` seconds with the worker's
        live sidecar snapshot (state, held leases, accounting summary,
        telemetry merge payload) — what the dispatcher's in-flight
        aggregator and ``repro-noise top`` read *during* the campaign.
    exit_fn:
        How an injected worker kill dies (``os._exit``; tests inject a
        recording stub so the suite survives its own chaos).
    """

    def __init__(
        self,
        campaign: CampaignPlan,
        chip: Chip,
        manifest: CampaignManifest,
        *,
        worker_id: str,
        cache: ResultCache | None = None,
        private_manifest: CampaignManifest | None = None,
        batch: int = 4,
        lease_s: float = 20.0,
        heartbeat_s: float | None = None,
        poison_after: int = DEFAULT_POISON_AFTER,
        poll_s: float = 0.5,
        executor: Executor | str | None = "serial",
        jobs: int | None = None,
        retry: RetryPolicy | None = None,
        backend: str | None = None,
        faults: object = _UNSET,
        serve: tuple[str, int] | None = None,
        telemetry: Telemetry | None = None,
        live_path=None,
        flush_s: float = 2.0,
        exit_fn=os._exit,
    ):
        self.campaign = campaign
        self.chip = chip
        self.manifest = manifest
        self.worker_id = worker_id
        self.cache = cache if cache is not None else global_cache()
        self.private_manifest = private_manifest
        self.batch = batch
        self.lease_s = lease_s
        self.heartbeat_s = heartbeat_s or max(lease_s / 4.0, 0.05)
        self.poison_after = poison_after
        self.poll_s = poll_s
        if isinstance(executor, (str, type(None))):
            executor = make_executor(executor, jobs)
        self.executor = executor
        self.retry = retry
        self.backend = backend
        self.faults = (
            FaultPlan.from_env() if faults is _UNSET else faults
        )
        self.serve = serve
        self.telemetry = telemetry or get_telemetry()
        self.host = socket.gethostname()
        self._exit = exit_fn
        self._sessions: dict[str, SimulationSession] = {}
        self._serve_client = None
        self._serve_down = False
        self._held: set[str] = set()
        self._held_lock = threading.Lock()
        self._draining = threading.Event()
        self._hb_stop = threading.Event()
        self.live_path = live_path
        self.flush_s = flush_s
        self.state = "starting"
        self.current_point: str | None = None
        self._flush_stop = threading.Event()
        self.summary: dict = {
            "worker": worker_id,
            "claimed": 0,
            "stolen": 0,
            "completed": 0,
            "failed": 0,
            "released": 0,
            "poisoned": 0,
            "serve_hits": 0,
            "renewals": 0,
            "stalls": 0,
            "lost_leases": 0,
        }

    # -- lifecycle -------------------------------------------------------
    def drain(self) -> None:
        """Finish the run in flight, release remaining claims, exit
        the loop cleanly (the SIGTERM path)."""
        self._draining.set()

    def run(self) -> dict:
        """The worker main loop; returns the accounting summary."""
        self.telemetry.emit(
            "fleet.worker.started",
            worker=self.worker_id,
            pid=os.getpid(),
            host=self.host,
        )
        candidates = self._candidates()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"fleet-heartbeat-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        flusher: threading.Thread | None = None
        if self.live_path is not None:
            self._flush_live()  # first sidecar before any claim
            flusher = threading.Thread(
                target=self._flush_loop,
                name=f"fleet-flush-{self.worker_id}",
                daemon=True,
            )
            flusher.start()
        cycle = 0
        try:
            while not self._draining.is_set():
                cycle += 1
                self.state = "claiming"
                try:
                    decision = self.manifest.claim_batch(
                        candidates,
                        worker=self.worker_id,
                        limit=self.batch,
                        lease_s=self.lease_s,
                        host=self.host,
                        pid=os.getpid(),
                        poison_after=self.poison_after,
                    )
                except ConcurrencyError:
                    # Extreme lock contention: the claim call already
                    # burned its own retry budget; yield and try again.
                    self._count("fleet.claim_contention")
                    time.sleep(self.poll_s * _poll_jitter(self.worker_id, cycle))
                    continue
                self._account_claim(decision)
                if not decision.claimed:
                    if decision.exhausted:
                        break
                    # Everything unfinished is under someone else's
                    # live lease; poll again after a decorrelated nap.
                    self.state = "idle"
                    time.sleep(self.poll_s * _poll_jitter(self.worker_id, cycle))
                    continue
                with self._held_lock:
                    self._held.update(decision.claimed)
                self._inject_worker_kill(decision.claimed)
                self._inject_lease_corruption(decision.claimed)
                for point in decision.claimed:
                    if self._draining.is_set():
                        break
                    self._execute(point)
        finally:
            self.state = "draining" if self._draining.is_set() else "stopped"
            self._hb_stop.set()
            heartbeat.join(timeout=5.0)
            with self._held_lock:
                leftovers = sorted(self._held)
                self._held.clear()
            if leftovers:
                try:
                    self.summary["released"] = self.manifest.release_claims(
                        leftovers, worker=self.worker_id
                    )
                except ConcurrencyError:  # pragma: no cover - best effort
                    pass
            self.state = "stopped"
            self._flush_stop.set()
            if flusher is not None:
                flusher.join(timeout=5.0)
            if self.live_path is not None:
                self._flush_live()  # final sidecar carries the summary
            self.telemetry.emit(
                "fleet.worker.stopped",
                worker=self.worker_id,
                pid=os.getpid(),
                **{k: v for k, v in self.summary.items() if k != "worker"},
            )
        return self.summary

    # -- claiming --------------------------------------------------------
    def _candidates(self) -> list[str]:
        """All plan points, rotated by a stable per-worker offset so
        concurrent claimers scan from different starting runs (less
        pending-contention, same set)."""
        points = [run_point_id(fp) for fp in self.campaign.unique]
        if not points:
            return points
        digest = hashlib.sha256(self.worker_id.encode()).digest()
        offset = int.from_bytes(digest[:4], "big") % len(points)
        return points[offset:] + points[:offset]

    def _account_claim(self, decision) -> None:
        self.summary["claimed"] += len(decision.claimed)
        self.summary["stolen"] += len(decision.stolen)
        self.summary["poisoned"] += len(decision.poisoned)
        self._count("fleet.claims", len(decision.claimed))
        self._count("fleet.steals", len(decision.stolen))
        self._count("fleet.poisoned", len(decision.poisoned))
        for point in decision.stolen:
            self.telemetry.emit(
                "fleet.stolen", worker=self.worker_id, point=point
            )
        for point in decision.poisoned:
            self.telemetry.emit(
                "fleet.poisoned", worker=self.worker_id, point=point
            )

    # -- chaos hooks -----------------------------------------------------
    def _inject_worker_kill(self, claimed: list[str]) -> None:
        """Die mid-claim — leases committed, nothing executed — when
        the fault plan says so.  The worst-case death the lease
        machinery exists for."""
        if self.faults is None or not self.faults.host_active:
            return
        for point in claimed:
            if self.faults.decide_host(
                "worker_kill", f"{self.worker_id}|{point}"
            ):
                self.telemetry.emit(
                    "fleet.fault.worker_kill",
                    worker=self.worker_id,
                    point=point,
                )
                self._exit(KILL_EXIT_STATUS)
                return  # only reached when exit_fn is a test stub

    def _inject_lease_corruption(self, claimed: list[str]) -> None:
        """Scribble garbage over this worker's own claim entries when
        the fault plan says so; the manifest must treat the malformed
        lease as expired, so the run is immediately stealable (and the
        original execution becomes a harmless duplicate)."""
        if self.faults is None or not self.faults.host_active:
            return
        for point in claimed:
            if not self.faults.decide_host(
                "lease_corrupt", f"{self.worker_id}|{point}"
            ):
                continue
            with self.manifest.writer_lock(jitter_key=self.worker_id):
                payload = self.manifest.load()
                entry = payload["points"].get(point)
                if isinstance(entry, dict) and entry.get("status") == "claimed":
                    entry["claim"] = {
                        "worker": self.worker_id,
                        "deadline": "0xGARBAGE",
                    }
                    ioutil.atomic_write_json(self.manifest.path, payload)
            self._count("fleet.lease_corrupted")
            self.telemetry.emit(
                "fleet.fault.lease_corrupt",
                worker=self.worker_id,
                point=point,
            )

    # -- execution -------------------------------------------------------
    def _execute(self, point: str) -> None:
        fingerprint = point.removeprefix("run:")
        entry = self.campaign.unique.get(fingerprint)
        self.state = "executing"
        self.current_point = point
        try:
            if entry is None:  # defensive: claim table named a stranger
                self.manifest.mark_failed(
                    point, "not in this campaign plan", worker=self.worker_id
                )
                self.summary["failed"] += 1
                return
            self._probe_serve(fingerprint)
            session = self._session_for(entry.run.options)
            start = time.perf_counter()
            result = session.run(list(entry.run.mapping), entry.run.tag)
            elapsed = time.perf_counter() - start
            self.telemetry.observe(
                f"fleet.worker.{self.worker_id}.run_seconds", elapsed
            )
            if isinstance(result, RunFailure):
                self.summary["failed"] += 1
                self._count("fleet.failed")
                self.manifest.mark_failed(
                    point, result.describe(), worker=self.worker_id
                )
                if self.private_manifest is not None:
                    self.private_manifest.mark_failed(
                        point, result.describe(), worker=self.worker_id
                    )
            else:
                self.summary["completed"] += 1
                self._count("fleet.completed")
                self.manifest.mark_many_complete(
                    [point], worker=self.worker_id
                )
                if self.private_manifest is not None:
                    self.private_manifest.mark_many_complete(
                        [point], worker=self.worker_id
                    )
        finally:
            self.current_point = None
            with self._held_lock:
                self._held.discard(point)

    def _session_for(self, options) -> SimulationSession:
        key = canonical(options)
        session = self._sessions.get(key)
        if session is None:
            session = SimulationSession(
                self.chip,
                options,
                cache=self.cache,
                executor=self.executor,
                retry=self.retry,
                on_failure="collect",
                telemetry=self.telemetry,
                backend=self.backend,
            )
            self._sessions[key] = session
        return session

    def _probe_serve(self, fingerprint: str) -> None:
        """Ask the serve endpoint's disk tier for this run before
        executing it; a hit lands in the local cache and the session
        replays it.  The endpoint going away mid-campaign degrades to
        plain execution (once, with an event — not one error per run).
        """
        if self.serve is None or self._serve_down:
            return
        if self.cache.get(fingerprint) is not None:
            return
        try:
            client = self._serve_client
            if client is None:
                from ..serve.client import ServeClient

                client = self._serve_client = ServeClient(*self.serve)
            raw = client.fetch(fingerprint)
            if raw is None:
                self._count("fleet.serve_misses")
                return
            self.cache.put(fingerprint, pickle.loads(raw))
            self.summary["serve_hits"] += 1
            self._count("fleet.serve_hits")
        except (OSError, ProtocolError, pickle.PickleError) as error:
            self._serve_down = True
            self.telemetry.emit(
                "fleet.serve.unavailable",
                worker=self.worker_id,
                error=f"{type(error).__name__}: {error}",
            )

    # -- heartbeat -------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        """Renew held leases every ``heartbeat_s`` on a *separate*
        manifest handle (the writer lock is reentrant per thread, so
        sharing the main thread's instance would let both threads into
        the critical section at once)."""
        hb_manifest = CampaignManifest(self.manifest.path)
        cycle = 0
        while not self._hb_stop.wait(self.heartbeat_s):
            cycle += 1
            if (
                self.faults is not None
                and self.faults.host_active
                and self.faults.decide_host(
                    "heartbeat_stall", f"{self.worker_id}|{cycle}"
                )
            ):
                self.summary["stalls"] += 1
                self._count("fleet.stalls")
                self.telemetry.emit(
                    "fleet.fault.heartbeat_stall",
                    worker=self.worker_id,
                    cycle=cycle,
                )
                continue
            with self._held_lock:
                held = sorted(self._held)
            if not held:
                continue
            try:
                renewed = hb_manifest.renew_claims(
                    held, worker=self.worker_id, lease_s=self.lease_s
                )
            except ConcurrencyError:
                continue  # contention; the next beat retries
            self.summary["renewals"] += len(renewed)
            self._count("fleet.renewals", len(renewed))
            lost = set(held) - set(renewed)
            if lost:
                # Stolen out from under us (or completed by the thief).
                # Keep executing the run in flight — the duplicate is
                # byte-identical — but account for the loss.
                self.summary["lost_leases"] += len(lost)
                self._count("fleet.lease_lost", len(lost))

    # -- live sidecar ----------------------------------------------------
    def live_snapshot(self) -> dict:
        """The worker's live sidecar record: lease state + accounting
        + a telemetry merge payload the aggregator can fold."""
        with self._held_lock:
            held = sorted(self._held)
        return {
            "ts": round(time.time(), 6),
            "worker": self.worker_id,
            "pid": os.getpid(),
            "host": self.host,
            "state": self.state,
            "point": self.current_point,
            "held": held,
            "summary": dict(self.summary),
            "telemetry": self._safe_merge_payload(),
        }

    def _safe_merge_payload(self) -> dict:
        # The main thread mutates counters while the flush thread
        # copies them; retry the snapshot until it settles.
        for _ in range(8):
            try:
                return self.telemetry.merge_payload()
            except RuntimeError:
                continue
        return {"counters": {}}  # pragma: no cover - pathological churn

    def _flush_live(self) -> None:
        try:
            ioutil.atomic_write_json(self.live_path, self.live_snapshot())
        except OSError:  # pragma: no cover - disk full / dir vanished
            self._count("fleet.flush_errors")

    def _flush_loop(self) -> None:
        while not self._flush_stop.wait(self.flush_s):
            self._flush_live()

    # -- accounting ------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if amount:
            self.telemetry.increment(name, amount)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FleetWorker({self.worker_id!r}, "
            f"held={len(self._held)}, manifest={self.manifest.path})"
        )
