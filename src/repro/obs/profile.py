"""Campaign post-mortem profiler over a JSONL event trace.

``repro-noise profile <events.jsonl>`` renders, from the trace a
``--trace`` campaign left behind: the merged campaign counters, the
per-run latency distribution (p50/p95/p99), the slowest runs, the
retry hot spots, the cache hit rate, dropped/failed points, and the
span tree (campaign → experiment → session phases) with durations.

Everything is computed offline from the log — the profiler works on a
trace from a campaign that is still running, or one that was killed
midway (the incremental log is readable at any prefix).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from .events import read_events
from .metrics import Histogram

__all__ = [
    "CampaignProfile",
    "follow_profile",
    "load_profile",
    "render_profile",
]


@dataclass
class SpanNode:
    """One reconstructed span of the trace's wall-clock tree."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    dur_s: float
    error: bool = False
    children: list["SpanNode"] = field(default_factory=list)


@dataclass
class CampaignProfile:
    """Digest of one campaign's event trace."""

    events: list[dict]
    counters: dict[str, int]
    run_seconds: Histogram
    completed_runs: list[dict]
    failed_runs: list[dict]
    retried_runs: list[dict]
    cached: int
    scheduled: int
    dropped_points: list[dict]
    experiments: list[str]
    span_roots: list[SpanNode]
    snapshot: dict | None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_events(cls, events: list[dict]) -> "CampaignProfile":
        run_seconds = Histogram()
        completed: list[dict] = []
        failed: list[dict] = []
        retried: list[dict] = []
        dropped: list[dict] = []
        experiments: list[str] = []
        spans: dict[int, SpanNode] = {}
        cached = scheduled = 0
        snapshot: dict | None = None
        for event in events:
            kind = event.get("event")
            if kind == "run.completed":
                completed.append(event)
                if isinstance(event.get("dur_s"), (int, float)):
                    run_seconds.observe(float(event["dur_s"]))
                if int(event.get("attempts", 1)) > 1:
                    retried.append(event)
            elif kind == "run.failed":
                failed.append(event)
                if int(event.get("attempts", 1)) > 1:
                    retried.append(event)
            elif kind == "run.cached":
                cached += 1
            elif kind == "run.scheduled":
                scheduled += 1
            elif kind == "point.dropped":
                dropped.append(event)
            elif kind == "experiment.started":
                name = str(event.get("experiment", "?"))
                if name not in experiments:
                    experiments.append(name)
            elif kind == "campaign.completed":
                found = event.get("snapshot")
                if isinstance(found, dict):
                    snapshot = found
            elif kind == "span" and isinstance(event.get("span_id"), int):
                spans[event["span_id"]] = SpanNode(
                    name=str(event.get("name", "span")),
                    span_id=event["span_id"],
                    parent_id=event.get("parent_id"),
                    start_s=float(event.get("start_s", event.get("ts", 0.0))),
                    dur_s=float(event.get("dur_s", 0.0)),
                    error=bool(event.get("error", False)),
                )
        roots: list[SpanNode] = []
        for node in spans.values():
            parent = spans.get(node.parent_id)
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in spans.values():
            node.children.sort(key=lambda child: child.start_s)
        roots.sort(key=lambda node: node.start_s)
        counters = dict(snapshot.get("counters", {})) if snapshot else {}
        return cls(
            events=events,
            counters=counters,
            run_seconds=run_seconds,
            completed_runs=completed,
            failed_runs=failed,
            retried_runs=retried,
            cached=cached,
            scheduled=scheduled,
            dropped_points=dropped,
            experiments=experiments,
            span_roots=roots,
            snapshot=snapshot,
        )

    # -- derived --------------------------------------------------------
    def counter(self, name: str) -> int:
        """A merged campaign counter: from the final telemetry snapshot
        when the trace has one, else re-derived from the raw events."""
        if self.counters:
            return int(self.counters.get(name, 0))
        derived = {
            "engine.cache.hits": self.cached,
            "engine.runs_executed": len(self.completed_runs),
            "engine.failures": len(self.failed_runs),
            "engine.retries": sum(
                int(e.get("attempts", 1)) - 1 for e in self.retried_runs
            ),
            "engine.points_dropped": len(self.dropped_points),
        }
        return derived.get(name, 0)

    def hit_rate(self) -> float:
        hits = self.counter("engine.cache.hits")
        misses = self.counter("engine.cache.misses") or self.scheduled
        total = hits + misses
        return hits / total if total else 0.0

    def slowest_runs(self, top: int = 5) -> list[dict]:
        return sorted(
            (e for e in self.completed_runs
             if isinstance(e.get("dur_s"), (int, float))),
            key=lambda e: e["dur_s"],
            reverse=True,
        )[:top]

    def retry_hot_spots(self, top: int = 5) -> list[dict]:
        return sorted(
            self.retried_runs,
            key=lambda e: int(e.get("attempts", 1)),
            reverse=True,
        )[:top]


def load_profile(path: str | Path) -> CampaignProfile:
    """Build a :class:`CampaignProfile` from a JSONL trace file."""
    return CampaignProfile.from_events(read_events(path))


def follow_profile(
    path: str | Path,
    *,
    interval: float = 2.0,
    stop: Callable[[], bool] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[CampaignProfile]:
    """Tail a live campaign trace, yielding a refreshed profile as
    events arrive (``repro-noise profile --follow``).

    The log is read incrementally by byte offset: only complete
    (newline-terminated) lines are consumed, so the torn tail of an
    in-progress write is buffered until its newline lands rather than
    being misparsed — the live counterpart of the crash tolerance in
    :func:`~repro.obs.events.iter_events`.  A file that does not exist
    yet is waited for.  The generator ends on its own when a
    ``campaign.completed`` event arrives; *stop* (checked every poll)
    lets a caller end it earlier.  Unparseable interior lines are
    skipped, mirroring the offline reader.
    """
    path = Path(path)
    events: list[dict] = []
    tail = b""
    offset = 0
    first = True
    while True:
        if stop is not None and stop():
            return
        fresh = 0
        finished = False
        if path.exists():
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            offset += len(chunk)
            tail += chunk
            *lines, tail = tail.split(b"\n")
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except ValueError:
                    continue
                if isinstance(record, dict):
                    events.append(record)
                    fresh += 1
                    if record.get("event") == "campaign.completed":
                        finished = True
        if fresh or first:
            first = False
            yield CampaignProfile.from_events(list(events))
        if finished:
            return
        sleep(interval)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def _render_span(node: SpanNode, depth: int, lines: list[str]) -> None:
    marker = " !" if node.error else ""
    lines.append(
        f"{'  ' * depth}{node.name:<{max(1, 38 - 2 * depth)}} "
        f"{_fmt_seconds(node.dur_s)}{marker}"
    )
    for child in node.children:
        _render_span(child, depth + 1, lines)


def render_profile(profile: CampaignProfile, top: int = 5) -> str:
    """The printable campaign post-mortem."""
    lines = ["== campaign profile =="]
    n_runs = len(profile.completed_runs)
    lines.append(
        f"events: {len(profile.events)}   experiments: "
        f"{', '.join(profile.experiments) or '(none recorded)'}"
    )
    lines.append(
        f"runs executed: {n_runs}   cached replays: {profile.cached}   "
        f"failed: {len(profile.failed_runs)}   "
        f"hit rate: {100.0 * profile.hit_rate():.1f}%"
    )
    resilience = []
    for name in ("engine.retries", "engine.timeouts",
                 "engine.pool.degraded_to_serial",
                 "engine.cache.quarantined", "engine.points_dropped"):
        count = profile.counter(name)
        if count:
            resilience.append(f"{name}={count}")
    if resilience:
        lines.append("resilience: " + ", ".join(resilience))

    histogram = profile.run_seconds
    if histogram.count:
        lines.append("")
        lines.append("-- run latency --")
        lines.append(
            f"n={histogram.count}  "
            f"p50={_fmt_seconds(histogram.percentile(50))}  "
            f"p95={_fmt_seconds(histogram.percentile(95))}  "
            f"p99={_fmt_seconds(histogram.percentile(99))}  "
            f"max={_fmt_seconds(histogram.max)}"
        )
        slowest = profile.slowest_runs(top)
        if slowest:
            lines.append(f"slowest {len(slowest)} run(s):")
            for event in slowest:
                lines.append(
                    f"  {_fmt_seconds(float(event['dur_s'])):>10}  "
                    f"{event.get('run', '?')}"
                )

    hot = profile.retry_hot_spots(top)
    if hot:
        lines.append("")
        lines.append("-- retry hot spots --")
        for event in hot:
            lines.append(
                f"  attempts={event.get('attempts', 1)}  "
                f"{event.get('run', '?')}"
                + (
                    f"  [{event.get('error')}]"
                    if event.get("event") == "run.failed"
                    else ""
                )
            )

    if profile.failed_runs:
        lines.append("")
        lines.append(f"-- failed runs ({len(profile.failed_runs)}) --")
        for event in profile.failed_runs[:top]:
            lines.append(
                f"  {event.get('run', '?')}: {event.get('error', '?')}"
            )

    if profile.dropped_points:
        lines.append("")
        lines.append(
            f"-- dropped points ({len(profile.dropped_points)}) --"
        )
        for event in profile.dropped_points[:top]:
            lines.append(
                f"  {event.get('sweep', '?')}: {event.get('run', '?')}"
            )

    if profile.span_roots:
        lines.append("")
        lines.append("-- span tree --")
        for root in profile.span_roots:
            _render_span(root, 0, lines)
    return "\n".join(lines)
