"""JSONL event log: incremental, schema-checked run-lifecycle records.

A traced campaign (``repro-noise --trace``) appends one JSON object per
line to ``events.jsonl`` as things happen — never buffered to the end —
so a campaign killed midway still leaves a readable trace up to the
moment it died.  The parent process is the single writer: worker-side
metrics arrive via the telemetry merge (:mod:`repro.obs.metrics`), and
the parent emits the corresponding lifecycle events when each chunk's
outcomes come back.

Event schema (one object per line)::

    {"ts": <epoch seconds>, "event": "<type>", ...fields}

``ts`` and ``event`` are mandatory; ``event`` must be one of
:data:`EVENT_TYPES`.  Per-type conventions (all optional but stable):

* ``run.*`` events carry ``run`` (the run tag, stringified) and
  ``fingerprint`` (the content address); ``run.completed`` /
  ``run.failed`` add ``dur_s``, ``attempts`` and ``worker`` (pid of
  the executing process — the per-worker lanes of the Chrome trace);
  ``run.retried`` adds ``retries``; ``run.failed`` adds ``error``.
* ``plan.compiled`` carries the campaign-plan summary (requested /
  unique / dedup counts per figure); ``shard.started`` /
  ``shard.completed`` carry the plan fingerprint and shard label;
  ``shard.merged`` records a merge of shard caches + manifests.
* ``experiment.*`` events carry ``experiment``; ``campaign.completed``
  carries the final telemetry ``snapshot`` (merged counters,
  histograms, span summaries).
* ``serve.*`` events come from the simulation service
  (:mod:`repro.serve`): ``serve.request`` carries ``fingerprint``,
  the answering ``tier`` and ``dur_ms``; ``serve.busy`` records a
  backpressure rejection with its ``retry_after_s`` hint.
* ``fleet.*`` events come from the elastic campaign fleet
  (:mod:`repro.fleet`): worker/dispatcher lifecycle, lease steals and
  poisonings, injected host faults; ``fleet.transition`` records a
  live per-worker state change observed by the dispatcher's in-flight
  aggregator (``worker``, ``from``/``to`` states, ``steals``).
* ``slo.violation`` events come from the SLO layer
  (:mod:`repro.obs.slo`): one per objective breached in one series
  window, carrying ``slo``, ``sli``, ``burn_rate``, ``budget``,
  ``events`` and ``window_s``.
* ``span`` events carry ``name``, ``span_id``, ``parent_id``,
  ``start_s`` and ``dur_s`` — enough to rebuild the span tree and the
  Chrome trace timeline offline.

:func:`validate_event` / :func:`validate_event_log` implement the
schema check the CI trace-smoke job runs.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterator

__all__ = [
    "EVENT_TYPES",
    "EventLog",
    "iter_events",
    "read_events",
    "validate_event",
    "validate_event_log",
]

#: Every event type the engine emits.
EVENT_TYPES = frozenset({
    "campaign.started",
    "campaign.completed",
    "experiment.started",
    "experiment.completed",
    "experiment.failed",
    "run.scheduled",
    "run.started",
    "run.retried",
    "run.failed",
    "run.cached",
    "run.completed",
    "point.dropped",
    "plan.compiled",
    "shard.started",
    "shard.completed",
    "shard.merged",
    "serve.started",
    "serve.stopped",
    "serve.request",
    "serve.busy",
    "kernel.fallback",
    "fleet.worker.started",
    "fleet.worker.stopped",
    "fleet.stolen",
    "fleet.poisoned",
    "fleet.serve.unavailable",
    "fleet.fault.worker_kill",
    "fleet.fault.lease_corrupt",
    "fleet.fault.heartbeat_stall",
    "fleet.dispatcher.spawned",
    "fleet.dispatcher.started",
    "fleet.dispatcher.crashed",
    "fleet.dispatcher.completed",
    "fleet.transition",
    "slo.violation",
    "span",
})

#: Default event-log filename inside a campaign directory.
EVENTS_NAME = "events.jsonl"


def _jsonable(value):
    """Clamp an event field to JSON-encodable data (tags are often
    tuples; payloads occasionally carry rich objects)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class EventLog:
    """Append-only JSONL sink, flushed per record.

    One :class:`EventLog` is attached to the campaign telemetry
    (:meth:`~repro.obs.metrics.Telemetry.enable_tracing`); everything
    instrumented then reaches it through ``telemetry.emit``.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        # The simulation service emits from request-handler threads and
        # its executor thread at once; serialize so records never tear.
        self._lock = threading.Lock()
        self.emitted = 0

    def emit(self, event: str, **fields) -> None:
        """Append one event record and flush it to disk immediately.

        Thread-safe: one record is written atomically with respect to
        other emitters on this log."""
        record = {"ts": round(time.time(), 6), "event": event}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, sort_keys=False) + "\n"
        with self._lock:
            if self._handle is None:  # pragma: no cover - emit after close
                return
            self._handle.write(line)
            self._handle.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventLog({self.path}, emitted={self.emitted})"


def iter_events(path: str | Path) -> Iterator[dict]:
    """Yield event records from a JSONL file, skipping blank lines.

    A torn final line (campaign killed mid-write) is yielded as a
    ``{"_malformed": <line>}`` marker instead of raising, so a partial
    trace stays readable — exactly the crash scenario the incremental
    log exists for.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                yield {"_malformed": line}
                continue
            yield record if isinstance(record, dict) else {"_malformed": line}


def read_events(path: str | Path) -> list[dict]:
    """All well-formed events of a JSONL trace, in file order."""
    return [
        record for record in iter_events(path) if "_malformed" not in record
    ]


def validate_event(record: dict) -> list[str]:
    """Schema errors of one event record (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"event must be an object (got {type(record).__name__})"]
    if "_malformed" in record:
        return ["unparseable JSON line"]
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        errors.append(f"missing/invalid 'ts' (got {ts!r})")
    event = record.get("event")
    if not isinstance(event, str):
        errors.append(f"missing/invalid 'event' (got {event!r})")
    elif event not in EVENT_TYPES:
        errors.append(f"unknown event type {event!r}")
    if event == "span":
        for field in ("name", "span_id", "start_s", "dur_s"):
            if field not in record:
                errors.append(f"span event missing {field!r}")
    try:
        json.dumps(record)
    except (TypeError, ValueError):
        errors.append("event is not JSON-serializable")
    return errors


def validate_event_log(path: str | Path) -> tuple[int, list[str]]:
    """Validate a whole JSONL trace; returns ``(n_valid, errors)``.

    A single malformed *final* line is tolerated (torn tail of a killed
    campaign); malformed lines elsewhere, or schema violations, are
    reported as errors prefixed with their 1-based line number.
    """
    records = list(iter_events(path))
    errors: list[str] = []
    n_valid = 0
    for lineno, record in enumerate(records, start=1):
        if "_malformed" in record:
            if lineno == len(records):
                continue  # torn tail: expected crash artifact
            errors.append(f"line {lineno}: unparseable JSON")
            continue
        record_errors = validate_event(record)
        if record_errors:
            errors.extend(f"line {lineno}: {e}" for e in record_errors)
        else:
            n_valid += 1
    return n_valid, errors
