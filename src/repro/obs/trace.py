"""Chrome trace-event exporter (Perfetto / ``chrome://tracing``).

Converts a campaign's JSONL event log into the Chrome trace-event JSON
format, so a ``--jobs N`` sweep can be inspected on a real timeline UI:
spans become duration (``"ph": "X"``) slices on the *campaign* track,
individual runs become slices on a *runs* track (their start
reconstructed as ``completion - duration``), and the remaining
lifecycle events become instants.

Runs carry the pid of the process that executed them (the ``worker``
field of ``run.completed``), and the exporter lays out **one lane per
distinct worker** — a ``--jobs N`` campaign renders as N parallel run
tracks, so pool imbalance and degraded-to-serial phases are visible at
a glance.  Events from logs predating the worker field still land on
the single legacy ``runs`` lane.

The exporter is offline-only — it reads the event log the campaign
already wrote, adding zero cost to the instrumented hot path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..ioutil import atomic_write_json

__all__ = ["chrome_trace", "export_chrome_trace"]

#: Synthetic process/thread ids for the trace tracks.
PID = 1
TID_SPANS = 1
TID_RUNS = 2
TID_EVENTS = 3
#: Per-worker run lanes start here (clear of the fixed tracks above).
TID_WORKER_BASE = 10

#: Lifecycle events that already appear as slices elsewhere and would
#: only clutter the instant track.
_SKIP_INSTANTS = frozenset({"span", "run.completed"})


def _worker_lanes(events: list[dict]) -> dict:
    """Map each distinct worker seen on ``run.completed`` events — an
    executing pid, or a fleet worker-id string — to its own thread id
    (pids first, then names, each sorted, so lane order is stable
    across exports)."""
    workers = {
        event["worker"]
        for event in events
        if event.get("event") == "run.completed"
        and isinstance(event.get("worker"), (int, str))
    }
    ordered = sorted(
        workers, key=lambda worker: (isinstance(worker, str), str(worker))
    )
    return {
        worker: TID_WORKER_BASE + lane for lane, worker in enumerate(ordered)
    }


def _fleet_names(events: list[dict]) -> dict:
    """Executing pid → fleet worker id, from ``fleet.worker.started``
    events — so a folded fleet event log labels each pid lane with the
    worker that owned it."""
    return {
        event["pid"]: event["worker"]
        for event in events
        if event.get("event") == "fleet.worker.started"
        and isinstance(event.get("pid"), int)
        and isinstance(event.get("worker"), str)
    }


def _track_names(lanes: dict, fleet: dict | None = None) -> list[dict]:
    fleet = fleet or {}
    named = [
        (TID_SPANS, "spans (campaign/experiment/session)"),
        (TID_EVENTS, "lifecycle events"),
    ]
    if not lanes:
        named.append((TID_RUNS, "runs"))
    named.extend(
        (
            tid,
            f"runs ({fleet[worker]} · worker {worker})"
            if worker in fleet
            else f"runs (worker {worker})",
        )
        for worker, tid in lanes.items()
    )
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(named)
    ]


def chrome_trace(events: Iterable[dict]) -> dict:
    """Build a Chrome trace-event payload from event records.

    Timestamps are microseconds relative to the earliest event, which
    keeps the JSON compact and the timeline anchored at zero.
    """
    events = [e for e in events if "_malformed" not in e]
    stamps = [e["ts"] for e in events if isinstance(e.get("ts"), (int, float))]
    for event in events:
        start = event.get("start_s")
        if isinstance(start, (int, float)):
            stamps.append(start)
        # Run slices start at completion - duration; the origin must
        # cover them too or the earliest run gets a negative timestamp.
        if (
            event.get("event") == "run.completed"
            and isinstance(event.get("ts"), (int, float))
            and isinstance(event.get("dur_s"), (int, float))
        ):
            stamps.append(event["ts"] - event["dur_s"])
    origin = min(stamps) if stamps else 0.0

    def us(seconds: float) -> float:
        return round((seconds - origin) * 1e6, 1)

    lanes = _worker_lanes(events)
    trace_events: list[dict] = list(_track_names(lanes, _fleet_names(events)))
    for event in events:
        kind = event.get("event")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        if kind == "span":
            start = event.get("start_s", ts)
            duration = float(event.get("dur_s", 0.0))
            args = {
                key: value
                for key, value in event.items()
                if key not in ("event", "ts", "name", "start_s", "dur_s")
            }
            trace_events.append({
                "name": str(event.get("name", "span")),
                "cat": "span",
                "ph": "X",
                "ts": us(float(start)),
                "dur": round(duration * 1e6, 1),
                "pid": PID,
                "tid": TID_SPANS,
                "args": args,
            })
        elif kind == "run.completed" and isinstance(
            event.get("dur_s"), (int, float)
        ):
            duration = float(event["dur_s"])
            worker = event.get("worker")
            trace_events.append({
                "name": str(event.get("run", "run")),
                "cat": "run",
                "ph": "X",
                "ts": us(float(ts) - duration),
                "dur": round(duration * 1e6, 1),
                "pid": PID,
                "tid": lanes.get(worker, TID_RUNS),
                "args": {
                    "attempts": event.get("attempts", 1),
                    "fingerprint": event.get("fingerprint"),
                    "worker": worker,
                },
            })
        elif kind not in _SKIP_INSTANTS and isinstance(kind, str):
            args = {
                key: value
                for key, value in event.items()
                if key not in ("event", "ts")
            }
            trace_events.append({
                "name": kind,
                "cat": "lifecycle",
                "ph": "i",
                "s": "g",
                "ts": us(float(ts)),
                "pid": PID,
                "tid": TID_EVENTS,
                "args": args,
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    events: Iterable[dict], path: str | Path
) -> Path:
    """Write the Chrome trace JSON for *events* to *path* (atomically);
    returns the path."""
    return atomic_write_json(Path(path), chrome_trace(events))
