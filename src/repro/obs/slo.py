"""Declarative service-level objectives over the windowed series.

An :class:`SLO` names a target over the live metrics plane — "p95 of
the hot tier stays under 50 ms", "the serve error rate stays under
1%" — plus an **error budget**: the fraction of events allowed to miss
the target.  Each :class:`~repro.obs.series.SeriesWindow` is evaluated
into an :class:`SloStatus` carrying the window's service-level
indicator (bad-event fraction) and its **burn rate** — SLI divided by
budget, the standard multiplier of "how fast is this window spending
the budget" (1.0 = exactly on budget, 10 = burning ten windows' worth
in one).

Two SLO kinds cover the operational surface:

* ``latency`` — over a histogram: the SLI is the fraction of the
  window's observations above ``threshold_s``, computed exactly from
  the log-spaced bucket deltas (no samples involved).
* ``error_rate`` — over counters: the SLI is a numerator counter delta
  divided by the summed denominator deltas.

Violations (burn rate > 1 on a non-empty window) are emitted as
structured ``slo.violation`` events and counted under
``slo.violations`` so the event log, the Prometheus exposition and
``repro-noise top`` all see the same signal.

Policies are declarative: built in code, from a list of dicts
(:meth:`SloPolicy.from_spec`), or from a JSON file
(:meth:`SloPolicy.from_file` — what ``repro-noise serve --slo`` loads).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .series import SeriesWindow

__all__ = [
    "SLO",
    "SloStatus",
    "SloPolicy",
    "default_serve_slos",
]

_KINDS = ("latency", "error_rate")


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    ``budget`` is the allowed bad-event fraction (0.01 → 1% of events
    may miss the target before the budget is burning).
    """

    name: str
    kind: str
    budget: float
    # latency kind
    histogram: str | None = None
    threshold_s: float | None = None
    # error_rate kind
    numerator: str | None = None
    denominator: tuple = ()
    description: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"SLO {self.name!r}: kind must be one of {_KINDS} "
                f"(got {self.kind!r})"
            )
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"SLO {self.name!r}: budget must be in (0, 1] "
                f"(got {self.budget})"
            )
        if self.kind == "latency":
            if not self.histogram or self.threshold_s is None:
                raise ValueError(
                    f"latency SLO {self.name!r} needs 'histogram' and "
                    f"'threshold_s'"
                )
            if self.threshold_s <= 0:
                raise ValueError(
                    f"SLO {self.name!r}: threshold_s must be > 0 "
                    f"(got {self.threshold_s})"
                )
        else:
            if not self.numerator or not self.denominator:
                raise ValueError(
                    f"error_rate SLO {self.name!r} needs 'numerator' and "
                    f"'denominator'"
                )
        # JSON specs carry lists; freeze for hashability.
        if not isinstance(self.denominator, tuple):
            object.__setattr__(self, "denominator", tuple(self.denominator))

    @classmethod
    def from_dict(cls, spec: dict) -> "SLO":
        known = {
            "name", "kind", "budget", "histogram", "threshold_s",
            "numerator", "denominator", "description",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"SLO spec has unknown fields {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "name" not in spec or "kind" not in spec or "budget" not in spec:
            raise ValueError(
                "SLO spec needs at least 'name', 'kind' and 'budget'"
            )
        return cls(
            name=str(spec["name"]),
            kind=str(spec["kind"]),
            budget=float(spec["budget"]),
            histogram=spec.get("histogram"),
            threshold_s=(
                float(spec["threshold_s"])
                if spec.get("threshold_s") is not None else None
            ),
            numerator=spec.get("numerator"),
            denominator=tuple(spec.get("denominator", ())),
            description=str(spec.get("description", "")),
        )

    def to_dict(self) -> dict:
        record = {"name": self.name, "kind": self.kind, "budget": self.budget}
        if self.kind == "latency":
            record["histogram"] = self.histogram
            record["threshold_s"] = self.threshold_s
        else:
            record["numerator"] = self.numerator
            record["denominator"] = list(self.denominator)
        if self.description:
            record["description"] = self.description
        return record

    # -- evaluation -----------------------------------------------------
    def evaluate(self, window: SeriesWindow) -> "SloStatus":
        """This objective's status over one window."""
        if self.kind == "latency":
            events = window.hist_count(self.histogram)
            sli = (
                window.over_threshold_fraction(self.histogram, self.threshold_s)
                if events else 0.0
            )
        else:
            events = int(
                sum(window.counters.get(name, 0) for name in self.denominator)
            )
            sli = window.ratio(self.numerator, list(self.denominator))
        burn_rate = sli / self.budget
        return SloStatus(
            slo=self,
            t_end=window.t_end,
            window_s=window.duration_s,
            events=events,
            sli=sli,
            burn_rate=burn_rate,
            violated=bool(events) and burn_rate > 1.0,
        )


@dataclass(frozen=True)
class SloStatus:
    """One SLO evaluated over one window."""

    slo: SLO
    t_end: float
    window_s: float
    events: int
    sli: float
    burn_rate: float
    violated: bool

    def to_dict(self) -> dict:
        return {
            "slo": self.slo.name,
            "kind": self.slo.kind,
            "budget": self.slo.budget,
            "t_end": round(self.t_end, 6),
            "window_s": round(self.window_s, 3),
            "events": self.events,
            "sli": round(self.sli, 6),
            "burn_rate": round(self.burn_rate, 4),
            "violated": self.violated,
        }


class SloPolicy:
    """An ordered set of SLOs evaluated together per window."""

    def __init__(self, slos=()):
        self.slos: list[SLO] = list(slos)
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in policy: {names}")

    @classmethod
    def from_spec(cls, spec) -> "SloPolicy":
        """Build from a list of SLO dicts (or ``{"slos": [...]}``)."""
        if isinstance(spec, dict):
            spec = spec.get("slos", [])
        return cls([SLO.from_dict(entry) for entry in spec])

    @classmethod
    def from_file(cls, path: str | Path) -> "SloPolicy":
        return cls.from_spec(json.loads(Path(path).read_text()))

    def evaluate(self, window: SeriesWindow | None) -> list[SloStatus]:
        if window is None:
            return []
        return [slo.evaluate(window) for slo in self.slos]

    def evaluate_and_emit(self, window, telemetry) -> list[SloStatus]:
        """Evaluate one window and account the outcome on *telemetry*:
        ``slo.evaluations``/``slo.violations`` counters plus one
        structured ``slo.violation`` event per breached objective."""
        statuses = self.evaluate(window)
        if not statuses:
            return statuses
        telemetry.increment("slo.evaluations")
        for status in statuses:
            if not status.violated:
                continue
            telemetry.increment("slo.violations")
            telemetry.increment(f"slo.violations.{status.slo.name}")
            telemetry.emit("slo.violation", **status.to_dict())
        return statuses

    def __len__(self) -> int:
        return len(self.slos)

    def __iter__(self):
        return iter(self.slos)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SloPolicy({[slo.name for slo in self.slos]})"


def default_serve_slos() -> SloPolicy:
    """The serving layer's stock objectives: per-tier latency targets
    scaled to the tier's nature (hot replay is a dict lookup; executed
    requests run the engine) plus an overall error budget."""
    return SloPolicy([
        SLO(
            name="hot-latency",
            kind="latency",
            histogram="serve.request.hot.seconds",
            threshold_s=0.05,
            budget=0.05,
            description="95% of hot-tier replies within 50 ms",
        ),
        SLO(
            name="cache-latency",
            kind="latency",
            histogram="serve.request.cache.seconds",
            threshold_s=0.5,
            budget=0.05,
            description="95% of disk-tier replies within 500 ms",
        ),
        SLO(
            name="executed-latency",
            kind="latency",
            histogram="serve.request.executed.seconds",
            threshold_s=60.0,
            budget=0.10,
            description="90% of cold executions within 60 s",
        ),
        SLO(
            name="error-rate",
            kind="error_rate",
            numerator="serve.failures",
            denominator=("serve.requests",),
            budget=0.01,
            description="fewer than 1% of requests fail",
        ),
    ])
