"""``repro-noise top`` — the live terminal dashboard.

Pure rendering over the two live aggregates the metrics plane
produces:

* a fleet campaign's ``live-status.json``
  (:class:`~repro.fleet.live.FleetLiveAggregator`): per-worker states,
  held/stolen leases, progress, recent transitions;
* a serve endpoint's ``metrics`` verb: tier counters, latency
  percentiles, SLO burn.

:func:`render_top` is a pure function ``(status dicts) → frame
string`` so tests assert on content without a terminal; the CLI loop
(:mod:`repro.cli`) clears the screen and reprints the frame in place
every ``--interval`` seconds, exiting when a tailed campaign reports
phase ``folded``.
"""

from __future__ import annotations

import time

__all__ = ["render_top"]

#: Worker states in display order (unknown states sort last).
_STATE_ORDER = {
    "executing": 0, "claiming": 1, "idle": 2,
    "starting": 3, "draining": 4, "stopped": 5,
}

#: Marker per state for the worker table.
_STATE_MARKS = {
    "executing": "▶", "claiming": "…", "idle": "·",
    "starting": "○", "draining": "↓", "stopped": "■",
}


def _fmt_latency(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = float(seconds)
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fleet_lines(status: dict, now: float) -> list[str]:
    lines: list[str] = []
    phase = status.get("phase", "?")
    counts = status.get("counts") or {}
    total = status.get("total_runs")
    complete = counts.get("complete", 0)
    header = f"fleet · phase={phase} · tick {status.get('tick', 0)}"
    age = now - float(status.get("ts", now))
    if age > 0.5:
        header += f" · {age:.1f}s ago"
    lines.append(header)
    if total:
        fraction = complete / total
        lines.append(
            f"  progress {_bar(fraction)} {complete}/{total} "
            f"({100.0 * fraction:.0f}%)"
            + (
                f" · {status['completion_rate']:.2f} runs/s"
                if status.get("completion_rate") else ""
            )
        )
    lines.append(
        "  leases live={live} · claimed={claimed} failed={failed} "
        "poisoned={poisoned} · steals observed={steals}".format(
            live=(status.get("leases") or {}).get("live", 0),
            claimed=counts.get("claimed", 0),
            failed=counts.get("failed", 0),
            poisoned=counts.get("poisoned", 0),
            steals=status.get("observed_steals", 0),
        )
    )
    workers = status.get("workers") or {}
    if workers:
        lines.append(
            f"  {'worker':<10} {'state':<11} {'held':>4} {'done':>5} "
            f"{'stole':>5} {'fail':>4}  point"
        )
        ordered = sorted(
            workers.items(),
            key=lambda kv: (_STATE_ORDER.get(kv[1].get("state"), 9), kv[0]),
        )
        for worker_id, w in ordered:
            state = w.get("state", "?")
            mark = _STATE_MARKS.get(state, "?")
            point = w.get("point") or ""
            if len(point) > 24:
                point = point[:21] + "…"
            lines.append(
                f"  {worker_id:<10} {mark} {state:<9} "
                f"{w.get('held', 0):>4} {w.get('completed', 0):>5} "
                f"{w.get('stolen', 0):>5} {w.get('failed', 0):>4}  {point}"
            )
    transitions = status.get("transitions") or []
    if transitions:
        lines.append("  recent transitions:")
        for t in transitions[-4:]:
            lines.append(
                f"    {t.get('worker')}: "
                f"{t.get('from') or '∅'} → {t.get('to')}"
            )
    return lines


def _serve_lines(reply: dict) -> list[str]:
    lines: list[str] = []
    snapshot = reply.get("metrics") or {}
    counters = snapshot.get("counters") or {}
    requests = counters.get("serve.requests", 0)
    lines.append(
        f"serve · up {float(reply.get('uptime_s', 0.0)):.0f}s · "
        f"{requests} requests · windows={reply.get('windows', 0)}"
        f"@{reply.get('window_s', 0):g}s"
    )
    hot = reply.get("hot") or {}
    lines.append(
        "  tiers hot={h} cache={c} coalesced={co} executed={e} busy={b} "
        "· hot-lru {entries}/{capacity}".format(
            h=counters.get("serve.tier.hot", 0),
            c=counters.get("serve.tier.cache", 0),
            co=counters.get("serve.tier.coalesced", 0),
            e=counters.get("serve.tier.executed", 0),
            b=counters.get("serve.busy", 0),
            entries=hot.get("entries", 0),
            capacity=hot.get("capacity", 0),
        )
    )
    percentiles = reply.get("percentiles") or {}
    if percentiles:
        lines.append(
            f"  {'latency':<28} {'n':>6} {'p50':>9} {'p95':>9} {'p99':>9}"
        )
        for name in sorted(percentiles):
            entry = percentiles[name]
            label = name.removeprefix("serve.request.").removesuffix(
                ".seconds"
            ).removesuffix("seconds") or "all"
            lines.append(
                f"  {label:<28} {entry.get('count', 0):>6} "
                f"{_fmt_latency(entry.get('p50')):>9} "
                f"{_fmt_latency(entry.get('p95')):>9} "
                f"{_fmt_latency(entry.get('p99')):>9}"
            )
    slo = reply.get("slo") or []
    if slo:
        lines.append("  slo burn (last window):")
        for status in slo:
            flag = "VIOLATED" if status.get("violated") else "ok"
            lines.append(
                f"    {status.get('slo'):<20} burn={status.get('burn_rate', 0):>8.2f} "
                f"sli={status.get('sli', 0):.4f} "
                f"events={status.get('events', 0)} {flag}"
            )
    violations = counters.get("slo.violations", 0)
    if violations:
        lines.append(f"  slo violations since start: {violations}")
    return lines


def render_top(
    fleet_status: dict | None = None,
    serve_metrics: dict | None = None,
    *,
    now: float | None = None,
    errors: list[str] | None = None,
) -> str:
    """One dashboard frame over whatever live aggregates exist."""
    now = time.time() if now is None else float(now)
    lines = ["repro-noise top — live metrics plane", ""]
    if fleet_status:
        lines.extend(_fleet_lines(fleet_status, now))
        lines.append("")
    if serve_metrics:
        lines.extend(_serve_lines(serve_metrics))
        lines.append("")
    if errors:
        lines.extend(f"! {error}" for error in errors)
        lines.append("")
    if not fleet_status and not serve_metrics and not errors:
        lines.append("(nothing to watch: pass --campaign and/or --serve)")
    return "\n".join(lines).rstrip() + "\n"
