"""Metric primitives of the observability layer: counters, timers,
histograms and hierarchical spans, in one :class:`Telemetry` sink.

This module subsumes the engine's original flat counter bag and
extends it with the two instruments a parallel campaign cannot be
tuned without:

* **histograms** — latency *distributions* (per-run wall clock, cache
  lookup latency, attempts per run) instead of accumulated totals, so
  a ``--jobs N`` sweep exposes its p50/p95/p99 and not just a mean;
* **spans** — a hierarchical wall-clock tree (campaign → experiment →
  session phases) recorded through a context-manager API that costs a
  single attribute check when tracing is disabled.

Telemetry instances are also **mergeable**: a pool worker snapshots
what it recorded for one chunk (:meth:`Telemetry.merge_payload`) and
the parent folds it back in (:meth:`Telemetry.merge`), which is how
worker-side metrics survive the ``ProcessPoolExecutor`` boundary (see
:mod:`repro.engine.executor`).

The module stays dependency-free and cheap enough to leave enabled
unconditionally: a counter bump is a dict update, a timer is two
``perf_counter`` calls, a histogram sample is a list append, and a
disabled span is a shared no-op context manager.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from collections import defaultdict
from contextlib import contextmanager, nullcontext
from typing import Iterator

__all__ = [
    "Histogram",
    "Span",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "capture_telemetry",
    "BUCKET_BOUNDS",
    "RESILIENCE_COUNTERS",
]

#: The failure/retry counters the resilience layer reports (kept in one
#: place so the CLI, the exporter and the tests agree on the names).
RESILIENCE_COUNTERS = (
    "engine.retries",                  # extra attempts that succeeded late
    "engine.failures",                 # runs that exhausted their budget
    "engine.timeouts",                 # per-run wall-clock budget hits
    "engine.pool.degraded_to_serial",  # broken pools absorbed in-process
    "engine.pool.chunk_failures",      # chunks re-run after pool faults
    "engine.cache.quarantined",        # torn cache entries recomputed
    "engine.points_dropped",           # collect-mode points kept out of sweeps
)

#: Bound on retained histogram samples; beyond it the reservoir is
#: decimated deterministically (every other sample) so percentiles stay
#: representative at fixed memory.
HISTOGRAM_MAX_SAMPLES = 8192

#: Fixed log-spaced bucket upper bounds (seconds-flavoured but
#: unit-agnostic): 100 µs … ~839 s, doubling per bucket, plus an
#: implicit +Inf overflow bucket.  Bucket *counts* — unlike the sample
#: reservoir, which decimates — are exact monotone counters, so the
#: windowed series layer can difference two snapshots and recover the
#: distribution of just that window, and the Prometheus exposition can
#: publish textbook cumulative ``le`` buckets.
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-4 * 2.0 ** i for i in range(24))

#: Bound on retained completed root spans (a campaign has a handful;
#: the bound only guards against a pathological span-per-run pattern).
MAX_ROOT_SPANS = 512


class Histogram:
    """A latency/size distribution: exact count/total/min/max plus a
    bounded sample reservoir for percentiles.

    The reservoir is decimated deterministically (keep every other
    retained sample, double the acceptance stride) when it fills, so
    two identical campaigns always report identical percentiles.
    """

    __slots__ = (
        "count", "total", "min", "max",
        "samples", "max_samples", "buckets", "_stride", "_pending",
    )

    def __init__(self, max_samples: int = HISTOGRAM_MAX_SAMPLES):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.samples: list[float] = []
        self.max_samples = max_samples
        # Per-bucket (non-cumulative) counts over BUCKET_BOUNDS, last
        # slot is the +Inf overflow; exact, never decimated.
        self.buckets: list[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self._stride = 1
        self._pending = 0

    # -- recording ------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self.samples.append(value)
            if len(self.samples) >= self.max_samples:
                self._decimate()

    def _decimate(self) -> None:
        self.samples = self.samples[::2]
        self._stride *= 2

    # -- reading --------------------------------------------------------
    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile over the retained samples (``None``
        when nothing was observed)."""
        if not self.samples:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100] (got {p})")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """JSON-friendly digest (the shape ``telemetry.json`` carries)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(50), 6),
            "p95": round(self.percentile(95), 6),
            "p99": round(self.percentile(99), 6),
            "buckets": list(self.buckets),
        }

    # -- merging --------------------------------------------------------
    def dump(self) -> dict:
        """Picklable/JSON-friendly full state (for worker→parent merge)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
            "buckets": list(self.buckets),
        }

    def merge_dump(self, payload: dict) -> None:
        """Fold a :meth:`dump` from another histogram into this one."""
        count = int(payload.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(payload.get("total", 0.0))
        for bound in (payload.get("min"), payload.get("max")):
            if bound is None:
                continue
            bound = float(bound)
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        for sample in payload.get("samples", ()):
            self.samples.append(float(sample))
        while len(self.samples) >= self.max_samples:
            self._decimate()
        # Dumps from pre-bucket builds fold bucket-free; counts stay
        # consistent with whatever was actually recorded per bucket.
        for index, bucket_count in enumerate(payload.get("buckets", ())):
            if index < len(self.buckets):
                self.buckets[index] += int(bucket_count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram(count={self.count}, retained={len(self.samples)})"


class Span:
    """One node of the wall-clock tree: name, bounds, nested children.

    ``start_s`` is wall-clock epoch time (so spans align with event-log
    timestamps and the Chrome trace timeline); ``duration_s`` is
    measured on the monotonic clock.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start_s", "duration_s",
        "meta", "error", "children", "_t0",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        meta: dict | None = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = time.time()
        self.duration_s: float | None = None
        self.meta = meta or {}
        self.error = False
        self.children: list[Span] = []
        self._t0 = time.perf_counter()

    def close(self, error: bool = False) -> None:
        self.duration_s = time.perf_counter() - self._t0
        self.error = error

    def to_dict(self) -> dict:
        """JSON-friendly nested form (the span tree in snapshots)."""
        record = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s or 0.0, 6),
        }
        if self.error:
            record["error"] = True
        if self.meta:
            record["meta"] = {str(k): _jsonable(v) for k, v in self.meta.items()}
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id})"


def _jsonable(value):
    """Clamp a metadata value to something JSON-encodable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


#: Shared no-op context manager returned by :meth:`Telemetry.span` when
#: tracing is disabled — the "zero overhead" path is one attribute
#: check plus returning this singleton.
_NULL_SPAN = nullcontext()


class _SpanContext:
    """Context manager that opens/closes one :class:`Span` on a
    telemetry instance's span stack (exception-safe: the stack unwinds
    and the span is marked errored when the body raises)."""

    __slots__ = ("_telemetry", "_name", "_meta", "_span")

    def __init__(self, telemetry: "Telemetry", name: str, meta: dict):
        self._telemetry = telemetry
        self._name = name
        self._meta = meta
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._telemetry._open_span(self._name, self._meta)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._telemetry._close_span(self._span, error=exc_type is not None)
        return False


class Telemetry:
    """A bag of named counters, accumulated timers, histograms and —
    when tracing is enabled — hierarchical spans and lifecycle events."""

    def __init__(self) -> None:
        self.counters: defaultdict[str, int] = defaultdict(int)
        self.timers: defaultdict[str, float] = defaultdict(float)
        self.histograms: dict[str, Histogram] = {}
        self.events = None  # optional repro.obs.events.EventLog
        self.span_roots: list[Span] = []
        self.span_stats: dict[str, list] = {}  # name -> [count, total_s]
        self._tracing = False
        self._span_stack: list[Span] = []
        self._span_seq = 0

    # -- recording ------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name*."""
        self.counters[name] += amount

    def observe_seconds(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* under timer *name*."""
        self.timers[name] += seconds

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram *name*."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_seconds(name, time.perf_counter() - start)

    # -- tracing (spans + events) ---------------------------------------
    @property
    def tracing(self) -> bool:
        return self._tracing

    def enable_tracing(self, events=None) -> None:
        """Turn span recording on, optionally attaching an event sink
        (:class:`repro.obs.events.EventLog`) that span closures and
        lifecycle events are written to."""
        self._tracing = True
        if events is not None:
            self.events = events

    def span(self, name: str, **meta):
        """A context manager that records a :class:`Span` around its
        body — or a shared no-op when tracing is disabled."""
        if not self._tracing:
            return _NULL_SPAN
        return _SpanContext(self, name, meta)

    def emit(self, event: str, **fields) -> None:
        """Append one lifecycle event to the attached event log (no-op
        without a sink, so instrumented code never checks)."""
        sink = self.events
        if sink is not None:
            sink.emit(event, **fields)

    def _open_span(self, name: str, meta: dict) -> Span:
        self._span_seq += 1
        parent = self._span_stack[-1] if self._span_stack else None
        span = Span(
            name,
            self._span_seq,
            parent.span_id if parent is not None else None,
            meta,
        )
        self._span_stack.append(span)
        return span

    def _close_span(self, span: Span, error: bool = False) -> None:
        span.close(error=error)
        # Unwind to this span even if inner spans leaked (an inner body
        # that raised past its __exit__ cannot wedge the stack).
        while self._span_stack:
            popped = self._span_stack.pop()
            if popped is span:
                break
        parent = self._span_stack[-1] if self._span_stack else None
        if parent is not None:
            parent.children.append(span)
        elif len(self.span_roots) < MAX_ROOT_SPANS:
            self.span_roots.append(span)
        stats = self.span_stats.setdefault(span.name, [0, 0.0])
        stats[0] += 1
        stats[1] += span.duration_s or 0.0
        self.emit(
            "span",
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start_s=round(span.start_s, 6),
            dur_s=round(span.duration_s or 0.0, 6),
            error=span.error,
            **{f"meta_{k}": _jsonable(v) for k, v in span.meta.items()},
        )

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        return self.histograms.get(name)

    def cache_hit_rate(self) -> float:
        """Fraction of engine cache lookups served from cache (0 when
        no lookups happened yet)."""
        hits = self.counter("engine.cache.hits")
        misses = self.counter("engine.cache.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def resilience_summary(self) -> dict[str, int]:
        """The non-zero failure/retry/degradation counters — what a
        post-mortem of a rough campaign looks at first."""
        return {
            name: self.counter(name)
            for name in RESILIENCE_COUNTERS
            if self.counter(name)
        }

    def span_summary(self) -> dict[str, dict]:
        """Per-span-name count and total wall clock."""
        return {
            name: {"count": stats[0], "total_seconds": round(stats[1], 6)}
            for name, stats in sorted(self.span_stats.items())
        }

    def snapshot(self) -> dict:
        """A JSON-friendly copy of the current state (round-trips
        through ``json.dumps``/``loads`` unchanged)."""
        snapshot = {
            "counters": dict(self.counters),
            "timers": {name: round(s, 6) for name, s in self.timers.items()},
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
            "resilience": self.resilience_summary(),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": self.span_summary(),
        }
        if self.span_roots:
            snapshot["span_tree"] = [
                span.to_dict() for span in self.span_roots
            ]
        return snapshot

    def reset(self) -> None:
        """Clear all counters, timers, histograms and span state (the
        event sink is left attached)."""
        self.counters.clear()
        self.timers.clear()
        self.histograms.clear()
        self.span_roots.clear()
        self.span_stats.clear()
        self._span_stack.clear()
        self._span_seq = 0

    # -- merging (worker → parent) --------------------------------------
    def merge_payload(self) -> dict:
        """A picklable snapshot of everything mergeable — what a pool
        worker ships back to the parent per chunk.  Spans/events are
        deliberately excluded: they are parent-side instruments (the
        parent is the event log's single writer)."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "histograms": {
                name: histogram.dump()
                for name, histogram in self.histograms.items()
            },
        }

    def merge(self, payload: dict | None) -> None:
        """Fold a :meth:`merge_payload` (e.g. from a pool worker) into
        this instance: counters and timers add, histogram reservoirs
        combine."""
        if not payload:
            return
        for name, amount in payload.get("counters", {}).items():
            self.counters[name] += amount
        for name, seconds in payload.get("timers", {}).items():
            self.timers[name] += seconds
        for name, dump in payload.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge_dump(dump)

    # -- rendering ------------------------------------------------------
    def report(self) -> str:
        """A printable profile of everything recorded so far."""
        lines = ["-- telemetry --"]
        if not (self.counters or self.timers or self.histograms):
            lines.append("(nothing recorded)")
            return "\n".join(lines)
        for name in sorted(self.counters):
            lines.append(f"{name:<40} {self.counters[name]}")
        for name in sorted(self.timers):
            lines.append(f"{name:<40} {self.timers[name]:.3f}s")
        lookups = self.counter("engine.cache.hits") + self.counter(
            "engine.cache.misses"
        )
        if lookups:
            lines.append(
                f"{'engine.cache.hit_rate':<40} "
                f"{100.0 * self.cache_hit_rate():.1f}%"
            )
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if not histogram.count:
                continue
            lines.append(
                f"{name:<40} n={histogram.count} "
                f"p50={histogram.percentile(50):.6g} "
                f"p95={histogram.percentile(95):.6g} "
                f"p99={histogram.percentile(99):.6g}"
            )
        for name, stats in sorted(self.span_stats.items()):
            lines.append(
                f"span {name:<35} n={stats[0]} total={stats[1]:.3f}s"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"timers={len(self.timers)}, "
            f"histograms={len(self.histograms)})"
        )


#: Process-wide default instance used by components not handed one.
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide default :class:`Telemetry` instance."""
    return _GLOBAL


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the process-wide default instance (tests, isolated
    campaigns); returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry
    return previous


@contextmanager
def capture_telemetry() -> Iterator[Telemetry]:
    """Route ambient (:func:`get_telemetry`) recording into a fresh,
    private :class:`Telemetry` for the duration of the block.

    This is the worker-side half of the multiprocess merge: a pool
    worker captures everything one chunk records, ships
    ``local.merge_payload()`` back with the results, and the parent
    folds it into the campaign sink.  Components holding an *explicit*
    telemetry reference are unaffected — only ambient lookups divert.
    """
    local = Telemetry()
    previous = set_telemetry(local)
    try:
        yield local
    finally:
        set_telemetry(previous)
