"""Windowed time-series over :class:`~repro.obs.metrics.Telemetry`.

The metrics layer accumulates *cumulative* counters and histograms —
ideal for post-mortems, useless for "what is the service doing right
now".  This module closes that gap with periodic snapshot deltas: a
:class:`TelemetrySeries` is ticked every few seconds, differences the
current state against the previous tick, and keeps the resulting
:class:`SeriesWindow` records in a bounded ring buffer.

* **Rates** come from counter/timer deltas divided by the window
  duration (``serve.requests`` delta over a 5 s window → qps).
* **Rolling percentiles** come from histogram *bucket-count* deltas:
  unlike the decimating sample reservoir, the log-spaced bucket
  counters (:data:`~repro.obs.metrics.BUCKET_BOUNDS`) are exact and
  monotone, so subtracting two snapshots yields the exact bucket
  distribution of just that window, from which
  :func:`bucket_percentile` interpolates p50/p95/p99.

A series can tick a live in-process :class:`Telemetry` (the serve
metrics ticker) or wire-shape snapshot dicts (``repro-noise top``
polling a remote ``metrics`` verb) — both reduce to the same state
shape via :func:`series_state`.

Counter resets (a restarted service, ``Telemetry.reset``) surface as a
negative delta; the series re-baselines and skips that window instead
of reporting garbage negative rates — the same semantics a Prometheus
``rate()`` applies across target restarts.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .metrics import BUCKET_BOUNDS, Telemetry

__all__ = [
    "SERIES_CAPACITY",
    "SeriesWindow",
    "TelemetrySeries",
    "bucket_percentile",
    "series_state",
]

#: Default ring-buffer capacity: at a 5 s window this retains the last
#: 20 minutes of operational history at fixed memory.
SERIES_CAPACITY = 240


def bucket_percentile(
    counts,
    p: float,
    bounds: tuple[float, ...] = BUCKET_BOUNDS,
) -> float | None:
    """Estimate the *p*-th percentile from per-bucket (non-cumulative)
    counts over *bounds*, interpolating linearly inside the bucket.

    ``None`` when the counts are empty.  Values in the +Inf overflow
    bucket clamp to the largest finite bound (they are, by
    construction, "at least that slow").
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100] (got {p})")
    total = sum(counts)
    if total <= 0:
        return None
    rank = max(1, math.ceil(p / 100.0 * total))
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):
                return bounds[-1]
            upper = bounds[index]
            lower = bounds[index - 1] if index else 0.0
            fraction = (rank - (cumulative - bucket_count)) / bucket_count
            return lower + (upper - lower) * fraction
    return bounds[-1]


def series_state(source) -> dict:
    """Reduce a :class:`Telemetry` instance *or* a wire-shape snapshot
    dict (``Telemetry.snapshot()`` / serve ``metrics`` reply) to the
    minimal cumulative state the series layer diffs: counters, timers,
    and per-histogram ``{count, total, buckets}``."""
    if isinstance(source, Telemetry):
        return {
            "counters": dict(source.counters),
            "timers": dict(source.timers),
            "histograms": {
                name: {
                    "count": histogram.count,
                    "total": histogram.total,
                    "buckets": list(histogram.buckets),
                }
                for name, histogram in source.histograms.items()
            },
        }
    if not isinstance(source, dict):
        raise TypeError(
            f"series source must be Telemetry or snapshot dict "
            f"(got {type(source).__name__})"
        )
    histograms = {}
    for name, summary in source.get("histograms", {}).items():
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        histograms[name] = {
            "count": int(summary["count"]),
            "total": float(summary.get("total", 0.0)),
            "buckets": [int(c) for c in summary.get("buckets", ())],
        }
    return {
        "counters": dict(source.get("counters", {})),
        "timers": dict(source.get("timers", {})),
        "histograms": histograms,
    }


@dataclass
class SeriesWindow:
    """One window's worth of activity: deltas between two snapshots."""

    t_start: float
    t_end: float
    counters: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(self.t_end - self.t_start, 1e-9)

    # -- counters -------------------------------------------------------
    def delta(self, name: str) -> float:
        return self.counters.get(name, 0)

    def rate(self, name: str) -> float:
        """Counter delta per second over this window."""
        return self.counters.get(name, 0) / self.duration_s

    def ratio(self, numerator: str, denominator_total: list[str]) -> float:
        """Counter delta ratio (0.0 when the denominator is empty)."""
        total = sum(self.counters.get(name, 0) for name in denominator_total)
        return self.counters.get(numerator, 0) / total if total else 0.0

    # -- histograms -----------------------------------------------------
    def hist_count(self, name: str) -> int:
        return int(self.histograms.get(name, {}).get("count", 0))

    def hist_mean(self, name: str) -> float | None:
        entry = self.histograms.get(name)
        if not entry or not entry.get("count"):
            return None
        return entry["total"] / entry["count"]

    def percentile(self, name: str, p: float) -> float | None:
        """Windowed percentile of histogram *name* from bucket deltas."""
        entry = self.histograms.get(name)
        if not entry:
            return None
        return bucket_percentile(entry.get("buckets", ()), p)

    def over_threshold_fraction(self, name: str, threshold: float) -> float:
        """Fraction of this window's observations above *threshold* —
        the service-level indicator the SLO layer burns budget on.
        Computed from the bucket deltas (bound ≤ threshold counts as
        good), so it needs no samples."""
        entry = self.histograms.get(name)
        if not entry:
            return 0.0
        counts = entry.get("buckets", ())
        total = sum(counts)
        if not total:
            return 0.0
        good = 0
        for index, bucket_count in enumerate(counts):
            if index < len(BUCKET_BOUNDS) and BUCKET_BOUNDS[index] <= threshold:
                good += bucket_count
        return (total - good) / total

    def to_dict(self) -> dict:
        """JSON-friendly form (what live-status files carry)."""
        return {
            "t_start": round(self.t_start, 6),
            "t_end": round(self.t_end, 6),
            "counters": dict(self.counters),
            "timers": {k: round(v, 6) for k, v in self.timers.items()},
            "histograms": {
                name: {
                    "count": entry["count"],
                    "total": round(entry["total"], 6),
                    "buckets": list(entry["buckets"]),
                }
                for name, entry in self.histograms.items()
            },
        }


class TelemetrySeries:
    """Ring buffer of :class:`SeriesWindow` deltas over a telemetry
    source, ticked periodically by the caller.

    Thread-safe: the serve ticker thread ticks while request handlers
    read ``latest()``/``rate()`` for gauges.
    """

    def __init__(self, source=None, capacity: int = SERIES_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.source = source
        self.windows: deque[SeriesWindow] = deque(maxlen=capacity)
        self.ticks = 0
        self.resets = 0
        self._lock = threading.Lock()
        self._last_ts: float | None = None
        self._last_state: dict | None = None

    # -- ticking --------------------------------------------------------
    def tick(self, now: float | None = None) -> SeriesWindow | None:
        """Snapshot the attached source and append the delta window.

        The first tick establishes the baseline and returns ``None``;
        so does a tick that detects a counter reset (the series
        re-baselines instead of emitting negative rates).
        """
        if self.source is None:
            raise ValueError("series has no attached source; use tick_state")
        return self.tick_state(series_state(self.source), now)

    def tick_snapshot(self, snapshot: dict, now: float | None = None):
        """Tick from a wire-shape snapshot dict (remote polling)."""
        return self.tick_state(series_state(snapshot), now)

    def tick_state(self, state: dict, now: float | None = None):
        now = time.time() if now is None else float(now)
        with self._lock:
            self.ticks += 1
            previous_ts, previous = self._last_ts, self._last_state
            self._last_ts, self._last_state = now, state
            if previous is None:
                return None
            window = _diff(previous, state, previous_ts, now)
            if window is None:
                self.resets += 1
                return None
            self.windows.append(window)
            return window

    # -- reading --------------------------------------------------------
    def latest(self) -> SeriesWindow | None:
        with self._lock:
            return self.windows[-1] if self.windows else None

    def last(self, k: int = 1) -> list[SeriesWindow]:
        with self._lock:
            if k <= 0:
                return []
            return list(self.windows)[-k:]

    def pooled(self, k: int = 1) -> SeriesWindow | None:
        """The last *k* windows merged into one (rates and percentiles
        then smooth over ``k × window_s`` instead of one window)."""
        windows = self.last(k)
        if not windows:
            return None
        merged = SeriesWindow(
            t_start=windows[0].t_start, t_end=windows[-1].t_end
        )
        for window in windows:
            for name, delta in window.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + delta
            for name, delta in window.timers.items():
                merged.timers[name] = merged.timers.get(name, 0.0) + delta
            for name, entry in window.histograms.items():
                into = merged.histograms.setdefault(
                    name, {"count": 0, "total": 0.0, "buckets": []}
                )
                into["count"] += entry["count"]
                into["total"] += entry["total"]
                buckets = entry.get("buckets", ())
                if len(into["buckets"]) < len(buckets):
                    into["buckets"].extend(
                        [0] * (len(buckets) - len(into["buckets"]))
                    )
                for index, bucket_count in enumerate(buckets):
                    into["buckets"][index] += bucket_count
        return merged

    def rate(self, name: str, k: int = 1) -> float:
        pooled = self.pooled(k)
        return pooled.rate(name) if pooled else 0.0

    def percentile(self, name: str, p: float, k: int = 1) -> float | None:
        pooled = self.pooled(k)
        return pooled.percentile(name, p) if pooled else None

    def __len__(self) -> int:
        with self._lock:
            return len(self.windows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TelemetrySeries(windows={len(self.windows)}, ticks={self.ticks})"


def _diff(previous: dict, state: dict, t_start, t_end) -> SeriesWindow | None:
    """Delta two cumulative states; ``None`` signals a counter reset."""
    counters: dict = {}
    for name, value in state.get("counters", {}).items():
        delta = value - previous.get("counters", {}).get(name, 0)
        if delta < 0:
            return None
        if delta:
            counters[name] = delta
    timers: dict = {}
    for name, value in state.get("timers", {}).items():
        delta = value - previous.get("timers", {}).get(name, 0.0)
        if delta < -1e-9:
            return None
        if delta > 0:
            timers[name] = delta
    histograms: dict = {}
    for name, entry in state.get("histograms", {}).items():
        before = previous.get("histograms", {}).get(
            name, {"count": 0, "total": 0.0, "buckets": []}
        )
        count_delta = entry["count"] - before.get("count", 0)
        if count_delta < 0:
            return None
        if not count_delta:
            continue
        old_buckets = list(before.get("buckets", ()))
        new_buckets = list(entry.get("buckets", ()))
        if len(old_buckets) < len(new_buckets):
            old_buckets.extend([0] * (len(new_buckets) - len(old_buckets)))
        bucket_deltas = []
        for new_count, old_count in zip(new_buckets, old_buckets):
            bucket_delta = new_count - old_count
            if bucket_delta < 0:
                return None
            bucket_deltas.append(bucket_delta)
        histograms[name] = {
            "count": count_delta,
            "total": entry["total"] - before.get("total", 0.0),
            "buckets": bucket_deltas,
        }
    return SeriesWindow(
        t_start=t_start,
        t_end=t_end,
        counters=counters,
        timers=timers,
        histograms=histograms,
    )
