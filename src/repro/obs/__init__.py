"""``repro.obs`` — the structured observability layer.

The paper's central contribution is measurement infrastructure (skitter
macros, power metering, a service element to read them out); this
package is the reproduction's equivalent for its *own* execution:

* :mod:`repro.obs.metrics` — counters, timers, **histograms** and
  hierarchical **spans** in one mergeable :class:`Telemetry` sink;
* :mod:`repro.obs.events` — an incremental **JSONL event log** of run
  lifecycle events (scheduled, started, retried, failed, cached,
  completed) plus schema validation;
* :mod:`repro.obs.trace` — a **Chrome trace-event / Perfetto**
  exporter over the event log;
* :mod:`repro.obs.profile` — the ``repro-noise profile`` campaign
  post-mortem (latency percentiles, slowest runs, retry hot spots,
  span tree).

See DESIGN.md §7 for the span model, the event schema and the
multiprocess merge semantics.
"""

from .events import (
    EVENT_TYPES,
    EventLog,
    iter_events,
    read_events,
    validate_event,
    validate_event_log,
)
from .metrics import (
    RESILIENCE_COUNTERS,
    Histogram,
    Span,
    Telemetry,
    capture_telemetry,
    get_telemetry,
    set_telemetry,
)
from .profile import (
    CampaignProfile,
    follow_profile,
    load_profile,
    render_profile,
)
from .trace import chrome_trace, export_chrome_trace

__all__ = [
    "Telemetry",
    "Histogram",
    "Span",
    "get_telemetry",
    "set_telemetry",
    "capture_telemetry",
    "RESILIENCE_COUNTERS",
    "EventLog",
    "EVENT_TYPES",
    "iter_events",
    "read_events",
    "validate_event",
    "validate_event_log",
    "chrome_trace",
    "export_chrome_trace",
    "CampaignProfile",
    "follow_profile",
    "load_profile",
    "render_profile",
]
