"""``repro.obs`` — the structured observability layer.

The paper's central contribution is measurement infrastructure (skitter
macros, power metering, a service element to read them out); this
package is the reproduction's equivalent for its *own* execution:

* :mod:`repro.obs.metrics` — counters, timers, **histograms** and
  hierarchical **spans** in one mergeable :class:`Telemetry` sink;
* :mod:`repro.obs.events` — an incremental **JSONL event log** of run
  lifecycle events (scheduled, started, retried, failed, cached,
  completed) plus schema validation;
* :mod:`repro.obs.trace` — a **Chrome trace-event / Perfetto**
  exporter over the event log;
* :mod:`repro.obs.profile` — the ``repro-noise profile`` campaign
  post-mortem (latency percentiles, slowest runs, retry hot spots,
  span tree);
* :mod:`repro.obs.series` — the **live metrics plane**: windowed
  snapshot deltas (rates + rolling percentiles from exact bucket
  counts) in a bounded ring buffer;
* :mod:`repro.obs.slo` — declarative **SLOs** with per-window
  burn-rate evaluation and structured violation events;
* :mod:`repro.obs.expose` — **Prometheus text exposition** (and a
  strict parser for CI assertions);
* :mod:`repro.obs.top` — the ``repro-noise top`` terminal dashboard
  renderer.

See DESIGN.md §7 for the span model, the event schema and the
multiprocess merge semantics, and §13 for the live metrics plane.
"""

from .events import (
    EVENT_TYPES,
    EventLog,
    iter_events,
    read_events,
    validate_event,
    validate_event_log,
)
from .expose import parse_prometheus_text, prometheus_text
from .metrics import (
    BUCKET_BOUNDS,
    RESILIENCE_COUNTERS,
    Histogram,
    Span,
    Telemetry,
    capture_telemetry,
    get_telemetry,
    set_telemetry,
)
from .profile import (
    CampaignProfile,
    follow_profile,
    load_profile,
    render_profile,
)
from .series import (
    SeriesWindow,
    TelemetrySeries,
    bucket_percentile,
    series_state,
)
from .slo import SLO, SloPolicy, SloStatus, default_serve_slos
from .trace import chrome_trace, export_chrome_trace

__all__ = [
    "Telemetry",
    "Histogram",
    "Span",
    "get_telemetry",
    "set_telemetry",
    "capture_telemetry",
    "BUCKET_BOUNDS",
    "RESILIENCE_COUNTERS",
    "EventLog",
    "EVENT_TYPES",
    "iter_events",
    "read_events",
    "validate_event",
    "validate_event_log",
    "chrome_trace",
    "export_chrome_trace",
    "CampaignProfile",
    "follow_profile",
    "load_profile",
    "render_profile",
    "TelemetrySeries",
    "SeriesWindow",
    "series_state",
    "bucket_percentile",
    "SLO",
    "SloPolicy",
    "SloStatus",
    "default_serve_slos",
    "prometheus_text",
    "parse_prometheus_text",
]
