"""Prometheus text-format exposition of a telemetry snapshot.

Dependency-free rendering of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ the
whole monitoring ecosystem scrapes:

* counters → ``repro_<name>_total`` (dotted names sanitized to the
  ``[a-zA-Z0-9_:]`` alphabet);
* timers → ``repro_<name>_seconds_total`` (accumulated seconds are a
  monotone counter);
* histograms → textbook ``_bucket{le="..."}`` / ``_sum`` / ``_count``
  families, with cumulative ``le`` buckets computed from the exact
  log-spaced bucket counts (:data:`~repro.obs.metrics.BUCKET_BOUNDS`);
* caller-supplied **gauges** (queue depth, hit ratios, qps, SLO burn
  rates) → ``repro_<name>`` gauge samples.

Every sample can carry a shared label set (e.g. ``chip="1f2e…"``);
label values are escaped per the spec.  The module also ships
:func:`parse_prometheus_text` — a strict parser for the same format —
so tests and the CI ``metrics-smoke`` job can assert counter
monotonicity and label hygiene between two scrapes without any
external Prometheus tooling.
"""

from __future__ import annotations

import re

from .metrics import BUCKET_BOUNDS

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "sanitize_metric_name",
]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_VALID_METRIC = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_VALID_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted telemetry name onto the Prometheus alphabet
    (``serve.request.seconds`` → ``repro_serve_request_seconds``)."""
    cleaned = _INVALID_CHARS.sub("_", str(name)).strip("_")
    if prefix:
        cleaned = f"{prefix}_{cleaned}" if cleaned else prefix
    if not cleaned or not _VALID_METRIC.match(cleaned):
        raise ValueError(f"cannot build a valid metric name from {name!r}")
    return cleaned


def _escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _fmt(value) -> str:
    """A float the format (and its parsers) round-trips: integral
    values render bare, everything else with repr precision."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return format(number, ".10g")


def _render_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    for key in merged:
        if not _VALID_LABEL.match(key):
            raise ValueError(f"invalid label name {key!r}")
    pairs = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + pairs + "}"


def prometheus_text(
    snapshot: dict,
    *,
    prefix: str = "repro",
    labels: dict | None = None,
    gauges: dict | None = None,
) -> str:
    """Render a ``Telemetry.snapshot()``-shaped dict (plus optional
    gauges) as Prometheus text exposition (version 0.0.4)."""
    labels = dict(labels or {})
    lines: list[str] = []

    for name in sorted(snapshot.get("counters", {})):
        metric = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {metric} Cumulative count of {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric}{_render_labels(labels)} "
            f"{_fmt(snapshot['counters'][name])}"
        )

    for name in sorted(snapshot.get("timers", {})):
        metric = sanitize_metric_name(name, prefix)
        if not metric.endswith("_seconds"):
            metric += "_seconds"
        metric += "_total"
        lines.append(f"# HELP {metric} Accumulated seconds of {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f"{metric}{_render_labels(labels)} "
            f"{_fmt(snapshot['timers'][name])}"
        )

    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} Distribution of {name}.")
        lines.append(f"# TYPE {metric} histogram")
        count = int(summary["count"])
        buckets = summary.get("buckets")
        if buckets:
            cumulative = 0
            for bound, bucket_count in zip(BUCKET_BOUNDS, buckets):
                cumulative += int(bucket_count)
                lines.append(
                    f"{metric}_bucket"
                    f"{_render_labels(labels, {'le': _fmt(bound)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{metric}_bucket{_render_labels(labels, {'le': '+Inf'})} "
                f"{count}"
            )
        lines.append(
            f"{metric}_sum{_render_labels(labels)} "
            f"{_fmt(summary.get('total', 0.0))}"
        )
        lines.append(f"{metric}_count{_render_labels(labels)} {count}")

    for name in sorted(gauges or {}):
        value = gauges[name]
        if value is None:
            continue
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} Gauge {name}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_render_labels(labels)} {_fmt(value)}")

    return "\n".join(lines) + "\n"


def _parse_label_block(block: str) -> dict:
    labels: dict = {}
    remainder = block.strip()
    while remainder:
        match = _LABEL_PAIR.match(remainder)
        if not match:
            raise ValueError(f"malformed label block: {block!r}")
        raw = match.group("value")
        labels[match.group("key")] = (
            raw.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        )
        remainder = remainder[match.end():].lstrip()
        if remainder.startswith(","):
            remainder = remainder[1:].lstrip()
        elif remainder:
            raise ValueError(f"malformed label block: {block!r}")
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Parse text exposition back into
    ``{metric_name: {frozenset(label_items): value}}``.

    Strict on purpose: a malformed sample line, metric name or label
    raises ``ValueError`` — this doubles as the label-hygiene check in
    the CI ``metrics-smoke`` job.
    """
    samples: dict = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = match.group("name")
        labels = _parse_label_block(match.group("labels") or "")
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ValueError(
                f"line {lineno}: bad sample value {raw!r}"
            ) from error
        samples.setdefault(name, {})[frozenset(labels.items())] = value
    return samples
