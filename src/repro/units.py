"""Unit helpers and formatting for electrical and timing quantities.

The library works internally in base SI units (seconds, hertz, volts,
amperes, ohms, henries, farads, watts).  These helpers exist so that
configuration code reads like the paper: ``2 * MHZ``, ``62.5 * NS``,
``48 * MB`` and so on, and so that reports can render values the way the
paper's figures label them (``2MHz``, ``62.5ns``).
"""

from __future__ import annotations

import math

__all__ = [
    "KHZ", "MHZ", "GHZ",
    "PS", "NS", "US", "MS",
    "MV", "MA", "MW",
    "PH", "NH", "UH",
    "PF", "NF", "UF", "MF",
    "MOHM", "UOHM",
    "KB", "MB",
    "format_si", "format_freq", "format_time", "parse_freq",
]

# Frequency multipliers.
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# Time multipliers.
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

# Electrical multipliers.
MV = 1e-3      # millivolt
MA = 1e-3      # milliampere
MW = 1e-3      # milliwatt
PH = 1e-12     # picohenry
NH = 1e-9      # nanohenry
UH = 1e-6      # microhenry
PF = 1e-12     # picofarad
NF = 1e-9      # nanofarad
UF = 1e-6      # microfarad
MF = 1e-3      # millifarad
MOHM = 1e-3    # milliohm
UOHM = 1e-6    # microohm

# Capacity multipliers (bytes).
KB = 1024
MB = 1024 * 1024

_SI_PREFIXES = [
    (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"),
    (1.0, ""), (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"),
    (1e-15, "f"),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Render *value* with an SI prefix, e.g. ``format_si(2.5e6, 'Hz')``
    returns ``'2.5MHz'``.

    Zero, NaN and infinities are rendered without a prefix.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{round(scaled, digits):g}{prefix}{unit}"
    scale, prefix = _SI_PREFIXES[-1]
    return f"{round(value / scale, digits):g}{prefix}{unit}"


def format_freq(hz: float, digits: int = 3) -> str:
    """Format a frequency in the style the paper uses (``2MHz``,
    ``40kHz``)."""
    return format_si(hz, "Hz", digits)


def format_time(seconds: float, digits: int = 3) -> str:
    """Format a duration (``62.5ns``, ``4ms``)."""
    return format_si(seconds, "s", digits)


_FREQ_SUFFIXES = {
    "ghz": GHZ,
    "mhz": MHZ,
    "khz": KHZ,
    "hz": 1.0,
}


def parse_freq(text: str) -> float:
    """Parse a human frequency string (``"2MHz"``, ``"40 kHz"``, ``"1e6"``)
    into hertz.

    Raises :class:`ValueError` on garbage input.
    """
    cleaned = text.strip().lower().replace(" ", "")
    for suffix, scale in _FREQ_SUFFIXES.items():
        if cleaned.endswith(suffix):
            return float(cleaned[: -len(suffix)]) * scale
    return float(cleaned)
