"""repro — reproduction of *Voltage Noise in Multi-core Processors:
Empirical Characterization and Optimization Opportunities* (MICRO 2014).

The library rebuilds, in simulation, the full system behind the paper's
measurement study:

* :mod:`repro.pdn` — lumped RLC power-delivery-network solvers
  (state-space/modal, trapezoidal MNA, impedance profiles, LTI
  superposition) and the calibrated six-core reference chip topology;
* :mod:`repro.isa` / :mod:`repro.uarch` — a synthetic 1301-instruction
  mainframe-class CISC ISA and the core model (dispatch groups,
  functional units, throughput and energy);
* :mod:`repro.mbench` — the Microprobe-role microbenchmark generator;
* :mod:`repro.machine` / :mod:`repro.measure` — the modeled machine
  (TOD facility, process variation, run engine) and its measurement
  substrates (skitter macros, power meter, counters, oscilloscope,
  R-Unit, Vmin protocol);
* :mod:`repro.core` — the paper's contribution: the white-box dI/dt
  stressmark generation methodology, plus a GA baseline;
* :mod:`repro.engine` / :mod:`repro.obs` — the shared run-session
  layer every sweep executes through: content-addressed result caching
  (in-memory + optional disk tier), parallel fan-out over worker
  processes, and structured observability (counters, histograms,
  spans, JSONL event traces);
* :mod:`repro.serve` — the always-on simulation service: a TCP/JSON-
  lines endpoint answering simulation requests through a hot reply
  tier, the engine cache and a warm session pool, with single-flight
  request coalescing and bounded-queue backpressure;
* :mod:`repro.analysis` / :mod:`repro.experiments` — sensitivity
  studies, propagation/correlation analyses, workload-mapping and
  guard-banding optimizations, and one driver per paper table/figure.

Quickstart::

    from repro import StressmarkGenerator, reference_chip, SimulationSession

    generator = StressmarkGenerator()
    mark = generator.max_didt(freq_hz=2e6, synchronize=True)
    session = SimulationSession(reference_chip())
    result = session.run([mark.current_program()] * 6)
    print(result.max_p2p)

Repeating the run (same chip, programs and options) replays it from the
session's content-addressed cache instead of re-solving the PDN.
"""

from .core.generator import StressmarkGenerator
from .core.stressmark import DidtStressmark, StressmarkSpec
from .engine import (
    ResultCache,
    SimulationSession,
    configure_cache,
    global_cache,
    make_executor,
)
from .machine.chip import Chip, ChipConfig, reference_chip
from .machine.runner import ChipRunner, RunOptions, RunResult
from .machine.workload import CurrentProgram, SyncSpec, idle_program
from .mbench.target import Target, default_target
from .obs import Telemetry, get_telemetry
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "StressmarkGenerator",
    "DidtStressmark",
    "StressmarkSpec",
    "Chip",
    "ChipConfig",
    "reference_chip",
    "ChipRunner",
    "SimulationSession",
    "ResultCache",
    "global_cache",
    "configure_cache",
    "make_executor",
    "Telemetry",
    "get_telemetry",
    "RunOptions",
    "RunResult",
    "CurrentProgram",
    "SyncSpec",
    "idle_program",
    "Target",
    "default_target",
    "ReproError",
    "__version__",
]
