"""Trapezoidal modified-nodal-analysis transient engine.

This is the reference time-domain solver for PDN netlists.  It plays the
role the Cadence/Sigrity tool played for the paper's authors: an
independent engine used to confirm what the primary (modal) solution
predicts.  The test suite cross-checks the two solvers against each
other on random networks.

The method is the classic SPICE approach: companion models for the
reactive elements under trapezoidal integration, a constant system
matrix for a fixed time step (factorized once), and a per-step
right-hand-side update.  Trapezoidal integration is A-stable, which
matters because PDN netlists are stiff (sub-nanosecond ESR/C time
constants next to hundred-microsecond board modes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..errors import SolverError
from .elements import GROUND
from .netlist import Netlist

__all__ = ["TransientResult", "simulate_transient"]

#: An input signal: either a constant or a vectorized function of time.
InputSignal = float | Callable[[np.ndarray], np.ndarray]


@dataclass
class TransientResult:
    """Time-domain solution of a transient run.

    Attributes
    ----------
    times:
        Sample instants (s), uniform grid.
    voltages:
        Node name → voltage waveform (V), for each observed node.
    """

    times: np.ndarray
    voltages: dict[str, np.ndarray]

    def peak_to_peak(self, node: str, after: float = 0.0) -> float:
        """Peak-to-peak voltage excursion at *node* for t >= *after*."""
        mask = self.times >= after
        wave = self.voltages[node][mask]
        if wave.size == 0:
            raise SolverError(f"no samples at or after t={after!r}")
        return float(wave.max() - wave.min())


def _evaluate_inputs(
    netlist: Netlist, inputs: Mapping[str, InputSignal], times: np.ndarray
) -> np.ndarray:
    """Build the (n_steps × n_inputs) input matrix from signals.

    Unspecified current ports default to zero; unspecified voltage ports
    are an error (a floating source has no sensible default).
    """
    names = netlist.input_names
    u = np.zeros((times.size, len(names)))
    known = set(names)
    for name in inputs:
        if name not in known:
            raise SolverError(f"unknown input {name!r}")
    voltage_names = {p.name for p in netlist.voltage_ports}
    for j, name in enumerate(names):
        signal = inputs.get(name)
        if signal is None:
            if name in voltage_names:
                raise SolverError(f"voltage port {name!r} needs a supplied value")
            continue
        if callable(signal):
            u[:, j] = np.asarray(signal(times), dtype=float)
        else:
            u[:, j] = float(signal)
    return u


def simulate_transient(
    netlist: Netlist,
    inputs: Mapping[str, InputSignal],
    t_end: float,
    dt: float,
    observe: list[str] | None = None,
) -> TransientResult:
    """Integrate the netlist from a zero initial state over [0, t_end].

    Parameters
    ----------
    netlist:
        The circuit; validated before use.
    inputs:
        Input name → constant or vectorized ``f(times) -> values``.
        Current ports default to 0 when omitted; every voltage port must
        be given.
    t_end, dt:
        Horizon and fixed step (s).  ``t_end`` must exceed ``dt``.
    observe:
        Node names to record; defaults to all nodes.

    Returns
    -------
    TransientResult
        Voltages at the observed nodes on the uniform grid.
    """
    netlist.validate()
    if dt <= 0 or t_end <= dt:
        raise SolverError(f"bad time base: t_end={t_end!r}, dt={dt!r}")

    free_nodes = netlist.free_nodes
    free_index = {name: i for i, name in enumerate(free_nodes)}
    pinned = netlist.pinned_nodes
    input_index = {name: i for i, name in enumerate(netlist.input_names)}
    pinned_input = {p.node: input_index[p.name] for p in netlist.voltage_ports}

    observe = list(observe) if observe is not None else list(netlist.nodes)
    for node in observe:
        if node not in free_index and node not in pinned:
            raise SolverError(f"cannot observe unknown node {node!r}")

    nv = len(free_nodes)
    nl = len(netlist.inductors)
    n_unknowns = nv + nl

    times = np.arange(0.0, t_end + 0.5 * dt, dt)
    u = _evaluate_inputs(netlist, inputs, times)

    lhs = np.zeros((n_unknowns, n_unknowns))
    # Input coupling of the KCL rows (pinned-node conductive paths and
    # load draws): rhs += u_coupling @ u[n].
    u_coupling = np.zeros((n_unknowns, u.shape[1]))

    def stamp_conductance(a: str, b: str, conductance: float) -> None:
        for this, other in ((a, b), (b, a)):
            if this == GROUND or this in pinned:
                continue
            row = free_index[this]
            lhs[row, row] += conductance
            if other == GROUND:
                continue
            if other in pinned:
                u_coupling[row, pinned_input[other]] += conductance
            else:
                lhs[row, free_index[other]] -= conductance

    for res in netlist.resistors:
        stamp_conductance(res.a, res.b, 1.0 / res.ohms)

    # Capacitor companion: series ESR-C branch to ground.
    caps = [netlist.capacitor_at(node) for node in free_nodes]
    cap_geq = np.array(
        [1.0 / (cap.esr + dt / (2.0 * cap.farads)) for cap in caps]
    )
    cap_hist_gain = np.array([dt / (2.0 * cap.farads) for cap in caps])
    for i, geq in enumerate(cap_geq):
        lhs[i, i] += geq

    for port in netlist.current_ports:
        u_coupling[free_index[port.node], input_index[port.name]] -= 1.0

    # Inductor companion rows.
    def endpoint_terms(row: int, endpoint: str, sign: float, factor: float) -> None:
        """Stamp ``sign*factor*v_endpoint`` into inductor row *row*."""
        if endpoint == GROUND:
            return
        if endpoint in pinned:
            u_coupling[row, pinned_input[endpoint]] -= sign * factor
        else:
            lhs[row, free_index[endpoint]] += sign * factor

    for k, ind in enumerate(netlist.inductors):
        row = nv + k
        beta = dt / (2.0 * ind.henries)
        lhs[row, row] = 1.0 + beta * ind.esr
        endpoint_terms(row, ind.a, -beta, 1.0)
        endpoint_terms(row, ind.b, +beta, 1.0)
        # KCL contributions of the branch current unknown.
        if ind.a != GROUND and ind.a not in pinned:
            lhs[free_index[ind.a], row] += 1.0
        if ind.b != GROUND and ind.b not in pinned:
            lhs[free_index[ind.b], row] -= 1.0

    try:
        lu = lu_factor(lhs)
    except ValueError as exc:  # pragma: no cover - defensive
        raise SolverError("transient system could not be factorized") from exc

    # State history.
    x_cap = np.zeros(nv)         # plate voltages
    i_cap = np.zeros(nv)         # capacitor branch currents
    v_prev = np.zeros(nv)
    i_l = np.zeros(nl)
    ind_l = np.array([ind.henries for ind in netlist.inductors])
    ind_r = np.array([ind.esr for ind in netlist.inductors])
    beta_l = dt / (2.0 * ind_l) if nl else np.zeros(0)

    def endpoint_voltage(endpoint: str, v: np.ndarray, u_row: np.ndarray) -> float:
        if endpoint == GROUND:
            return 0.0
        if endpoint in pinned:
            return float(u_row[pinned_input[endpoint]])
        return float(v[free_index[endpoint]])

    recorded = np.zeros((len(observe), times.size))

    def record(step: int, v: np.ndarray, u_row: np.ndarray) -> None:
        for row, node in enumerate(observe):
            recorded[row, step] = endpoint_voltage(node, v, u_row)

    record(0, v_prev, u[0])

    for step in range(1, times.size):
        rhs = u_coupling @ u[step]
        # Capacitor history current sources (entering the node).
        h_cap = cap_geq * (x_cap + cap_hist_gain * i_cap)
        rhs[:nv] += h_cap
        # Inductor history (adds to the current-step source coupling
        # already present in the row from u_coupling).
        for k, ind in enumerate(netlist.inductors):
            va = endpoint_voltage(ind.a, v_prev, u[step - 1])
            vb = endpoint_voltage(ind.b, v_prev, u[step - 1])
            rhs[nv + k] += i_l[k] * (1.0 - beta_l[k] * ind_r[k]) + beta_l[k] * (va - vb)

        solution = lu_solve(lu, rhs)
        if not np.all(np.isfinite(solution)):
            raise SolverError(f"transient solution diverged at step {step}")
        v_now = solution[:nv]
        i_l = solution[nv:]

        # Update capacitor branch state.
        i_cap_now = cap_geq * (v_now - x_cap - cap_hist_gain * i_cap)
        x_cap = x_cap + cap_hist_gain * (i_cap_now + i_cap)
        i_cap = i_cap_now
        v_prev = v_now
        record(step, v_now, u[step])

    return TransientResult(
        times=times,
        voltages={node: recorded[row] for row, node in enumerate(observe)},
    )
