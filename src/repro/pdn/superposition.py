"""Assemble multi-core voltage waveforms by LTI superposition.

A stressmark run is, electrically, a set of current **edge trains**: each
core's activity is a piecewise-constant current whose transitions (the
paper's ΔI events) are ramps with the pipeline's power rise time.
Because the PDN is linear and time invariant, the voltage at any node is
the superposition of scaled, shifted ramp responses — evaluated here from
a precomputed :class:`~repro.pdn.response.ResponseLibrary`.

This is orders of magnitude faster than re-integrating the network for
every stressmark configuration, and it is *exact* for the lumped model
(up to interpolation of the sampled responses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import SolverError
from .response import ResponseLibrary

__all__ = ["EdgeTrain", "edges_from_square_wave", "assemble_voltage"]


@dataclass
class EdgeTrain:
    """Signed current transitions injected at one load port.

    ``times[k]`` is the start instant of edge ``k`` and ``deltas[k]`` its
    signed magnitude in amperes (positive = current increase = droop).
    """

    port: str
    times: np.ndarray
    deltas: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.deltas = np.asarray(self.deltas, dtype=float)
        if self.times.shape != self.deltas.shape:
            raise SolverError("edge times and deltas must have matching shapes")

    @property
    def n_edges(self) -> int:
        return int(self.times.size)

    def shifted(self, offset: float) -> "EdgeTrain":
        """A copy of the train delayed by *offset* seconds."""
        return EdgeTrain(self.port, self.times + offset, self.deltas.copy())


def edges_from_square_wave(
    port: str,
    delta_i: float,
    freq_hz: float,
    n_events: int,
    start: float = 0.0,
    duty: float = 0.5,
    rise_time: float = 0.0,
) -> EdgeTrain:
    """Edge train of a dI/dt stressmark burst.

    The burst alternates high/low power at *freq_hz*; each of the
    *n_events* loop iterations contributes a rising edge (+ΔI) at the
    period start and a falling edge (−ΔI) after ``duty`` of the period.
    The current returns to the low level after the burst.

    When the half-period is shorter than *rise_time* the achievable
    current swing collapses (the pipeline cannot complete the power
    transition): the delta is derated proportionally, which is what makes
    very high stimulus frequencies "too high to generate ΔI events" in
    the paper's Figure 12.
    """
    if freq_hz <= 0:
        raise SolverError("stimulus frequency must be positive")
    if n_events < 1:
        raise SolverError("need at least one ΔI event")
    if not 0.0 < duty < 1.0:
        raise SolverError(f"duty must be in (0, 1), got {duty!r}")
    period = 1.0 / freq_hz
    half = period * min(duty, 1.0 - duty)
    effective = delta_i
    if rise_time > 0.0 and half < rise_time:
        effective = delta_i * half / rise_time
    starts = start + np.arange(n_events) * period
    times = np.empty(2 * n_events)
    deltas = np.empty(2 * n_events)
    times[0::2] = starts
    times[1::2] = starts + duty * period
    deltas[0::2] = +effective
    deltas[1::2] = -effective
    return EdgeTrain(port, times, deltas)


def assemble_voltage(
    library: ResponseLibrary,
    node: str,
    trains: list[EdgeTrain],
    times: np.ndarray,
    baseline: Mapping[str, float] | None = None,
) -> np.ndarray:
    """Voltage *deviation* waveform at *node* produced by the edge trains.

    Parameters
    ----------
    library:
        Precomputed responses (must cover every train's port and *node*).
    trains:
        Current edge trains, one or more per load port.
    times:
        Sample instants (s).
    baseline:
        Optional constant load per port (A); adds the steady (IR) shift
        via the DC gains.  Peak-to-peak noise is unaffected by it, but
        absolute levels (for Vmin experiments) need it.

    Returns
    -------
    numpy.ndarray
        Deviation from the unloaded node voltage at each sample instant
        (negative values are droops).
    """
    times = np.asarray(times, dtype=float)
    voltage = np.zeros_like(times)
    for train in trains:
        for t_edge, delta in zip(train.times, train.deltas):
            if delta == 0.0:
                continue
            voltage += delta * library.ramp(train.port, node, times - t_edge)
    if baseline:
        for port, amps in baseline.items():
            if amps:
                voltage += amps * library.dc(port, node)
    return voltage
