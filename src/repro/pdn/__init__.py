"""Power distribution network (PDN) simulation substrate.

The paper characterizes voltage noise on real silicon; this package
replaces the physical chip/package/board power delivery path with a
lumped-element RLC network (Figure 2 of the paper) that is solved three
ways:

* exactly, via a state-space/modal decomposition (:mod:`.state_space`),
  which powers fast step-response evaluation and frequency-domain
  impedance profiles;
* by a trapezoidal modified-nodal-analysis transient engine
  (:mod:`.mna`), kept as an independent reference solver and
  cross-checked against the modal solution in the test suite;
* by linear superposition of precomputed step/ramp responses
  (:mod:`.superposition`), which is how full multi-core stressmark
  runs are assembled efficiently;
* by precompiled per-chip batched kernels (:mod:`.kernels`), which
  factor that same superposition into modal prefix sums so N stimuli
  against one chip amortize to a single stacked solve — the engine's
  ``batched`` backend.

:mod:`.topology` builds the multi-core chip network of the paper's
evaluation platform (two on-chip voltage domains, six cores, the large
deep-trench L3 node between the core rows, MCU/GX units) and
:mod:`.zec12` holds the calibrated reference parameters that reproduce
the paper's resonant bands (~40 kHz and ~2 MHz) and cluster structure.
"""

from .elements import Capacitor, CurrentPort, Inductor, Resistor, VoltagePort
from .netlist import Netlist
from .state_space import StateSpace, build_state_space
from .mna import TransientResult, simulate_transient
from .impedance import ImpedanceProfile, impedance_profile, find_resonances
from .response import ResponseLibrary
from .superposition import EdgeTrain, assemble_voltage, edges_from_square_wave
from .kernels import (
    KERNEL_TOLERANCE_V,
    CompiledChipKernel,
    SampleGrid,
    clear_kernel_cache,
    compile_kernel,
    library_fingerprint,
)
from .topology import ChipPdnParameters, build_chip_netlist, core_node, core_port
from .zec12 import reference_chip_parameters

__all__ = [
    "Capacitor",
    "CurrentPort",
    "Inductor",
    "Resistor",
    "VoltagePort",
    "Netlist",
    "StateSpace",
    "build_state_space",
    "TransientResult",
    "simulate_transient",
    "ImpedanceProfile",
    "impedance_profile",
    "find_resonances",
    "ResponseLibrary",
    "CompiledChipKernel",
    "SampleGrid",
    "compile_kernel",
    "clear_kernel_cache",
    "library_fingerprint",
    "KERNEL_TOLERANCE_V",
    "EdgeTrain",
    "assemble_voltage",
    "edges_from_square_wave",
    "ChipPdnParameters",
    "build_chip_netlist",
    "core_node",
    "core_port",
    "reference_chip_parameters",
]
