"""Parametric multi-core chip PDN topology.

Mirrors the evaluation platform of the paper (Figure 3): six cores in
two rows of three, a large shared eDRAM L3 between the rows, the memory
controller (MCU) on one side and the I/O bus controller (GX) on the
other.  Electrically (Figure 2): a VRM feeds the board, the board feeds
the package, and two C4 arrays feed two on-chip voltage domains — one
per core row — that share the single package domain.  The deep-trench L3
capacitance bridges the two domains and damps noise crossing between
them, which is what produces the paper's {0,2,4} / {1,3,5} noise
clusters.

Every element value is a field of :class:`ChipPdnParameters`, so
ablations (e.g. removing the deep-trench capacitance, Figure 7's
resonance-shift discussion) are parameter changes, not code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from .netlist import Netlist

__all__ = [
    "ChipPdnParameters",
    "build_chip_netlist",
    "core_node",
    "core_port",
    "row_cores",
    "NORTH_CORES",
    "SOUTH_CORES",
    "MAX_CORES",
]

#: Core ids in the north row (top of the die photo), sharing a domain.
NORTH_CORES = (0, 2, 4)
#: Core ids in the south row, sharing the other domain.
SOUTH_CORES = (1, 3, 5)

#: Largest core count the two-row topology generalizes to.
MAX_CORES = 32


def row_cores(n_cores: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The two core rows of an *n_cores* chip: even core ids form the
    north row, odd ids the south row — the rule that reproduces the
    paper's ``{0, 2, 4}`` / ``{1, 3, 5}`` clusters on the six-core
    reference chip and extends it to family variants."""
    cores = range(n_cores)
    return (
        tuple(c for c in cores if c % 2 == 0),
        tuple(c for c in cores if c % 2 == 1),
    )


def core_node(core: int) -> str:
    """PDN node name of a core's local grid."""
    return f"core{core}"


def core_port(core: int) -> str:
    """Load (current) port name of a core."""
    return f"load_core{core}"


@dataclass
class ChipPdnParameters:
    """Element values for the chip PDN (SI units).

    The defaults here are **uncalibrated placeholders**; use
    :func:`repro.pdn.zec12.reference_chip_parameters` for the calibrated
    reference chip that reproduces the paper's resonant bands.
    """

    #: Nominal VRM output voltage (V).
    vnom: float = 1.05
    n_cores: int = 6

    # VRM and board (sets the low-frequency resonance, ~40 kHz band).
    r_vrm: float = 0.30e-3
    l_vrm: float = 1.6e-9
    c_board: float = 10e-3
    c_board_esr: float = 0.10e-3

    # Board-to-package interconnect and package decap.
    r_mb: float = 0.08e-3
    l_mb: float = 30e-12
    c_pkg: float = 600e-6
    c_pkg_esr: float = 0.05e-3

    # C4 arrays: package to each on-chip voltage domain
    # (with the on-chip capacitance, sets the ~2 MHz band).
    r_c4: float = 0.26e-3
    l_c4: float = 40e-12
    c_dom: float = 4e-6
    c_dom_esr: float = 0.30e-3

    # On-die per-core grid.
    r_grid: float = 0.90e-3
    l_grid: float = 1.5e-12
    c_core: float = 12e-6
    c_core_esr: float = 0.35e-3
    r_lateral: float = 0.50e-3

    # Deep-trench eDRAM L3 node (the big damping capacitance).
    c_l3: float = 200e-6
    c_l3_esr: float = 0.05e-3
    r_l3: float = 0.15e-3

    # Nest units (MCU/GX) hanging off the domains.
    c_unit: float = 3e-6
    c_unit_esr: float = 0.30e-3
    r_unit: float = 0.40e-3

    #: Per-core multiplicative perturbations (process variation):
    #: scale factors for the local grid resistance and decap.
    core_r_scale: tuple[float, ...] = field(default=(1.0,) * 6)
    core_c_scale: tuple[float, ...] = field(default=(1.0,) * 6)

    def __post_init__(self) -> None:
        if not 2 <= self.n_cores <= MAX_CORES:
            raise ConfigError(
                f"the two-row topology supports 2..{MAX_CORES} cores "
                f"(got {self.n_cores}); the paper's reference chip has 6"
            )
        # The class-default all-ones vectors are sized for the six-core
        # reference chip; re-size that default for family variants with
        # other core counts (any other wrong-length vector errors below).
        for name in ("core_r_scale", "core_c_scale"):
            if getattr(self, name) == (1.0,) * 6 and self.n_cores != 6:
                setattr(self, name, (1.0,) * self.n_cores)
        if len(self.core_r_scale) != self.n_cores:
            raise ConfigError("core_r_scale needs one entry per core")
        if len(self.core_c_scale) != self.n_cores:
            raise ConfigError("core_c_scale needs one entry per core")
        for name in ("vnom", "r_vrm", "l_vrm", "c_board", "r_c4", "l_c4",
                     "c_dom", "r_grid", "c_core", "c_l3", "r_l3"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"parameter {name!r} must be positive")

    def with_variation(
        self, r_scale: tuple[float, ...], c_scale: tuple[float, ...]
    ) -> "ChipPdnParameters":
        """A copy with per-core variation scale factors applied."""
        return replace(self, core_r_scale=tuple(r_scale), core_c_scale=tuple(c_scale))

    def without_deep_trench(self, reduction: float = 40.0) -> "ChipPdnParameters":
        """A copy modeling a chip **without** deep-trench eDRAM decap.

        The paper attributes a 40× on-chip capacitance increase to deep
        trench; dividing the on-chip capacitances back out shifts the
        first droop up to the traditional 30–100 MHz band (ablation A1).
        """
        if reduction <= 1.0:
            raise ConfigError("reduction factor must exceed 1")
        return replace(
            self,
            c_l3=self.c_l3 / reduction,
            c_core=self.c_core / reduction,
            c_dom=self.c_dom / reduction,
            c_unit=self.c_unit / reduction,
        )

    def without_l3_bridge(self) -> "ChipPdnParameters":
        """A copy with the L3 shrunk to a token capacitance, removing its
        damping/isolation role between the core rows (ablation A2)."""
        return replace(self, c_l3=self.c_l3 * 1e-3)


def build_chip_netlist(params: ChipPdnParameters) -> Netlist:
    """Construct the chip :class:`~repro.pdn.netlist.Netlist`.

    Load ports: ``load_core0`` … ``load_core5``, ``load_l3``,
    ``load_mcu``, ``load_gx``.  The VRM is the voltage port ``vrm``.
    """
    net = Netlist("multicore-chip-pdn")

    net.add_voltage_port("vrm", "vrm")
    net.add_inductor("l_vrm", "vrm", "board", params.l_vrm, esr=params.r_vrm)
    net.add_capacitor("c_board", "board", params.c_board, esr=params.c_board_esr)

    net.add_inductor("l_mb", "board", "pkg", params.l_mb, esr=params.r_mb)
    net.add_capacitor("c_pkg", "pkg", params.c_pkg, esr=params.c_pkg_esr)

    north, south = row_cores(params.n_cores)
    domains = {"dom_n": north, "dom_s": south}
    for dom in domains:
        net.add_inductor(f"l_c4_{dom}", "pkg", dom, params.l_c4, esr=params.r_c4)
        net.add_capacitor(f"c_{dom}", dom, params.c_dom, esr=params.c_dom_esr)

    for dom, cores in domains.items():
        for core in cores:
            node = core_node(core)
            r = params.r_grid * params.core_r_scale[core]
            c = params.c_core * params.core_c_scale[core]
            net.add_inductor(f"l_grid_{core}", dom, node, params.l_grid, esr=r)
            net.add_capacitor(f"c_core{core}", node, c, esr=params.c_core_esr)
            net.add_current_port(core_port(core), node)

    # Lateral on-die grid links along each row (0-2-4 and 1-3-5 on the
    # reference chip; consecutive same-row neighbours in general).
    for row in (north, south):
        for a, b in zip(row, row[1:]):
            net.add_resistor(
                f"r_lat_{a}{b}", core_node(a), core_node(b), params.r_lateral
            )

    # Deep-trench L3 bridges the two domains.
    net.add_capacitor("c_l3", "l3", params.c_l3, esr=params.c_l3_esr)
    net.add_resistor("r_l3_n", "dom_n", "l3", params.r_l3)
    net.add_resistor("r_l3_s", "dom_s", "l3", params.r_l3)
    net.add_current_port("load_l3", "l3")

    # MCU (left side, north domain) and GX (right side, south domain).
    net.add_capacitor("c_mcu", "mcu", params.c_unit, esr=params.c_unit_esr)
    net.add_resistor("r_mcu", "dom_n", "mcu", params.r_unit)
    net.add_current_port("load_mcu", "mcu")

    net.add_capacitor("c_gx", "gx", params.c_unit, esr=params.c_unit_esr)
    net.add_resistor("r_gx", "dom_s", "gx", params.r_unit)
    net.add_current_port("load_gx", "gx")

    net.validate()
    return net
