"""Precomputed step/ramp response library for fast waveform assembly.

Multi-core stressmark runs are assembled by linear superposition
(:mod:`repro.pdn.superposition`): every current edge a workload produces
is a scaled, shifted copy of the network's **ramp response** (a step
smoothed over the pipeline's power rise time).  This module precomputes
those responses once per chip on a composite time grid — densely sampled
where the fast dynamics live, geometrically sampled out to the slowest
board mode — using the exact modal solution, then answers lookups by
interpolation.

This is the simulation analogue of "characterize the PDN once, then
reason about any workload on top of it".
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .netlist import Netlist
from .state_space import ModalSystem, build_state_space

__all__ = ["ResponseLibrary"]


class ResponseLibrary:
    """Sampled unit step and ramp responses for (port, node) pairs.

    Parameters
    ----------
    netlist:
        The PDN circuit.
    ports:
        Load (current) port names to precompute sources for.
    nodes:
        Node names to observe.
    rise_time:
        Current edge rise time (s); the ramp response is the step
        response convolved with a rectangular window of this width.
    fine_dt, fine_end:
        Uniform sampling step and extent of the fine grid region.
        ``fine_end`` defaults to the larger of 6 µs and 40 rise times.
    horizon:
        Total extent of the sampled responses.  Defaults to eight times
        the slowest network time constant (clamped to [50 µs, 20 ms]).
    coarse_points:
        Number of geometrically spaced samples between ``fine_end`` and
        ``horizon``.
    """

    def __init__(
        self,
        netlist: Netlist,
        ports: list[str],
        nodes: list[str],
        rise_time: float = 2e-9,
        fine_dt: float = 0.5e-9,
        fine_end: float | None = None,
        horizon: float | None = None,
        coarse_points: int = 3000,
        modal: ModalSystem | None = None,
    ):
        if rise_time <= 0 or fine_dt <= 0:
            raise SolverError("rise_time and fine_dt must be positive")
        if not ports or not nodes:
            raise SolverError("need at least one port and one node")
        self.netlist = netlist
        self.ports = list(ports)
        self.nodes = list(nodes)
        self.rise_time = float(rise_time)
        self.modal = modal if modal is not None else ModalSystem(build_state_space(netlist))

        if fine_end is None:
            fine_end = max(6e-6, 40.0 * rise_time)
        if horizon is None:
            tau = self.modal.slowest_time_constant()
            horizon = min(max(8.0 * tau, 50e-6), 20e-3)
        if horizon <= fine_end:
            horizon = 4.0 * fine_end
        self.horizon = float(horizon)

        fine = np.arange(0.0, fine_end, fine_dt)
        coarse = np.geomspace(fine_end, horizon, coarse_points)
        self.grid = np.unique(np.concatenate([fine, coarse]))

        self._step: dict[tuple[str, str], np.ndarray] = {}
        self._ramp: dict[tuple[str, str], np.ndarray] = {}
        self._dc: dict[tuple[str, str], float] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for port in self.ports:
            responses = self.modal.step_response(port, self.nodes, self.grid)
            for row, node in enumerate(self.nodes):
                step = responses[row]
                ramp = self._smooth(step)
                key = (port, node)
                self._step[key] = step
                self._ramp[key] = ramp
                self._dc[key] = float(step[-1])

    def _smooth(self, step: np.ndarray) -> np.ndarray:
        """Ramp response: moving average of the step response over the
        rise-time window, honoring causality (response is 0 for t < 0)."""
        tau = self.rise_time
        # Cumulative integral of the step response on the grid.
        increments = np.diff(self.grid) * 0.5 * (step[1:] + step[:-1])
        cumulative = np.concatenate([[0.0], np.cumsum(increments)])
        shifted = np.interp(self.grid - tau, self.grid, cumulative, left=0.0)
        return (cumulative - shifted) / tau

    # ------------------------------------------------------------------
    def _lookup(
        self, table: dict[tuple[str, str], np.ndarray], port: str, node: str
    ) -> np.ndarray:
        try:
            return table[(port, node)]
        except KeyError:
            raise SolverError(
                f"response for port {port!r} -> node {node!r} was not precomputed"
            ) from None

    def step(self, port: str, node: str, times: np.ndarray) -> np.ndarray:
        """Unit step response evaluated at *times* (causal; flat at the
        DC value beyond the horizon)."""
        table = self._lookup(self._step, port, node)
        return self._eval(table, self._dc[(port, node)], times)

    def ramp(self, port: str, node: str, times: np.ndarray) -> np.ndarray:
        """Unit ramp-edge response evaluated at *times*."""
        table = self._lookup(self._ramp, port, node)
        return self._eval(table, self._dc[(port, node)], times)

    def dc(self, port: str, node: str) -> float:
        """Steady-state voltage change per ampere of sustained load."""
        self._lookup(self._step, port, node)
        return self._dc[(port, node)]

    def _eval(self, samples: np.ndarray, dc: float, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return np.interp(times, self.grid, samples, left=0.0, right=dc)
