"""Frequency-domain impedance profiles of a PDN.

This reproduces the "post-silicon impedance (Z) profile" of the paper's
Figure 7b: the magnitude of the transfer impedance from a load current
port to a die node, swept across the spectrum where current fluctuations
can exist.  Resonant bands show up as local maxima; package designers
keep the peak below a target by adding decoupling capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SolverError
from .netlist import Netlist
from .state_space import ModalSystem, build_state_space

__all__ = ["ImpedanceProfile", "impedance_profile", "find_resonances"]


@dataclass
class ImpedanceProfile:
    """Impedance magnitude |Z(f)| from one load port to one node.

    Attributes
    ----------
    freqs_hz:
        Sweep frequencies (Hz), ascending.
    ohms:
        Impedance magnitudes (Ω), same length.
    port, node:
        Source load port and observed node.
    """

    freqs_hz: np.ndarray
    ohms: np.ndarray
    port: str
    node: str

    def at(self, freq_hz: float) -> float:
        """Log-log interpolated |Z| at *freq_hz*."""
        if freq_hz <= 0:
            raise SolverError("frequency must be positive")
        return float(
            np.exp(
                np.interp(
                    np.log(freq_hz),
                    np.log(self.freqs_hz),
                    np.log(np.maximum(self.ohms, 1e-30)),
                )
            )
        )

    def peak(self) -> tuple[float, float]:
        """(frequency, |Z|) of the global maximum."""
        k = int(np.argmax(self.ohms))
        return float(self.freqs_hz[k]), float(self.ohms[k])


def impedance_profile(
    netlist: Netlist,
    port: str,
    node: str,
    f_min: float = 1e3,
    f_max: float = 1e9,
    points_per_decade: int = 60,
    modal: ModalSystem | None = None,
) -> ImpedanceProfile:
    """Sweep |Z(f)| from load *port* to *node* on a log grid.

    A prebuilt :class:`ModalSystem` may be passed to avoid re-deriving
    the state space on repeated sweeps of the same network.
    """
    if f_min <= 0 or f_max <= f_min:
        raise SolverError(f"bad frequency range [{f_min!r}, {f_max!r}]")
    if modal is None:
        modal = ModalSystem(build_state_space(netlist))
    decades = np.log10(f_max / f_min)
    n_points = max(int(round(decades * points_per_decade)) + 1, 2)
    freqs = np.logspace(np.log10(f_min), np.log10(f_max), n_points)
    transfer = modal.frequency_response(port, [node], freqs)[0]
    return ImpedanceProfile(freqs_hz=freqs, ohms=np.abs(transfer), port=port, node=node)


def find_resonances(
    profile: ImpedanceProfile, prominence_ratio: float = 1.15
) -> list[tuple[float, float]]:
    """Locate resonant bands: local maxima of |Z(f)|.

    A local maximum qualifies when it exceeds the valleys on both sides
    by *prominence_ratio*.  Returns (frequency, |Z|) pairs sorted by
    descending impedance.
    """
    z = profile.ohms
    freqs = profile.freqs_hz
    peaks: list[tuple[float, float]] = []
    rising = np.r_[True, z[1:] >= z[:-1]]
    falling = np.r_[z[:-1] >= z[1:], True]
    candidates = np.nonzero(rising & falling)[0]
    for k in candidates:
        if k in (0, z.size - 1):
            continue
        left_min = z[: k + 1].min()
        right_min = z[k:].min()
        if z[k] >= prominence_ratio * max(left_min, 1e-30) and z[
            k
        ] >= prominence_ratio * max(right_min, 1e-30):
            peaks.append((float(freqs[k]), float(z[k])))
    peaks.sort(key=lambda pair: -pair[1])
    return peaks
