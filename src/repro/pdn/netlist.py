"""PDN netlist container and structural validation.

A :class:`Netlist` is an append-only description of a power delivery
network built from the element vocabulary in
:mod:`repro.pdn.elements`.  It enforces the structural invariants that
the solvers rely on:

* element names are unique within their kind;
* every free (non-ground, non-pinned) node carries exactly one
  capacitor to ground — physically, every PDN node has local decoupling,
  and mathematically this makes node voltages well-defined algebraic
  functions of the capacitor/inductor states;
* the network graph is connected and reaches ground;
* at most one voltage port pins any given node.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import networkx as nx

from ..errors import NetlistError
from .elements import (
    GROUND,
    Capacitor,
    CurrentPort,
    Inductor,
    Resistor,
    VoltagePort,
)

__all__ = ["Netlist"]


class Netlist:
    """Mutable builder for a PDN circuit description.

    Use the ``add_*`` methods to populate the network, then call
    :meth:`validate` (the solvers call it for you).  Node names are
    created implicitly by referencing them from elements.
    """

    def __init__(self, title: str = "pdn"):
        self.title = title
        self.resistors: list[Resistor] = []
        self.inductors: list[Inductor] = []
        self.capacitors: list[Capacitor] = []
        self.current_ports: list[CurrentPort] = []
        self.voltage_ports: list[VoltagePort] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_resistor(self, name: str, a: str, b: str, ohms: float) -> Resistor:
        """Add a resistive branch and return it."""
        element = Resistor(name, a, b, ohms)
        self.resistors.append(element)
        return element

    def add_inductor(
        self, name: str, a: str, b: str, henries: float, esr: float = 0.0
    ) -> Inductor:
        """Add a series R-L branch and return it."""
        element = Inductor(name, a, b, henries, esr)
        self.inductors.append(element)
        return element

    def add_capacitor(
        self, name: str, node: str, farads: float, esr: float
    ) -> Capacitor:
        """Add a decoupling capacitor (node to ground) and return it."""
        element = Capacitor(name, node, farads, esr)
        self.capacitors.append(element)
        return element

    def add_current_port(self, name: str, node: str) -> CurrentPort:
        """Declare a named load input at *node* and return it."""
        element = CurrentPort(name, node)
        self.current_ports.append(element)
        return element

    def add_voltage_port(self, name: str, node: str) -> VoltagePort:
        """Pin *node* to an externally supplied voltage input."""
        element = VoltagePort(name, node)
        self.voltage_ports.append(element)
        return element

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """All node names referenced by the netlist, ground excluded,
        in first-reference order."""
        seen: dict[str, None] = {}
        for name in self._referenced_nodes():
            if name != GROUND:
                seen.setdefault(name)
        return list(seen)

    @property
    def pinned_nodes(self) -> set[str]:
        """Nodes whose voltage is an input (voltage ports)."""
        return {port.node for port in self.voltage_ports}

    @property
    def free_nodes(self) -> list[str]:
        """Nodes whose voltage is determined by the network solution."""
        pinned = self.pinned_nodes
        return [node for node in self.nodes if node not in pinned]

    @property
    def input_names(self) -> list[str]:
        """Input ordering used by the solvers: current ports first (in
        declaration order), then voltage ports."""
        return [p.name for p in self.current_ports] + [
            p.name for p in self.voltage_ports
        ]

    def capacitor_at(self, node: str) -> Capacitor:
        """Return the capacitor attached to *node*.

        Raises :class:`NetlistError` if there is not exactly one.
        """
        matches = [cap for cap in self.capacitors if cap.node == node]
        if len(matches) != 1:
            raise NetlistError(
                f"node {node!r} has {len(matches)} capacitors, expected exactly 1"
            )
        return matches[0]

    def _referenced_nodes(self) -> Iterable[str]:
        for res in self.resistors:
            yield res.a
            yield res.b
        for ind in self.inductors:
            yield ind.a
            yield ind.b
        for cap in self.capacitors:
            yield cap.node
        for cport in self.current_ports:
            yield cport.node
        for vport in self.voltage_ports:
            yield vport.node

    def graph(self) -> "nx.Graph":
        """Undirected connectivity graph over nodes (including ground).

        Capacitors connect their node to ground; resistors and inductors
        connect their endpoints.
        """
        g = nx.Graph()
        g.add_node(GROUND)
        for res in self.resistors:
            g.add_edge(res.a, res.b)
        for ind in self.inductors:
            g.add_edge(ind.a, ind.b)
        for cap in self.capacitors:
            g.add_edge(cap.node, GROUND)
        for cport in self.current_ports:
            g.add_node(cport.node)
        for vport in self.voltage_ports:
            g.add_node(vport.node)
        return g

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`NetlistError` on
        violation."""
        self._check_unique_names()
        self._check_voltage_ports()
        self._check_capacitor_coverage()
        self._check_connectivity()

    def _check_unique_names(self) -> None:
        for kind, elements in (
            ("resistor", self.resistors),
            ("inductor", self.inductors),
            ("capacitor", self.capacitors),
            ("current port", self.current_ports),
            ("voltage port", self.voltage_ports),
        ):
            counts = Counter(e.name for e in elements)
            duplicates = sorted(n for n, c in counts.items() if c > 1)
            if duplicates:
                raise NetlistError(f"duplicate {kind} names: {duplicates}")
        counts = Counter(self.input_names)
        duplicates = sorted(n for n, c in counts.items() if c > 1)
        if duplicates:
            raise NetlistError(f"input names shared across port kinds: {duplicates}")

    def _check_voltage_ports(self) -> None:
        counts = Counter(port.node for port in self.voltage_ports)
        multiple = sorted(n for n, c in counts.items() if c > 1)
        if multiple:
            raise NetlistError(f"nodes pinned by more than one voltage port: {multiple}")
        for cap in self.capacitors:
            if cap.node in self.pinned_nodes:
                raise NetlistError(
                    f"capacitor {cap.name!r} placed on pinned node {cap.node!r}"
                )

    def _check_capacitor_coverage(self) -> None:
        cap_counts = Counter(cap.node for cap in self.capacitors)
        for node in self.free_nodes:
            count = cap_counts.get(node, 0)
            if count != 1:
                raise NetlistError(
                    f"free node {node!r} has {count} capacitors, expected exactly 1"
                )

    def _check_connectivity(self) -> None:
        if not self.nodes:
            raise NetlistError("netlist has no nodes")
        g = self.graph()
        reachable = nx.node_connected_component(g, GROUND)
        unreachable = sorted(set(self.nodes) - reachable)
        if unreachable:
            raise NetlistError(f"nodes not connected to ground: {unreachable}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.title!r}: {len(self.nodes)} nodes, "
            f"{len(self.resistors)}R {len(self.inductors)}L "
            f"{len(self.capacitors)}C, {len(self.current_ports)} loads, "
            f"{len(self.voltage_ports)} sources)"
        )
