"""Exact state-space formulation of a PDN netlist.

The netlist grammar (every free node carries one ESR'd capacitor;
branches are resistors or series R-L) admits a clean state-space model:

* **states** ``x`` — one capacitor plate voltage per free node followed
  by one current per inductor branch;
* **inputs** ``u`` — load currents (current ports) followed by pinned
  node voltages (voltage ports);
* **node voltages** — algebraic functions of states and inputs,
  ``v = P x + Q u``, obtained by solving the resistive KCL system.

From ``dx/dt = A x + B u`` the library computes exact step responses via
eigendecomposition (:class:`ModalSystem`) and exact frequency responses
``H(jω) = P (jωI − A)^{-1} B + Q`` — no numerical integration involved.
A trapezoidal transient engine lives in :mod:`repro.pdn.mna` and is used
as an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SolverError
from .elements import GROUND
from .netlist import Netlist

__all__ = ["StateSpace", "build_state_space", "ModalSystem"]


@dataclass
class StateSpace:
    """Continuous-time LTI model of a PDN netlist.

    Attributes
    ----------
    a, b:
        State dynamics ``dx/dt = a @ x + b @ u``.
    pv, qv:
        Node-voltage read-out ``v = pv @ x + qv @ u`` for **all** nodes
        (free and pinned), ordered per ``node_index``.
    node_index, input_index:
        Name → row/column maps for nodes and inputs.
    state_names:
        Human-readable state labels (``cap:<node>``, ``ind:<name>``).
    """

    a: np.ndarray
    b: np.ndarray
    pv: np.ndarray
    qv: np.ndarray
    node_index: dict[str, int]
    input_index: dict[str, int]
    state_names: list[str] = field(default_factory=list)

    @property
    def order(self) -> int:
        """Number of state variables."""
        return self.a.shape[0]

    def output_rows(self, nodes: list[str]) -> np.ndarray:
        """Row indices into ``pv``/``qv`` for the named *nodes*."""
        try:
            return np.array([self.node_index[n] for n in nodes], dtype=int)
        except KeyError as exc:
            raise SolverError(f"unknown node {exc.args[0]!r}") from exc

    def input_column(self, name: str) -> int:
        """Column index of input *name*."""
        try:
            return self.input_index[name]
        except KeyError as exc:
            raise SolverError(f"unknown input {name!r}") from exc

    def dc_voltages(self, u: np.ndarray) -> np.ndarray:
        """Steady-state node voltages for constant inputs *u*."""
        x_ss = np.linalg.solve(self.a, -self.b @ u)
        return self.pv @ x_ss + self.qv @ u


def build_state_space(netlist: Netlist) -> StateSpace:
    """Derive the :class:`StateSpace` model of *netlist*.

    The netlist is validated first.  Raises
    :class:`~repro.errors.NetlistError` on structural problems and
    :class:`~repro.errors.SolverError` if the resistive KCL system is
    singular (which indicates a floating subnetwork).
    """
    netlist.validate()

    free_nodes = netlist.free_nodes
    all_nodes = netlist.nodes
    pinned = netlist.pinned_nodes
    free_index = {name: i for i, name in enumerate(free_nodes)}
    node_index = {name: i for i, name in enumerate(all_nodes)}
    input_names = netlist.input_names
    input_index = {name: i for i, name in enumerate(input_names)}
    pinned_input = {port.node: input_index[port.name] for port in netlist.voltage_ports}

    nv = len(free_nodes)
    nl = len(netlist.inductors)
    ni = len(input_names)
    caps = [netlist.capacitor_at(node) for node in free_nodes]
    nstates = nv + nl

    # --- algebraic KCL:  G v = Mx x + Mu u  ---------------------------
    g = np.zeros((nv, nv))
    mx = np.zeros((nv, nstates))
    mu = np.zeros((nv, ni))

    def stamp_conductance(a: str, b: str, conductance: float) -> None:
        """Stamp a resistive coupling between endpoints a and b."""
        for this, other in ((a, b), (b, a)):
            if this == GROUND or this in pinned:
                continue
            row = free_index[this]
            g[row, row] += conductance
            if other == GROUND:
                continue
            if other in pinned:
                mu[row, pinned_input[other]] += conductance
            else:
                g[row, free_index[other]] -= conductance

    for res in netlist.resistors:
        stamp_conductance(res.a, res.b, 1.0 / res.ohms)

    for i, cap in enumerate(caps):
        conductance = 1.0 / cap.esr
        g[i, i] += conductance
        mx[i, i] += conductance  # plate voltage state appears on the RHS

    for k, ind in enumerate(netlist.inductors):
        col = nv + k
        # Branch current flows a -> b: it leaves a and enters b.
        if ind.a != GROUND and ind.a not in pinned:
            mx[free_index[ind.a], col] -= 1.0
        if ind.b != GROUND and ind.b not in pinned:
            mx[free_index[ind.b], col] += 1.0

    for port in netlist.current_ports:
        # Positive load value draws current out of the node.
        mu[free_index[port.node], input_index[port.name]] -= 1.0

    try:
        g_inv = np.linalg.inv(g)
    except np.linalg.LinAlgError as exc:
        raise SolverError("resistive KCL system is singular") from exc

    p_free = g_inv @ mx  # free node voltages vs states
    q_free = g_inv @ mu  # free node voltages vs inputs

    # --- voltage read-out rows for every node (free and pinned) -------
    pv = np.zeros((len(all_nodes), nstates))
    qv = np.zeros((len(all_nodes), ni))
    for name, row in node_index.items():
        if name in pinned:
            qv[row, pinned_input[name]] = 1.0
        else:
            pv[row] = p_free[free_index[name]]
            qv[row] = q_free[free_index[name]]

    def voltage_rows(endpoint: str) -> tuple[np.ndarray, np.ndarray]:
        """(state row, input row) expressing the endpoint voltage."""
        if endpoint == GROUND:
            return np.zeros(nstates), np.zeros(ni)
        if endpoint in pinned:
            row = np.zeros(ni)
            row[pinned_input[endpoint]] = 1.0
            return np.zeros(nstates), row
        idx = free_index[endpoint]
        return p_free[idx], q_free[idx]

    # --- state dynamics ------------------------------------------------
    a_mat = np.zeros((nstates, nstates))
    b_mat = np.zeros((nstates, ni))
    state_names: list[str] = []

    for i, (node, cap) in enumerate(zip(free_nodes, caps)):
        state_names.append(f"cap:{node}")
        rate = 1.0 / (cap.farads * cap.esr)
        a_mat[i] = rate * p_free[i]
        a_mat[i, i] -= rate
        b_mat[i] = rate * q_free[i]

    for k, ind in enumerate(netlist.inductors):
        row = nv + k
        state_names.append(f"ind:{ind.name}")
        pa, qa = voltage_rows(ind.a)
        pb, qb = voltage_rows(ind.b)
        a_mat[row] = (pa - pb) / ind.henries
        a_mat[row, row] -= ind.esr / ind.henries
        b_mat[row] = (qa - qb) / ind.henries

    return StateSpace(
        a=a_mat,
        b=b_mat,
        pv=pv,
        qv=qv,
        node_index=node_index,
        input_index=input_index,
        state_names=state_names,
    )


class ModalSystem:
    """Eigendecomposition of a :class:`StateSpace` for exact evaluation.

    Provides closed-form unit **step responses** (zero initial state,
    input stepping 0 → 1 at t = 0) and exact **frequency responses** for
    any (input, node) pair, at arbitrary time/frequency points.
    """

    #: Relative reconstruction error above which the decomposition is
    #: rejected as numerically unreliable.
    _RECONSTRUCTION_TOL = 1e-6

    def __init__(self, system: StateSpace):
        self.system = system
        eigenvalues, right = np.linalg.eig(system.a)
        try:
            left = np.linalg.inv(right)
        except np.linalg.LinAlgError as exc:
            raise SolverError("state matrix is defective (eigenbasis singular)") from exc
        reconstructed = (right * eigenvalues) @ left
        scale = max(np.abs(system.a).max(), 1.0)
        error = np.abs(reconstructed - system.a).max() / scale
        if error > self._RECONSTRUCTION_TOL:
            raise SolverError(
                f"eigendecomposition reconstruction error {error:.2e} "
                f"exceeds tolerance {self._RECONSTRUCTION_TOL:.0e}"
            )
        if np.real(eigenvalues).max() > 1e-9 * scale:
            raise SolverError("network is not passive: unstable eigenvalue found")
        self.eigenvalues = eigenvalues
        self._right = right
        self._left = left

    def step_response(
        self, input_name: str, nodes: list[str], times: np.ndarray
    ) -> np.ndarray:
        """Node voltages (nodes × times) for a unit step on *input_name*.

        Times may be any non-negative array; negative entries return 0
        (response is causal).  The instant resistive feedthrough is
        included for t >= 0.
        """
        sys = self.system
        j = sys.input_column(input_name)
        rows = sys.output_rows(nodes)
        times = np.asarray(times, dtype=float)

        x_ss = np.linalg.solve(sys.a, -sys.b[:, j])
        coeff = self._left @ (-x_ss)  # modal coordinates of (x0 - x_ss)
        modes = (sys.pv[rows] @ self._right) * coeff[None, :]
        y_ss = sys.pv[rows] @ x_ss + sys.qv[rows, j]

        clipped = np.where(times < 0, 0.0, times)
        phases = np.exp(np.outer(self.eigenvalues, clipped))
        response = y_ss[:, None] + np.real(modes @ phases)
        response[:, times < 0] = 0.0
        return response

    def frequency_response(
        self, input_name: str, nodes: list[str], freqs_hz: np.ndarray
    ) -> np.ndarray:
        """Complex transfer H(j2πf) from *input_name* to node voltages,
        shape (nodes × freqs)."""
        sys = self.system
        j = sys.input_column(input_name)
        rows = sys.output_rows(nodes)
        freqs_hz = np.asarray(freqs_hz, dtype=float)

        b_modal = self._left @ sys.b[:, j]
        p_modal = sys.pv[rows] @ self._right
        jw = 2j * np.pi * freqs_hz
        # (jw - lambda_k)^-1 for each mode/frequency.
        denom = jw[None, :] - self.eigenvalues[:, None]
        transfer = p_modal @ (b_modal[:, None] / denom)
        return transfer + sys.qv[rows, j][:, None]

    def slowest_time_constant(self) -> float:
        """Largest time constant (s) of the network, for choosing
        simulation horizons."""
        rates = -np.real(self.eigenvalues)
        rates = rates[rates > 0]
        if rates.size == 0:
            raise SolverError("network has no decaying modes")
        return float(1.0 / rates.min())
