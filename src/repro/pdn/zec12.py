"""Calibrated reference chip parameters.

The values here were tuned so that the simulated PDN reproduces the
*shape* of the paper's published characterization of the zEC12
evaluation platform:

* impedance profile with resonant bands near **40 kHz** (VRM/board loop)
  and **~2 MHz** (package inductance against the deep-trench on-chip
  capacitance), and no oscillatory behavior above 5 MHz (paper §V-A);
* a first-droop quality factor low enough that a single synchronized ΔI
  event generates most of the worst-case noise (paper §V-E);
* two-cluster noise propagation, {0,2,4} vs {1,3,5}, with the L3 acting
  as a damping element between the rows (paper §VI);
* per-core differences, with cores 2 and 4 reading the most noise
  (paper attributes this mainly to process variation; the reference
  variation seed in :mod:`repro.machine.variation` reproduces it).

Absolute ohm/henry/farad values are plausible for a mainframe-class
package but are **model values**, not measured zEC12 data (which is not
public); see DESIGN.md §4 for the calibration targets.
"""

from __future__ import annotations

from .topology import ChipPdnParameters

__all__ = ["reference_chip_parameters", "REFERENCE_VNOM"]

#: Nominal supply voltage of the reference chip (V).
REFERENCE_VNOM = 1.05


def reference_chip_parameters() -> ChipPdnParameters:
    """Return the calibrated six-core reference chip parameters.

    Returns a fresh instance; callers may mutate or ``replace`` fields
    freely (e.g. for the ablation benches).
    """
    return ChipPdnParameters(
        vnom=REFERENCE_VNOM,
        # VRM/board loop -> ~37 kHz resonant band at 0.69 mOhm.
        r_vrm=0.28e-3,
        l_vrm=1.3e-9,
        c_board=10e-3,
        c_board_esr=0.08e-3,
        # Board-package link and package decap.
        r_mb=0.02e-3,
        l_mb=15e-12,
        c_pkg=600e-6,
        c_pkg_esr=0.05e-3,
        # C4 / on-chip domain: with the deep-trench on-chip capacitance
        # the first droop lands at ~2.6 MHz (1.1 mOhm peak, Q ~ 2).
        r_c4=0.07e-3,
        l_c4=70e-12,
        c_dom=4e-6,
        c_dom_esr=0.30e-3,
        # Per-core grid: modest local decap so that mid-frequency
        # (tens of MHz) activity couples across the on-die mesh; the
        # residual ~86 MHz local mode stays damped and well below the
        # first-droop impedance peak.
        r_grid=0.30e-3,
        l_grid=3e-12,
        c_core=2e-6,
        c_core_esr=0.80e-3,
        r_lateral=0.15e-3,
        # Deep-trench eDRAM L3.
        c_l3=120e-6,
        c_l3_esr=0.02e-3,
        r_l3=0.35e-3,
        # MCU/GX.
        c_unit=3e-6,
        c_unit_esr=0.30e-3,
        r_unit=0.40e-3,
    )
