"""Precompiled per-chip solve kernels: the batched LTI fast path.

The reference solve path (:func:`~repro.pdn.superposition.assemble_voltage`)
interpolates one ramp-response table per *edge* — ``O(edges × samples)``
table lookups per node.  Because the PDN is LTI and its spectrum has a
clean gap between a handful of slow board/package modes and the fast
on-chip modes, the same superposition can be factored once per chip into
a :class:`CompiledChipKernel` and then evaluated for any number of edge
trains at ``O(modes × (samples + edges))`` cost per port.

The kernel splits every (sample, edge) pair by elapsed time
``x = t − t_edge`` into three tiers:

* **window** (``0 < x ≤ W``): the fast modes are still alive, so the
  kernel linearly interpolates the *original* ramp table on its uniform
  fine prefix — arithmetically the same interpolation the reference
  performs, so this tier matches it to rounding.  ``W`` is chosen so the
  fastest retained-analytically mode has decayed by ``e^-16`` at the
  window edge.
* **slow** (``W < x ≤ horizon``): only the slow modes remain; their
  contribution is the closed-form ramp response
  ``y_ss + Re Σ_i m_i g_i e^{λ_i x}``, evaluated for *all* edges of a
  port at once through complex prefix sums over the edge train
  (``e^{λ(t − t_e)} = e^{λ t} · e^{−λ t_e}``), one small GEMM against
  the per-port modal coefficient matrix.  Conjugate eigenvalue pairs
  are folded into half-spectrum lanes (weight 2) so only
  ``imag(λ) ≥ 0`` modes are carried.
* **dc** (``x > horizon``): the reference clamps to the table's DC
  gain; the kernel applies exactly ``dc · Σ deltas`` via a real prefix
  sum — bit-identical to the reference tier.

Compilation validates its own equivalence: the analytic slow tier is
checked against the ramp table on a log grid spanning ``(W, horizon]``
and compilation fails with :class:`~repro.errors.SolverError` if the
deviation exceeds the pinned budget — which is what lets the engine's
``auto`` backend fall back to the reference solver for a chip whose
spectrum does not factor cleanly.

The prefix-sum factorization bounds its exponents by
``max|Re λ_slow| · span``; segments whose span would overflow that
budget (very sparse isolated-edge trains) transparently use a pairwise
evaluation of the slow tier instead — same math, no stability
constraint, and cheap exactly in the sparse regime where it triggers.

Kernels are memoized per chip fingerprint (a content digest of the
response library they compile) via :func:`compile_kernel`, so a warm
process — the serve tier, a pool worker — builds each chip's kernel
once.  Within a kernel, evaluation results are memoized too: one
port's contribution to the observed nodes is a pure function of
(sample grid, merged edge train, port), so those blocks are cached by
content digest and a synchronized sweep — many runs sharing grids and
edge instants — pays the tiered evaluation once per distinct block.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import SolverError
from .response import ResponseLibrary
from .superposition import EdgeTrain

__all__ = [
    "CompiledChipKernel",
    "SteppingSolver",
    "SampleGrid",
    "compile_kernel",
    "library_fingerprint",
    "clear_kernel_cache",
    "KERNEL_TOLERANCE_V",
    "COMPILE_TOLERANCE_V",
]

#: Pinned equivalence budget (volts) between a kernel-evaluated waveform
#: and the reference superposition, for full-run stimuli (the experiment
#: suite's edge magnitudes, up to ~150 edges of ~25 A per segment).  The
#: measured deviation is O(1e-8) V per ampere of a single edge; this
#: ceiling leaves two orders of magnitude of headroom for accumulation.
KERNEL_TOLERANCE_V = 5e-6

#: Per-unit-edge budget the compile-time self-check enforces on the
#: analytic slow tier vs the ramp table (V per A, max over ports, nodes
#: and a log grid of elapsed times spanning the slow tier).
COMPILE_TOLERANCE_V = 1e-7

#: The fastest analytically-carried mode must have decayed by this many
#: e-folds at the window edge (e^-16 ≈ 1.1e-7: at the compile budget,
#: per ampere; the compile-time self-check measures the true residual).
#: Smaller windows mean fewer (sample, edge) pairs in the interpolation
#: tier, which is the kernel's dominant per-run cost.
_FAST_EFOLDS = 16.0

#: Exponent magnitude budget of the prefix factorization (|e^±x| stays
#: around 7e217, far from the ~1.8e308 double overflow, with headroom
#: for the modal coefficient magnitudes).
_EXP_BUDGET = 500.0

#: Capacity of the per-kernel segment caches (phase matrices and tier
#: bookkeeping, memoized by sample-grid/edge-train content).  A
#: synchronized sweep reuses a handful of grids across its whole run
#: set; the cap only bounds pathological unsynchronized churn.
_SEGMENT_CACHE_ENTRIES = 64

#: Capacity of the per-kernel contribution cache: fully evaluated
#: per-(sample grid, edge train, port) node-deviation blocks.  Entries
#: are ``samples × nodes`` float arrays (~200 kB at experiment sizes),
#: so the cap bounds resident memory at a few tens of MB.
_CONTRIB_CACHE_ENTRIES = 128


def _digest(array: np.ndarray) -> bytes:
    """Content digest for result-cache keys.  The builtin ``hash`` is
    process-seeded and only 64 bits; since these keys gate *numerical
    results*, use a real digest so collisions are out of the picture."""
    return hashlib.blake2b(array.tobytes(), digest_size=16).digest()


@dataclass
class SampleGrid:
    """A segment's sample instants plus the provenance the kernel uses
    to build phase matrices multiplicatively instead of exponentially.

    ``times`` is always valid on its own (sorted, unique); the optional
    provenance fields record that ``times`` was assembled as
    ``unique(concat([linspace(0, t_end, n_base), anchors ⊕ offsets]))``
    so ``e^{λ t}`` can be built from one exponential per anchor/offset
    and repeated complex multiplies (``exp`` is ~50× the cost of a
    multiply) — a pure optimization, bit-equivalent up to rounding.
    """

    times: np.ndarray
    t_end: float | None = None
    n_base: int = 0
    anchors: np.ndarray | None = None      # per-edge probe anchors (s)
    offsets: np.ndarray | None = None      # shared probe offsets (s)
    probe_mask: np.ndarray | None = None   # keep-mask over anchors⊗offsets
    first_index: np.ndarray | None = None  # unique() gather into concat

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)

    @property
    def has_provenance(self) -> bool:
        return (
            self.first_index is not None
            and self.t_end is not None
            and self.n_base >= 2
        )


def library_fingerprint(library: ResponseLibrary) -> str:
    """Content digest of a response library: the grid, every ramp
    table, the DC gains and the rise time — everything the compiled
    kernel's behavior depends on."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(library.grid).tobytes())
    digest.update(repr(float(library.rise_time)).encode())
    for port in library.ports:
        for node in library.nodes:
            digest.update(f"{port}->{node}".encode())
            table = library._ramp[(port, node)]
            digest.update(np.ascontiguousarray(table).tobytes())
            digest.update(repr(library.dc(port, node)).encode())
    return digest.hexdigest()


#: Process-wide kernel memo, keyed by chip/library fingerprint.
_KERNEL_CACHE: dict[str, "CompiledChipKernel"] = {}


def compile_kernel(
    library: ResponseLibrary, fingerprint: str | None = None
) -> "CompiledChipKernel":
    """Compile (or replay from the process memo) the kernel of one
    response library.  ``fingerprint`` defaults to a content digest of
    the library, so identical chips share one compiled kernel per
    process regardless of how many ``Chip`` instances exist."""
    key = fingerprint if fingerprint is not None else library_fingerprint(library)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = CompiledChipKernel(library, fingerprint=key)
        _KERNEL_CACHE[key] = kernel
    return kernel


def clear_kernel_cache() -> None:
    """Drop every memoized kernel (tests, memory pressure)."""
    _KERNEL_CACHE.clear()


@dataclass
class _TierIndex:
    """Port-independent bookkeeping of one (sample grid, edge instants)
    pair: which (sample, edge) pairs land in which tier, with the
    window tier's ragged ranges pre-expanded into flat knot/fraction
    arrays.  Every quantity here depends only on *times* — the edge
    deltas join at evaluation time — which is what makes it reusable
    across ports, segments and runs of a synchronized sweep."""

    ks_w: np.ndarray                 # per sample: first edge in (t−W, ·]
    ks_h: np.ndarray                 # per sample: first edge in (t−H, ·]
    decay: np.ndarray | None         # e^{−λ t_e} (E, S), prefix path
    win_sample: np.ndarray | None    # window pairs: local sample row
    win_idx: np.ndarray | None       # window pairs: table knot index
    win_frac: np.ndarray | None      # window pairs: x − knot·step
    win_active: np.ndarray | None    # edges with a non-empty range
    win_lengths: np.ndarray | None   # range length of each active edge
    pw_sample: np.ndarray | None     # pairwise slow pairs: sample row
    pw_phases: np.ndarray | None     # pairwise slow pairs: e^{λ x}
    pw_active: np.ndarray | None
    pw_lengths: np.ndarray | None


def _expand_ranges(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Flatten per-edge contiguous sample ranges ``[lo, hi)`` into a
    (sample index, active-edge mask, range length) triple — ragged
    ranges via repeat/arange, no Python loop over edges."""
    lengths = np.maximum(hi - lo, 0)
    total = int(lengths.sum())
    if total == 0:
        return None
    active = lengths > 0
    lengths = lengths[active]
    inner = np.arange(total) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    return np.repeat(lo[active], lengths) + inner, active, lengths


def _geometric_powers(ratio: np.ndarray, count: int) -> np.ndarray:
    """``ratio**k`` for ``k = 0..count-1`` (rows), by repeated doubling
    of already-computed blocks — ``O(count)`` complex multiplies and
    zero exponentials."""
    out = np.empty((count, ratio.size), dtype=complex)
    out[0] = 1.0
    filled = 1
    power = ratio.copy()  # == ratio**filled, maintained by squaring
    while filled < count:
        step = min(filled, count - filled)
        np.multiply(out[:step], power[None, :], out=out[filled:filled + step])
        filled += step
        power = power * power
    return out


class CompiledChipKernel:
    """A chip's netlist compiled into a batched ramp-superposition
    evaluator (see the module docstring for the math).

    Parameters
    ----------
    library:
        The chip's precomputed :class:`ResponseLibrary`; the kernel
        reuses its modal decomposition, ramp tables and DC gains, so
        the *table* remains the single source of reference truth.
    fingerprint:
        Identity of the compiled artifact (content digest of the
        library when omitted) — the memoization key.

    Raises
    ------
    SolverError
        If the spectrum does not admit the window/slow split (no usable
        gap, window beyond the uniform fine grid, unpaired complex
        modes) or the compile-time self-check against the ramp tables
        exceeds :data:`COMPILE_TOLERANCE_V`.
    """

    def __init__(
        self, library: ResponseLibrary, fingerprint: str | None = None
    ):
        self.library = library
        self.fingerprint = (
            fingerprint if fingerprint is not None
            else library_fingerprint(library)
        )
        self.ports = list(library.ports)
        self.nodes = list(library.nodes)
        self._port_index = {port: i for i, port in enumerate(self.ports)}
        self._node_index = {node: i for i, node in enumerate(self.nodes)}

        grid = library.grid
        self.horizon = float(grid[-1])
        self._split_spectrum(library.modal.eigenvalues)
        self._build_window_tables(grid)
        self._build_modal_coefficients(library)
        self._self_check()
        self._phase_cache: dict[bytes, np.ndarray] = {}
        self._tier_cache: dict[tuple[bytes, bytes], _TierIndex] = {}
        self._contrib_cache: dict[tuple, np.ndarray] = {}

    # -- compilation ----------------------------------------------------
    def _split_spectrum(self, eigenvalues: np.ndarray) -> None:
        """Partition the spectrum into analytically-carried slow modes
        and window-absorbed fast modes, and fold conjugate pairs into
        half-spectrum lanes."""
        rates = -np.real(eigenvalues)
        slow = rates * self.horizon <= _EXP_BUDGET
        if not np.any(slow):
            raise SolverError(
                "kernel compile: no eigenvalue is slow enough to carry "
                "analytically over the response horizon"
            )
        self._slow_rate_max = float(rates[slow].max())
        fast_rates = rates[~slow]
        if fast_rates.size:
            self.window = _FAST_EFOLDS / float(fast_rates.min())
        else:
            # Everything is carried analytically; keep a small window so
            # the in-ramp region (x < rise_time) still reads the table.
            self.window = 4.0 * self.library.rise_time
        if self.window >= self.horizon:
            raise SolverError(
                "kernel compile: fast/slow spectral gap leaves no room "
                f"for the analytic tier (window {self.window:.3g}s >= "
                f"horizon {self.horizon:.3g}s)"
            )
        if self.window < self.library.rise_time:
            raise SolverError(
                "kernel compile: window shorter than the edge rise time"
            )
        lam = eigenvalues[slow]
        keep = lam.imag >= 0.0
        weights = np.where(lam[keep].imag > 0.0, 2.0, 1.0)
        if int(weights.sum()) != int(slow.sum()):
            raise SolverError(
                "kernel compile: slow eigenvalues do not form conjugate "
                "pairs (defective or truncated spectrum)"
            )
        self._lanes = lam[keep]                # (S,) imag >= 0
        self._lane_weights = weights           # (S,) 1 for real, 2 paired
        self._slow_index = np.flatnonzero(slow)[keep]

    def _build_window_tables(self, grid: np.ndarray) -> None:
        """Snapshot the uniform fine prefix of every ramp table (the
        window tier interpolates these with direct index arithmetic)."""
        step = float(grid[1] - grid[0])
        n_hi = int(np.searchsorted(grid, self.window, side="right"))
        n_knots = n_hi + 1
        if n_knots >= grid.size:
            raise SolverError("kernel compile: window reaches past the grid")
        knots = grid[:n_knots]
        uniform = np.arange(n_knots) * step
        if np.abs(knots - uniform).max() > 1e-6 * step:
            raise SolverError(
                "kernel compile: window extends beyond the uniform fine "
                "region of the response grid"
            )
        self._window_step = step
        self._n_knots = n_knots
        # (ports, knots, nodes) value and slope tables.
        library = self.library
        wtab = np.empty((len(self.ports), n_knots, len(self.nodes)))
        for p, port in enumerate(self.ports):
            for n, node in enumerate(self.nodes):
                wtab[p, :, n] = library._ramp[(port, node)][:n_knots]
        self._wtab = wtab
        self._wslope = np.diff(wtab, axis=1) / step
        # Value and slope tables packed side by side, so the window
        # tier's per-pair interpolation costs one fancy-index gather.
        self._wpack = np.concatenate(
            [wtab[:, :-1, :], self._wslope], axis=2
        )

    def _build_modal_coefficients(self, library: ResponseLibrary) -> None:
        """Per-port closed-form ramp coefficients restricted to the slow
        lanes: ``ramp(x) = y_ss + Re Σ_s w_s (m g)_s e^{λ_s x}`` for
        ``x ≥ rise_time`` (exact; the window tier owns smaller x)."""
        modal = library.modal
        sysm = modal.system
        tau = library.rise_time
        rows = sysm.output_rows(self.nodes)
        lam = self._lanes
        # Ramp smoothing factor of each lane: (1 - e^{-λτ}) / (λτ).
        gain = (1.0 - np.exp(-lam * tau)) / (lam * tau)
        n_ports, n_lanes, n_nodes = len(self.ports), lam.size, len(self.nodes)
        mgw = np.empty((n_ports, n_lanes, n_nodes), dtype=complex)
        yss = np.empty((n_ports, n_nodes))
        dc = np.empty((n_ports, n_nodes))
        for p, port in enumerate(self.ports):
            j = sysm.input_column(port)
            x_ss = np.linalg.solve(sysm.a, -sysm.b[:, j])
            coeff = modal._left @ (-x_ss)
            modes = (sysm.pv[rows] @ modal._right) * coeff[None, :]
            yss[p] = sysm.pv[rows] @ x_ss + sysm.qv[rows, j]
            mgw[p] = (
                modes[:, self._slow_index].T
                * (self._lane_weights * gain)[:, None]
            )
            for n, node in enumerate(self.nodes):
                dc[p, n] = library.dc(port, node)
        self._mgw = mgw
        self._mgw_flat = mgw.reshape(n_ports * n_lanes, n_nodes)
        self._yss = yss
        self._dc = dc

    def _self_check(self) -> None:
        """Compile-time equivalence proof: the analytic slow tier must
        match the ramp table across its whole domain, per unit edge."""
        probes = np.unique(np.concatenate([
            np.geomspace(self.window, self.horizon, 64),
            [self.window, self.horizon],
        ]))
        phases = np.exp(np.outer(probes, self._lanes))      # (X, S)
        worst = 0.0
        for p, port in enumerate(self.ports):
            analytic = self._yss[p][None, :] + np.real(
                phases @ self._mgw[p]
            )                                               # (X, nodes)
            for n, node in enumerate(self.nodes):
                reference = self.library.ramp(port, node, probes)
                worst = max(worst, float(
                    np.abs(analytic[:, n] - reference).max()
                ))
        self.compile_deviation_v = worst
        if worst > COMPILE_TOLERANCE_V:
            raise SolverError(
                f"kernel compile: analytic slow tier deviates "
                f"{worst:.3e} V/A from the ramp table (budget "
                f"{COMPILE_TOLERANCE_V:.0e}); falling back to the "
                f"reference solver is required"
            )

    # -- evaluation -----------------------------------------------------
    def _node_rows(self, nodes: list[str] | None) -> tuple[list[str], np.ndarray]:
        if nodes is None:
            nodes = self.nodes
        try:
            rows = np.array([self._node_index[n] for n in nodes], dtype=int)
        except KeyError as exc:
            raise SolverError(
                f"response for node {exc.args[0]!r} was not precomputed"
            ) from None
        return list(nodes), rows

    def _phase_matrix(self, grid: SampleGrid) -> np.ndarray:
        """``e^{λ_s t_m}`` (samples × lanes), built multiplicatively
        from the grid's provenance when available."""
        lam = self._lanes
        times = grid.times
        if not grid.has_provenance:
            return np.exp(times[:, None] * lam[None, :])
        base_step = grid.t_end / (grid.n_base - 1)
        blocks = [_geometric_powers(np.exp(lam * base_step), grid.n_base)]
        if grid.anchors is not None and grid.anchors.size:
            anchor_e = np.exp(grid.anchors[:, None] * lam[None, :])
            offset_e = np.exp(grid.offsets[:, None] * lam[None, :])
            probe_e = (
                anchor_e[:, None, :] * offset_e[None, :, :]
            ).reshape(-1, lam.size)
            blocks.append(probe_e[grid.probe_mask])
        return np.concatenate(blocks)[grid.first_index]

    def _phases_for(self, grid: SampleGrid, key: bytes) -> np.ndarray:
        """Content-memoized phase matrix: synchronized sweeps reuse a
        handful of distinct sample grids across thousands of (run,
        segment) pairs, so the build cost amortizes to nothing."""
        phases = self._phase_cache.get(key)
        if phases is None:
            if len(self._phase_cache) >= _SEGMENT_CACHE_ENTRIES:
                self._phase_cache.clear()
            phases = self._phase_matrix(grid)
            self._phase_cache[key] = phases
        return phases

    def _tiers_for(
        self, times: np.ndarray, times_key: bytes, et: np.ndarray,
        et_key: bytes,
    ) -> "_TierIndex":
        """Content-memoized tier bookkeeping for one (sample grid, edge
        train) pair: boundary indices and the expanded window-tier
        (sample, elapsed-time) pairs.  Port-independent — every port
        whose train shares the same edge instants reuses it."""
        key = (times_key, et_key)
        tiers = self._tier_cache.get(key)
        if tiers is None:
            if len(self._tier_cache) >= _SEGMENT_CACHE_ENTRIES:
                self._tier_cache.clear()
            tiers = self._build_tiers(times, et)
            self._tier_cache[key] = tiers
        return tiers

    def _build_tiers(self, times: np.ndarray, et: np.ndarray) -> _TierIndex:
        """Compute one :class:`_TierIndex` (see its docstring).  All
        three tiers share the *same* float predicates (edge < t−W marks
        slow-or-older, edge < t−H marks dc) so every (sample, edge)
        pair lands in exactly one tier even at the seams."""
        t_w = times - self.window
        t_h = times - self.horizon
        ks_w = np.searchsorted(et, t_w, side="left")
        ks_h = np.searchsorted(et, t_h, side="left")
        prefix_ok = self._slow_rate_max * float(times[-1]) <= _EXP_BUDGET

        win_sample = win_idx = win_frac = win_active = win_lengths = None
        expanded = _expand_ranges(
            np.searchsorted(times, et, side="right"),
            np.searchsorted(t_w, et, side="right"),
        )
        if expanded is not None:
            win_sample, win_active, win_lengths = expanded
            x = times[win_sample] - np.repeat(et[win_active], win_lengths)
            step = self._window_step
            win_idx = np.clip(
                (x / step).astype(np.intp), 0, self._n_knots - 2
            )
            win_frac = x - win_idx * step

        decay = None
        pw_sample = pw_phases = pw_active = pw_lengths = None
        if prefix_ok:
            decay = np.exp(np.outer(et, -self._lanes))
        else:
            expanded = _expand_ranges(
                np.searchsorted(t_w, et, side="right"),
                np.searchsorted(t_h, et, side="right"),
            )
            if expanded is not None:
                pw_sample, pw_active, pw_lengths = expanded
                x = times[pw_sample] - np.repeat(et[pw_active], pw_lengths)
                pw_phases = np.exp(np.outer(x, self._lanes))
        return _TierIndex(
            ks_w=ks_w, ks_h=ks_h, decay=decay,
            win_sample=win_sample, win_idx=win_idx, win_frac=win_frac,
            win_active=win_active, win_lengths=win_lengths,
            pw_sample=pw_sample, pw_phases=pw_phases,
            pw_active=pw_active, pw_lengths=pw_lengths,
        )

    def solve_batch(
        self,
        stimuli: list[tuple[list[EdgeTrain], SampleGrid | np.ndarray]],
        nodes: list[str] | None = None,
    ) -> list[np.ndarray]:
        """Evaluate N stimuli — ``(edge trains, sample grid)`` pairs —
        as one stacked solve.

        Because the PDN is LTI, one port's contribution to the observed
        nodes is a pure function of (sample grid, merged edge train,
        port).  The kernel content-addresses those contribution blocks:
        a synchronized sweep — many runs sharing grids and edge
        instants, differing only in which ports carry which programs —
        evaluates each distinct block once and every further run is a
        handful of vector adds.  Miss-path evaluation itself is tiered
        (see the module docstring) and shares per-(grid, train) phase
        and tier bookkeeping across ports.

        Returns one ``(len(nodes), n_samples)`` deviation array per
        stimulus (``nodes`` defaults to every precomputed node).
        """
        nodes, rows = self._node_rows(nodes)
        rows_key = rows.tobytes()
        grids = [
            grid if isinstance(grid, SampleGrid) else SampleGrid(grid)
            for _, grid in stimuli
        ]
        counts = [grid.times.size for grid in grids]
        starts = np.concatenate([[0], np.cumsum(counts)])
        out = np.zeros((int(starts[-1]), rows.size))

        for (trains, _), grid, start in zip(stimuli, grids, starts):
            times = grid.times
            if times.size == 0:
                continue
            by_port: dict[str, list[EdgeTrain]] = {}
            for train in trains:
                if train.port not in self._port_index:
                    raise SolverError(
                        f"response for port {train.port!r} was not "
                        f"precomputed"
                    )
                by_port.setdefault(train.port, []).append(train)
            if not by_port:
                continue
            times_key = _digest(times)
            seg = out[start:start + times.size]

            for port, port_trains in by_port.items():
                p = self._port_index[port]
                if len(port_trains) == 1:
                    et = port_trains[0].times
                    deltas = port_trains[0].deltas
                else:
                    et = np.concatenate([t.times for t in port_trains])
                    deltas = np.concatenate([t.deltas for t in port_trains])
                order = np.argsort(et, kind="stable")
                et = np.ascontiguousarray(et[order], dtype=float)
                deltas = np.ascontiguousarray(deltas[order], dtype=float)
                key = (times_key, _digest(et), _digest(deltas), p, rows_key)
                contrib = self._contrib_cache.get(key)
                if contrib is None:
                    if len(self._contrib_cache) >= _CONTRIB_CACHE_ENTRIES:
                        self._contrib_cache.clear()
                    contrib = self._port_contribution(
                        grid, times, times_key, et, key[1], deltas, p, rows
                    )
                    contrib.flags.writeable = False
                    self._contrib_cache[key] = contrib
                seg += contrib

        return [
            np.ascontiguousarray(out[start:start + count].T)
            for start, count in zip(starts, counts)
        ]

    def evaluate(
        self,
        trains: list[EdgeTrain],
        times: SampleGrid | np.ndarray,
        nodes: list[str] | None = None,
    ) -> np.ndarray:
        """Single-stimulus convenience wrapper over :meth:`solve_batch`:
        the ``(len(nodes), len(times))`` deviation waveforms."""
        return self.solve_batch([(trains, times)], nodes=nodes)[0]

    # -- evaluation internals -------------------------------------------
    def _port_contribution(
        self,
        grid: SampleGrid,
        times: np.ndarray,
        times_key: bytes,
        et: np.ndarray,
        et_key: bytes,
        deltas: np.ndarray,
        p: int,
        rows: np.ndarray,
    ) -> np.ndarray:
        """One port's deviation block ``(samples × rows)`` for one
        merged edge train — the cacheable unit of the solve."""
        tiers = self._tiers_for(times, times_key, et, et_key)
        n_lanes = self._lanes.size

        # DC and steady-state tiers: rank-one products of the Σδ
        # prefix differences against the per-port gain rows.
        d_prefix = np.concatenate([[0.0], np.cumsum(deltas)])
        d_at_h = d_prefix[tiers.ks_h]
        contrib = np.outer(
            d_prefix[tiers.ks_w] - d_at_h, self._yss[p, rows]
        )
        contrib += np.outer(d_at_h, self._dc[p, rows])

        # Slow tier: prefix factorization when the exponents fit,
        # pairwise evaluation otherwise.
        mgw_p = np.ascontiguousarray(self._mgw[p][:, rows])
        if tiers.decay is not None:
            phases = self._phases_for(grid, times_key)
            p_prefix = np.concatenate([
                np.zeros((1, n_lanes), dtype=complex),
                np.cumsum(deltas[:, None] * tiers.decay, axis=0),
            ])
            contrib += np.real(
                (phases * (p_prefix[tiers.ks_w] - p_prefix[tiers.ks_h]))
                @ mgw_p
            )
        elif tiers.pw_sample is not None:
            d_pair = np.repeat(deltas[tiers.pw_active], tiers.pw_lengths)
            weighted = d_pair[:, None] * np.real(tiers.pw_phases @ mgw_p)
            for j in range(rows.size):
                contrib[:, j] += np.bincount(
                    tiers.pw_sample,
                    weights=weighted[:, j],
                    minlength=times.size,
                )

        # Window tier: gather the packed (value | slope) table rows for
        # every (sample, edge) pair, interpolate, scatter-accumulate.
        if tiers.win_sample is not None:
            n = len(self.nodes)
            wpack_p = self._wpack[p][:, np.concatenate([rows, rows + n])]
            packed = wpack_p[tiers.win_idx]     # (pairs, 2R)
            r = rows.size
            vals = packed[:, :r] + tiers.win_frac[:, None] * packed[:, r:]
            d_pair = np.repeat(deltas[tiers.win_active], tiers.win_lengths)
            weighted = d_pair[:, None] * vals
            for j in range(r):
                contrib[:, j] += np.bincount(
                    tiers.win_sample,
                    weights=weighted[:, j],
                    minlength=times.size,
                )
        return contrib

    def stepping_solver(
        self,
        grid: SampleGrid | np.ndarray,
        nodes: list[str] | None = None,
    ) -> "SteppingSolver":
        """A :class:`SteppingSolver` over this kernel: windowed,
        exactly-continuing evaluation of one segment's sample grid."""
        return SteppingSolver(self, grid, nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledChipKernel(ports={len(self.ports)}, "
            f"nodes={len(self.nodes)}, lanes={self._lanes.size}, "
            f"window={self.window:.3g}s, fp={self.fingerprint[:12]}…)"
        )


class SteppingSolver:
    """Windowed evaluation of one sample grid with exact continuation.

    A closed-loop controller advances the transient solve in windows:
    ``solve_window(trains, lo, hi)`` returns the node deviations over
    ``times[lo:hi]`` only, and consecutive windows continue each other
    *exactly* — stitching every window back together is bit-identical
    to one monolithic :meth:`CompiledChipKernel.evaluate` of the whole
    grid.

    Because the PDN is LTI, the sufficient state carried between
    windows is the edge-train history and the modal phase continuation
    ``e^{λ t}`` — and the kernel already factors exactly that state
    into content-addressed per-port contribution blocks over the full
    grid.  The solver therefore realizes continuation by carrying those
    full-horizon blocks (summed once per *train epoch*, i.e. per
    distinct edge-train content) and emitting row slices.  Per-sample
    rows of every kernel tier are independent, so the slice is the
    windowed solve — with the bit-identity guaranteed by construction
    instead of by floating-point analysis of sliced GEMMs.

    Actuation that rewrites **future** edges (a throttled core derates
    its upcoming ΔI) starts a new train epoch: the next
    ``solve_window`` re-sums the port blocks, and the kernel's
    contribution cache makes that incremental — only ports whose trains
    actually changed are re-evaluated, untouched ports replay their
    cached blocks.  Samples before the first rewritten edge are
    unaffected (a ramp response is exactly zero before its edge), so
    already-emitted windows remain the truth of the actuated history.
    """

    def __init__(
        self,
        kernel: CompiledChipKernel,
        grid: SampleGrid | np.ndarray,
        nodes: list[str] | None = None,
    ):
        self.kernel = kernel
        self.grid = grid if isinstance(grid, SampleGrid) else SampleGrid(grid)
        self.nodes, self._rows = kernel._node_rows(nodes)
        self._epoch_key: tuple | None = None
        self._block: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        return int(self.grid.times.size)

    @staticmethod
    def _train_key(trains: list[EdgeTrain]) -> tuple:
        """Content identity of one train epoch (port + edge content,
        in train order — the same inputs :meth:`solve_batch` merges)."""
        return tuple(
            (train.port, _digest(train.times), _digest(train.deltas))
            for train in trains
        )

    def _block_for(self, trains: list[EdgeTrain]) -> np.ndarray:
        """The full-grid deviation block of the current train epoch —
        the carried LTI state.  Re-entered only when the train content
        changes; the kernel's contribution cache keeps the re-entry
        cost proportional to the ports actually rewritten."""
        key = self._train_key(trains)
        if self._epoch_key != key or self._block is None:
            self._block = self.kernel.evaluate(
                trains, self.grid, nodes=self.nodes
            )
            self._epoch_key = key
        return self._block

    def solve_window(
        self, trains: list[EdgeTrain], lo: int, hi: int
    ) -> np.ndarray:
        """Deviation waveforms over ``times[lo:hi]``: a
        ``(len(nodes), hi - lo)`` view of the epoch block."""
        if not 0 <= lo <= hi <= self.n_samples:
            raise SolverError(
                f"window [{lo}, {hi}) outside the sample grid "
                f"(0..{self.n_samples})"
            )
        return self._block_for(trains)[:, lo:hi]

    def invalidate(self) -> None:
        """Drop the carried epoch block (tests, memory pressure)."""
        self._epoch_key = None
        self._block = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SteppingSolver(nodes={len(self.nodes)}, "
            f"samples={self.n_samples}, kernel={self.kernel!r})"
        )
