"""Lumped circuit elements used to describe a PDN netlist.

The element vocabulary is deliberately restricted to the shapes that
appear in power-delivery models (Figure 2 of the paper):

* :class:`Resistor` — a purely resistive branch between two nodes
  (power-plane spreading resistance, lateral on-die grid resistance).
* :class:`Inductor` — a series R-L branch between two nodes (package
  traces, C4 arrays, VRM output chokes).  The series resistance is the
  branch ESR and may be zero.
* :class:`Capacitor` — a decoupling capacitor from a node to ground with
  an equivalent series resistance (ESR).
* :class:`CurrentPort` — a named input where a load (a core, the nest,
  an I/O unit) draws time-varying current from a node.
* :class:`VoltagePort` — a named input pinning a node to an externally
  supplied voltage (the VRM output).

All values are plain SI units.  Elements are immutable; a
:class:`~repro.pdn.netlist.Netlist` owns collections of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError

__all__ = [
    "GROUND",
    "Resistor",
    "Inductor",
    "Capacitor",
    "CurrentPort",
    "VoltagePort",
]

#: Name of the implicit ground node.  Always at 0 V.
GROUND = "gnd"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise NetlistError(message)


@dataclass(frozen=True)
class Resistor:
    """Purely resistive branch between nodes *a* and *b*."""

    name: str
    a: str
    b: str
    ohms: float

    def __post_init__(self) -> None:
        _require(bool(self.name), "resistor needs a name")
        _require(self.a != self.b, f"resistor {self.name!r} shorts a node to itself")
        _require(self.ohms > 0, f"resistor {self.name!r} must have positive resistance")


@dataclass(frozen=True)
class Inductor:
    """Series R-L branch between nodes *a* and *b*.

    The branch current (flowing from *a* to *b*) is a state variable of
    the network.  ``esr`` is the series resistance of the branch.
    """

    name: str
    a: str
    b: str
    henries: float
    esr: float = 0.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "inductor needs a name")
        _require(self.a != self.b, f"inductor {self.name!r} shorts a node to itself")
        _require(self.henries > 0, f"inductor {self.name!r} must have positive inductance")
        _require(self.esr >= 0, f"inductor {self.name!r} must have non-negative ESR")


@dataclass(frozen=True)
class Capacitor:
    """Decoupling capacitor from *node* to ground, with series ESR.

    The internal capacitor-plate voltage is a state variable.  A strictly
    positive ESR is required; physical decaps always have one, and it
    keeps the state-space derivation uniform (the node voltage is then an
    algebraic function of states and inputs).
    """

    name: str
    node: str
    farads: float
    esr: float

    def __post_init__(self) -> None:
        _require(bool(self.name), "capacitor needs a name")
        _require(self.node != GROUND, f"capacitor {self.name!r} placed on ground")
        _require(self.farads > 0, f"capacitor {self.name!r} must have positive capacitance")
        _require(self.esr > 0, f"capacitor {self.name!r} must have strictly positive ESR")


@dataclass(frozen=True)
class CurrentPort:
    """Named load input drawing current from *node*.

    A positive input value means current flowing out of the node into the
    load (the convention for on-die switching activity): a positive load
    step therefore produces a voltage droop at the node.
    """

    name: str
    node: str

    def __post_init__(self) -> None:
        _require(bool(self.name), "current port needs a name")
        _require(self.node != GROUND, f"current port {self.name!r} placed on ground")


@dataclass(frozen=True)
class VoltagePort:
    """Named input pinning *node* to an externally supplied voltage.

    Used for the VRM output.  The pinned node's voltage is an input to
    the network rather than a state; branches attached to it see the
    supplied value directly.
    """

    name: str
    node: str

    def __post_init__(self) -> None:
        _require(bool(self.name), "voltage port needs a name")
        _require(self.node != GROUND, f"voltage port {self.name!r} placed on ground")
