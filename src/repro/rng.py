"""Deterministic random-number utilities.

Everything stochastic in the library (process variation, measurement
noise, unsynchronized stressmark phases) flows through seeded
:class:`numpy.random.Generator` instances derived from a single root seed
so that experiments are exactly reproducible run-to-run.

Streams are derived by *name* rather than by call order: the stream for
``("chip", 3, "skitter")`` is always the same for a given root seed, no
matter which other streams were drawn first.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "stream", "SeedSequenceFactory"]

_MASK64 = (1 << 64) - 1


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from *root_seed* and a name path.

    The derivation hashes the textual path, so any hashable/str-able parts
    may be used (strings, ints, tuples).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(repr(name).encode())
    return int.from_bytes(digest.digest()[:8], "little") & _MASK64


def stream(root_seed: int, *names: object) -> np.random.Generator:
    """Return a named, independent random stream for *names* under
    *root_seed*."""
    return np.random.default_rng(derive_seed(root_seed, *names))


class SeedSequenceFactory:
    """Convenience wrapper holding a root seed and handing out named
    streams.

    >>> rngs = SeedSequenceFactory(1234)
    >>> a = rngs.stream("variation", 0)
    >>> b = rngs.stream("variation", 1)
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def seed(self, *names: object) -> int:
        """Derive a named child seed."""
        return derive_seed(self.root_seed, *names)

    def stream(self, *names: object) -> np.random.Generator:
        """Derive a named random stream."""
        return stream(self.root_seed, *names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
