"""Assembly of the full synthetic mainframe ISA.

The ISA holds 1301 instructions: the ten Table I instructions of the
paper, pinned by mnemonic and relative power, plus 1291 procedurally
generated instructions from :data:`repro.isa.families.DEFAULT_FAMILIES`.

Pinned Table I anchors (power normalized to SRNM = 1.0):

=====  =========================================  =====
Rank   Instruction                                Power
=====  =========================================  =====
1      CIB   Compare immediate and branch (32<8)  1.58
2      CRB   Compare and branch (32)              1.57
3      BXHG  Branch on index high (64)            1.57
4      CGIB  Compare immediate and branch (64<8)  1.55
5      CHHSI Compare halfword immediate (16<16)   1.55
1297   DDTRA Divide long DFP with rounding mode   1.01
1298   MXTRA Multiply extended DFP w/ rounding    1.01
1299   MDTRA Multiply long DFP with rounding mode 1.0049
1300   STCK  Store clock                          1.0028
1301   SRNM  Set rounding mode                    1.0
=====  =========================================  =====

(The last three share "1.0" at the paper's printed precision; tiny
offsets keep the ranking strict and deterministic.)
"""

from __future__ import annotations

from .families import DEFAULT_FAMILIES, generate_family
from .instruction import InstructionDef
from .isa import Isa
from .operands import CMP_BRANCH, CMP_IMM_BRANCH, FPR_FPR_FPR, NO_OPERANDS

__all__ = ["build_zmainframe_isa", "PINNED_TOP", "PINNED_BOTTOM", "DEFAULT_ISA_SEED"]

#: Default seed for procedural instruction attributes.
DEFAULT_ISA_SEED = 20141213  # MICRO-47 conference date

#: The paper's Table I top five, in rank order.
PINNED_TOP = ("CIB", "CRB", "BXHG", "CGIB", "CHHSI")
#: The paper's Table I bottom five, in rank order (1297..1301).
PINNED_BOTTOM = ("DDTRA", "MXTRA", "MDTRA", "STCK", "SRNM")


def _pinned_instructions() -> list[InstructionDef]:
    return [
        InstructionDef(
            mnemonic="CIB",
            description="Compare immediate and branch (32<8)",
            family="compare-branch", unit="BRU", issue_class="BRU.cmp-branch",
            latency=1, ends_group=True, power_weight=1.58, operands=CMP_IMM_BRANCH,
        ),
        InstructionDef(
            mnemonic="CRB",
            description="Compare and branch (32)",
            family="compare-branch", unit="BRU", issue_class="BRU.cmp-branch",
            latency=1, ends_group=True, power_weight=1.57, operands=CMP_BRANCH,
        ),
        InstructionDef(
            mnemonic="BXHG",
            description="Branch on index high (64)",
            family="compare-branch", unit="BRU", issue_class="BRU.cmp-branch",
            latency=1, ends_group=True, power_weight=1.5699, operands=CMP_BRANCH,
        ),
        InstructionDef(
            mnemonic="CGIB",
            description="Compare immediate and branch (64<8)",
            family="compare-branch", unit="BRU", issue_class="BRU.cmp-branch",
            latency=1, ends_group=True, power_weight=1.55, operands=CMP_IMM_BRANCH,
        ),
        InstructionDef(
            mnemonic="CHHSI",
            description="Compare halfword immediate (16<16)",
            family="compare", unit="FXU", issue_class="FXU.compare",
            latency=1, power_weight=1.5499, memory=True, operands=CMP_IMM_BRANCH,
        ),
        InstructionDef(
            mnemonic="DDTRA",
            description="Divide long DFP with rounding mode",
            family="decimal-fp", unit="DFU", issue_class="DFU.dfp",
            latency=36, pipelined=False, power_weight=1.0100, operands=FPR_FPR_FPR,
        ),
        InstructionDef(
            mnemonic="MXTRA",
            description="Multiply extended DFP with rounding mode",
            family="decimal-fp", unit="DFU", issue_class="DFU.dfp",
            latency=32, pipelined=False, power_weight=1.0099, operands=FPR_FPR_FPR,
        ),
        InstructionDef(
            mnemonic="MDTRA",
            description="Multiply long DFP with rounding mode",
            family="decimal-fp", unit="DFU", issue_class="DFU.dfp",
            latency=24, pipelined=False, power_weight=1.0049, operands=FPR_FPR_FPR,
        ),
        InstructionDef(
            mnemonic="STCK",
            description="Store clock",
            family="system", unit="SYS", issue_class="SYS.control",
            latency=28, serializing=True, group_alone=True,
            power_weight=1.0028, operands=NO_OPERANDS,
        ),
        InstructionDef(
            mnemonic="SRNM",
            description="Set rounding mode",
            family="system", unit="SYS", issue_class="SYS.control",
            latency=40, serializing=True, group_alone=True,
            power_weight=1.0, operands=NO_OPERANDS,
        ),
    ]


def build_zmainframe_isa(seed: int = DEFAULT_ISA_SEED) -> Isa:
    """Build the 1301-instruction synthetic mainframe ISA.

    The *seed* drives every procedural attribute draw; two calls with the
    same seed produce identical ISAs.
    """
    pinned = _pinned_instructions()
    taken = {inst.mnemonic for inst in pinned}
    instructions = list(pinned)
    for spec in DEFAULT_FAMILIES:
        instructions.extend(generate_family(spec, seed, taken))
    return Isa("zmainframe-synthetic", instructions)
