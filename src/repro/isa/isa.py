"""ISA container with lookup and categorization helpers."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..errors import IsaError
from .instruction import InstructionDef

__all__ = ["Isa"]


class Isa:
    """An immutable collection of instruction definitions.

    Provides mnemonic lookup and the categorizations used by the
    stressmark-generation methodology (by family, functional unit and
    issue class).
    """

    def __init__(self, name: str, instructions: Iterable[InstructionDef]):
        self.name = name
        self._by_mnemonic: dict[str, InstructionDef] = {}
        for inst in instructions:
            if inst.mnemonic in self._by_mnemonic:
                raise IsaError(f"duplicate mnemonic {inst.mnemonic!r}")
            self._by_mnemonic[inst.mnemonic] = inst
        if not self._by_mnemonic:
            raise IsaError("an ISA needs at least one instruction")
        self._ordered = tuple(self._by_mnemonic.values())

    # -- basic container protocol --------------------------------------
    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[InstructionDef]:
        return iter(self._ordered)

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._by_mnemonic

    def __getitem__(self, mnemonic: str) -> InstructionDef:
        try:
            return self._by_mnemonic[mnemonic]
        except KeyError:
            raise IsaError(f"unknown instruction {mnemonic!r}") from None

    @property
    def mnemonics(self) -> list[str]:
        """All mnemonics in definition order."""
        return [inst.mnemonic for inst in self._ordered]

    # -- categorizations ------------------------------------------------
    def by_family(self) -> dict[str, list[InstructionDef]]:
        """Instructions grouped by generation family."""
        groups: dict[str, list[InstructionDef]] = defaultdict(list)
        for inst in self._ordered:
            groups[inst.family].append(inst)
        return dict(groups)

    def by_unit(self) -> dict[str, list[InstructionDef]]:
        """Instructions grouped by primary functional unit."""
        groups: dict[str, list[InstructionDef]] = defaultdict(list)
        for inst in self._ordered:
            groups[inst.unit].append(inst)
        return dict(groups)

    def by_issue_class(self) -> dict[str, list[InstructionDef]]:
        """Instructions grouped by issue class (the categorization the
        stressmark candidate selection uses)."""
        groups: dict[str, list[InstructionDef]] = defaultdict(list)
        for inst in self._ordered:
            groups[inst.issue_class].append(inst)
        return dict(groups)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Isa({self.name!r}, {len(self)} instructions)"
