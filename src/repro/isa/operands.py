"""Operand model for the synthetic ISA.

Operands matter to this library for two reasons: microbenchmark
generation must materialize register/immediate/memory operands when it
emits assembly (:mod:`repro.mbench.codegen`), and dependence-free loop
construction must know which operands are written so it can rotate
destination registers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OperandKind", "Operand"]


class OperandKind(enum.Enum):
    """The operand storage classes of the synthetic ISA."""

    GPR = "gpr"          # general purpose register (64-bit)
    FPR = "fpr"          # floating point register
    VR = "vr"            # vector register
    IMMEDIATE = "imm"    # encoded immediate
    MEMORY = "mem"       # base + displacement memory reference
    LABEL = "label"      # branch target


@dataclass(frozen=True)
class Operand:
    """One operand slot of an instruction definition.

    Attributes
    ----------
    kind:
        Storage class of the operand.
    is_written:
        True when the instruction writes this operand (destinations).
    width_bits:
        Datum width, for documentation and encoding purposes.
    """

    kind: OperandKind
    is_written: bool = False
    width_bits: int = 64

    def __str__(self) -> str:
        marker = "w" if self.is_written else "r"
        return f"{self.kind.value}:{marker}{self.width_bits}"


# Reusable operand signatures for the family generators.
REG_REG = (Operand(OperandKind.GPR, True), Operand(OperandKind.GPR))
REG_REG_REG = (
    Operand(OperandKind.GPR, True),
    Operand(OperandKind.GPR),
    Operand(OperandKind.GPR),
)
REG_IMM = (Operand(OperandKind.GPR, True), Operand(OperandKind.IMMEDIATE))
REG_MEM = (Operand(OperandKind.GPR, True), Operand(OperandKind.MEMORY))
MEM_REG = (Operand(OperandKind.MEMORY), Operand(OperandKind.GPR))
FPR_FPR = (Operand(OperandKind.FPR, True), Operand(OperandKind.FPR))
FPR_FPR_FPR = (
    Operand(OperandKind.FPR, True),
    Operand(OperandKind.FPR),
    Operand(OperandKind.FPR),
)
VR_VR_VR = (
    Operand(OperandKind.VR, True),
    Operand(OperandKind.VR),
    Operand(OperandKind.VR),
)
CMP_BRANCH = (
    Operand(OperandKind.GPR),
    Operand(OperandKind.GPR),
    Operand(OperandKind.LABEL),
)
CMP_IMM_BRANCH = (
    Operand(OperandKind.GPR),
    Operand(OperandKind.IMMEDIATE),
    Operand(OperandKind.LABEL),
)
BRANCH_ONLY = (Operand(OperandKind.LABEL),)
NO_OPERANDS: tuple[Operand, ...] = ()
