"""Instruction definition record.

Each :class:`InstructionDef` carries everything the rest of the library
needs to know about one ISA instruction:

* identity and documentation (mnemonic, description, family);
* microarchitectural attributes consumed by :mod:`repro.uarch`
  (functional unit, µop count, latency, pipelining, dispatch-group
  behavior, memory access);
* a relative sustained-power weight, the quantity the paper's Table I
  reports (measured single-instruction loop power normalized to the
  cheapest instruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IsaError
from .operands import Operand

__all__ = ["InstructionDef", "FUNCTIONAL_UNITS"]

#: Functional unit identifiers of the modeled core.
FUNCTIONAL_UNITS = ("FXU", "LSU", "BRU", "BFU", "DFU", "VXU", "SYS", "COP")


@dataclass(frozen=True)
class InstructionDef:
    """Immutable description of one ISA instruction.

    Attributes
    ----------
    mnemonic:
        Unique assembler mnemonic.
    description:
        Human-readable one-liner (shows up in EPI profile reports).
    family:
        Generation family (``fixed-point``, ``decimal-fp`` ...).
    unit:
        Primary functional unit executing the instruction's µops.
    issue_class:
        Categorization used for stressmark candidate selection; usually
        the unit plus a qualifier (e.g. ``FXU.cmp-branch``).
    uops:
        Number of µops the instruction cracks into.
    latency:
        Result latency in cycles.
    pipelined:
        False for unit-blocking operations (divides, some decimal ops):
        the unit is busy for ``latency`` cycles per µop.
    serializing:
        True for instructions that drain the pipeline before and after
        (SRNM, STCK and friends): throughput collapses to 1/latency.
    ends_group:
        Branch-like: closes its dispatch group.
    group_alone:
        Cracked/complex: must be the only instruction of its group.
    memory:
        Touches memory (loads/stores); constrains per-group LSU slots.
    power_weight:
        Relative sustained loop power (cheapest instruction = 1.0).
    operands:
        Operand slots in assembler order.
    """

    mnemonic: str
    description: str
    family: str
    unit: str
    issue_class: str
    uops: int = 1
    latency: int = 1
    pipelined: bool = True
    serializing: bool = False
    ends_group: bool = False
    group_alone: bool = False
    memory: bool = False
    power_weight: float = 1.0
    operands: tuple[Operand, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.mnemonic:
            raise IsaError("instruction needs a mnemonic")
        if self.unit not in FUNCTIONAL_UNITS:
            raise IsaError(
                f"{self.mnemonic}: unknown functional unit {self.unit!r}"
            )
        if self.uops < 1:
            raise IsaError(f"{self.mnemonic}: uops must be >= 1")
        if self.latency < 1:
            raise IsaError(f"{self.mnemonic}: latency must be >= 1")
        if self.power_weight < 1.0:
            raise IsaError(
                f"{self.mnemonic}: power weights are normalized to the "
                f"cheapest instruction; must be >= 1.0"
            )
        if self.serializing and not self.group_alone:
            raise IsaError(
                f"{self.mnemonic}: serializing instructions dispatch alone"
            )

    @property
    def is_branch(self) -> bool:
        """Branch-like for grouping purposes."""
        return self.ends_group

    def __str__(self) -> str:
        return self.mnemonic
