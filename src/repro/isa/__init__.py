"""Synthetic mainframe-class CISC instruction set architecture.

The paper profiles every instruction of the evaluation platform's ISA
(~1300 instructions) to build an energy-per-instruction (EPI) ranking
(its Table I).  The real ISA is not reproducible here, so this package
generates a **synthetic CISC ISA** with the same structure:

* ~1300 instructions across realistic families (fixed point, loads and
  stores, branches, compare-and-branch, binary/hex floating point,
  decimal floating point, vector, system/control, crypto, string);
* per-instruction microarchitectural attributes (functional unit, µop
  count, latency, pipelining, dispatch-group behavior) consumed by
  :mod:`repro.uarch`;
* a relative sustained-power weight per instruction.  The ten
  instructions the paper publishes in Table I (CIB, CRB, BXHG, CGIB,
  CHHSI at the top; DDTRA, MXTRA, MDTRA, STCK, SRNM at the bottom) are
  pinned by name to the paper's values; the rest are generated
  procedurally with family-specific distributions, deterministically
  from the ISA seed.
"""

from .operands import Operand, OperandKind
from .instruction import InstructionDef
from .isa import Isa
from .zmainframe import build_zmainframe_isa, PINNED_TOP, PINNED_BOTTOM

__all__ = [
    "Operand",
    "OperandKind",
    "InstructionDef",
    "Isa",
    "build_zmainframe_isa",
    "PINNED_TOP",
    "PINNED_BOTTOM",
]
