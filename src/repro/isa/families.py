"""Procedural instruction-family generators.

Each :class:`FamilySpec` describes one slice of the synthetic ISA: a
functional unit, dispatch behavior, power/latency ranges, and mnemonic
material (operation roots and form suffixes, in the flavor of mainframe
assembler mnemonics).  :func:`generate_family` expands a spec into an
exact number of :class:`~repro.isa.instruction.InstructionDef` records.

Generation is fully deterministic: every per-instruction draw (power
weight, latency, µop count) is keyed on the ISA seed plus the mnemonic,
so the profile is stable across runs and machines regardless of
generation order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import IsaError
from ..rng import stream
from .instruction import InstructionDef
from .operands import (
    BRANCH_ONLY,
    CMP_BRANCH,
    CMP_IMM_BRANCH,
    FPR_FPR_FPR,
    MEM_REG,
    NO_OPERANDS,
    REG_IMM,
    REG_MEM,
    REG_REG,
    REG_REG_REG,
    VR_VR_VR,
    Operand,
)

__all__ = ["FamilySpec", "generate_family", "DEFAULT_FAMILIES"]


@dataclass
class FamilySpec:
    """Blueprint for one instruction family.

    ``roots`` × ``forms`` provides the mnemonic material; when the
    product is exhausted before ``count`` instructions exist, numbered
    variants are appended (mirroring the many addressing-mode/length
    variants of a real CISC ISA).
    """

    name: str
    unit: str
    issue_class: str
    count: int
    roots: list[tuple[str, str]]
    forms: list[tuple[str, str]]
    power_range: tuple[float, float]
    latency_range: tuple[int, int] = (1, 3)
    uops_range: tuple[int, int] = (1, 1)
    ends_group: bool = False
    group_alone: bool = False
    serializing: bool = False
    memory: bool = False
    nonpipelined_roots: tuple[str, ...] = ()
    nonpipelined_latency: tuple[int, int] = (18, 40)
    operands: tuple[Operand, ...] = field(default=REG_REG)

    def __post_init__(self) -> None:
        lo, hi = self.power_range
        if not 1.0 <= lo < hi:
            raise IsaError(f"family {self.name}: bad power range {self.power_range}")
        if self.count < 1:
            raise IsaError(f"family {self.name}: count must be positive")
        if not self.roots or not self.forms:
            raise IsaError(f"family {self.name}: needs roots and forms")


def _mnemonics(spec: FamilySpec, taken: set[str]):
    """Yield (mnemonic, description) pairs, unique against *taken*."""
    combos = itertools.product(spec.roots, spec.forms)
    produced = 0
    for (root, root_desc), (form, form_desc) in combos:
        mnemonic = root + form
        if mnemonic in taken:
            continue
        taken.add(mnemonic)
        desc = f"{root_desc} {form_desc}".strip()
        yield mnemonic, desc
        produced += 1
    # Numbered variants when the combinatorial material runs out.
    for counter in itertools.count(2):
        for (root, root_desc), (form, form_desc) in itertools.product(
            spec.roots, spec.forms
        ):
            mnemonic = f"{root}{form}{counter}"
            if mnemonic in taken:
                continue
            taken.add(mnemonic)
            desc = f"{root_desc} {form_desc} (variant {counter})".strip()
            yield mnemonic, desc


def generate_family(
    spec: FamilySpec, isa_seed: int, taken: set[str]
) -> list[InstructionDef]:
    """Expand *spec* into exactly ``spec.count`` instruction definitions.

    *taken* is the cross-family mnemonic registry; generated names are
    added to it so later families cannot collide.
    """
    instructions: list[InstructionDef] = []
    lo, hi = spec.power_range
    for mnemonic, description in _mnemonics(spec, taken):
        rng = stream(isa_seed, "inst", spec.name, mnemonic)
        power = lo + float(rng.random()) * (hi - lo)
        nonpipelined = any(mnemonic.startswith(r) for r in spec.nonpipelined_roots)
        if nonpipelined:
            latency = int(rng.integers(*spec.nonpipelined_latency, endpoint=True))
        else:
            latency = int(rng.integers(*spec.latency_range, endpoint=True))
        uops = int(rng.integers(*spec.uops_range, endpoint=True))
        instructions.append(
            InstructionDef(
                mnemonic=mnemonic,
                description=description,
                family=spec.name,
                unit=spec.unit,
                issue_class=spec.issue_class,
                uops=uops,
                latency=latency,
                pipelined=not nonpipelined,
                serializing=spec.serializing,
                ends_group=spec.ends_group,
                group_alone=spec.group_alone or spec.serializing,
                memory=spec.memory,
                power_weight=round(power, 4),
                operands=spec.operands,
            )
        )
        if len(instructions) == spec.count:
            return instructions
    raise IsaError(f"family {spec.name}: mnemonic generation exhausted")  # pragma: no cover


# ----------------------------------------------------------------------
# The default family set (counts sum to 1291; with the 10 pinned Table I
# instructions the ISA holds 1301 instructions, as in the paper).
# ----------------------------------------------------------------------

_FORMS_FX = [
    ("R", "register"), ("GR", "register (64)"), ("G", "(64)"),
    ("RK", "register 3-op"), ("GRK", "register 3-op (64)"),
    ("I", "immediate"), ("GI", "immediate (64)"), ("FI", "fullword immediate"),
    ("Y", "long displacement"), ("H", "halfword"), ("HY", "halfword long disp"),
    ("RL", "relative"), ("", "storage"),
]
_FORMS_MEM = [
    ("", "storage"), ("Y", "long displacement"), ("G", "(64)"),
    ("GF", "(64<-32)"), ("H", "halfword"), ("HY", "halfword long disp"),
    ("RL", "relative"), ("B", "byte"), ("GH", "halfword (64)"),
    ("HH", "high half"), ("FH", "high word"), ("E", "extended"),
]

DEFAULT_FAMILIES: list[FamilySpec] = [
    FamilySpec(
        name="compare-branch",
        unit="BRU",
        issue_class="BRU.cmp-branch",
        count=30,
        roots=[
            ("CRJ", "Compare and branch relative (32)"),
            ("CGRJ", "Compare and branch relative (64)"),
            ("CIJ", "Compare immediate and branch relative (32<8)"),
            ("CGIJ", "Compare immediate and branch relative (64<8)"),
            ("CLRB", "Compare logical and branch (32)"),
            ("CLGRB", "Compare logical and branch (64)"),
            ("CLIB", "Compare logical immediate and branch (32<8)"),
            ("CLGIB", "Compare logical immediate and branch (64<8)"),
            ("CRT", "Compare and trap (32)"),
            ("CGRT", "Compare and trap (64)"),
            ("BXH", "Branch on index high (32)"),
            ("BXLE", "Branch on index low or equal (32)"),
            ("BXLEG", "Branch on index low or equal (64)"),
            ("BCT", "Branch on count (32)"),
            ("BCTG", "Branch on count (64)"),
        ],
        forms=[("", ""), ("A", "alt-form")],
        power_range=(1.42, 1.545),
        latency_range=(1, 2),
        ends_group=True,
        operands=CMP_BRANCH,
    ),
    FamilySpec(
        name="fixed-point",
        unit="FXU",
        issue_class="FXU.arith",
        count=220,
        roots=[
            ("A", "Add"), ("S", "Subtract"), ("M", "Multiply"),
            ("MS", "Multiply single"), ("AL", "Add logical"),
            ("SL", "Subtract logical"), ("ALC", "Add logical with carry"),
            ("SLB", "Subtract logical with borrow"), ("MH", "Multiply halfword"),
            ("AH", "Add halfword"), ("SH", "Subtract halfword"),
        ],
        forms=_FORMS_FX,
        power_range=(1.22, 1.50),
        latency_range=(1, 3),
        operands=REG_REG_REG,
    ),
    FamilySpec(
        name="logical",
        unit="FXU",
        issue_class="FXU.logical",
        count=90,
        roots=[
            ("N", "And"), ("O", "Or"), ("X", "Exclusive or"),
            ("TM", "Test under mask"), ("RLL", "Rotate left single logical"),
            ("SLL", "Shift left single logical"), ("SRL", "Shift right single logical"),
            ("SLA", "Shift left single"), ("SRA", "Shift right single"),
        ],
        forms=_FORMS_FX[:10],
        power_range=(1.18, 1.44),
        latency_range=(1, 2),
        operands=REG_REG,
    ),
    FamilySpec(
        name="compare",
        unit="FXU",
        issue_class="FXU.compare",
        count=60,
        roots=[
            ("C", "Compare"), ("CL", "Compare logical"),
            ("CGH", "Compare halfword (64)"), ("CLM", "Compare logical under mask"),
            ("CLHH", "Compare logical high"), ("CHF", "Compare high fullword"),
        ],
        forms=_FORMS_FX[:10],
        power_range=(1.25, 1.50),
        latency_range=(1, 2),
        operands=REG_REG,
    ),
    FamilySpec(
        name="branch",
        unit="BRU",
        issue_class="BRU.branch",
        count=40,
        roots=[
            ("B", "Branch"), ("BC", "Branch on condition"),
            ("BAS", "Branch and save"), ("BRAS", "Branch relative and save"),
            ("BRC", "Branch relative on condition"), ("J", "Jump"),
            ("JG", "Jump long"), ("NOPB", "Branch never"),
        ],
        forms=[("", ""), ("R", "register"), ("L", "long"), ("LR", "long register"),
               ("E", "extended")],
        power_range=(1.30, 1.48),
        latency_range=(1, 2),
        ends_group=True,
        operands=BRANCH_ONLY,
    ),
    FamilySpec(
        name="load",
        unit="LSU",
        issue_class="LSU.load",
        count=116,
        roots=[
            ("L", "Load"), ("LT", "Load and test"), ("LB", "Load byte"),
            ("LH", "Load halfword"), ("LLC", "Load logical character"),
            ("LLH", "Load logical halfword"), ("LLG", "Load logical (64)"),
            ("LRV", "Load reversed"), ("LA", "Load address"),
            ("LAE", "Load address extended"),
        ],
        forms=_FORMS_MEM,
        power_range=(1.26, 1.48),
        latency_range=(2, 4),
        memory=True,
        operands=REG_MEM,
    ),
    FamilySpec(
        name="store",
        unit="LSU",
        issue_class="LSU.store",
        count=80,
        roots=[
            ("ST", "Store"), ("STH", "Store halfword"), ("STC", "Store character"),
            ("STRV", "Store reversed"), ("STAM", "Store access multiple"),
            ("STFH", "Store high fullword"), ("STO", "Store ordered"),
        ],
        forms=_FORMS_MEM,
        power_range=(1.22, 1.42),
        latency_range=(1, 2),
        memory=True,
        operands=MEM_REG,
    ),
    FamilySpec(
        name="mem-complex",
        unit="LSU",
        issue_class="LSU.complex",
        count=30,
        roots=[
            ("LM", "Load multiple"), ("STM", "Store multiple"),
            ("MVC", "Move character"), ("MVCL", "Move character long"),
            ("CLC", "Compare logical character"), ("XC", "Exclusive or character"),
            ("NC", "And character"), ("OC", "Or character"),
            ("TR", "Translate"), ("TRT", "Translate and test"),
        ],
        forms=[("", ""), ("G", "(64)"), ("Y", "long displacement")],
        power_range=(1.10, 1.32),
        latency_range=(4, 10),
        uops_range=(3, 8),
        group_alone=True,
        memory=True,
        operands=MEM_REG,
    ),
    FamilySpec(
        name="binary-fp",
        unit="BFU",
        issue_class="BFU.bfp",
        count=110,
        roots=[
            ("AE", "Add short BFP"), ("AD", "Add long BFP"), ("AX", "Add extended BFP"),
            ("SE", "Subtract short BFP"), ("SD", "Subtract long BFP"),
            ("ME", "Multiply short BFP"), ("MD", "Multiply long BFP"),
            ("DE", "Divide short BFP"), ("DD", "Divide long BFP"),
            ("SQE", "Square root short BFP"), ("SQD", "Square root long BFP"),
            ("MAE", "Multiply and add short BFP"), ("MSE", "Multiply and subtract short BFP"),
        ],
        forms=[("B", "binary"), ("BR", "binary register"), ("TR", "to-register"),
               ("B3", "3-operand binary"), ("BRA", "binary register alt")],
        power_range=(1.10, 1.38),
        latency_range=(3, 7),
        nonpipelined_roots=("DE", "DD", "SQE", "SQD"),
        nonpipelined_latency=(18, 34),
        operands=FPR_FPR_FPR,
    ),
    FamilySpec(
        name="hex-fp",
        unit="BFU",
        issue_class="BFU.hfp",
        count=60,
        roots=[
            ("AER", "Add short HFP"), ("ADR", "Add long HFP"), ("AXR", "Add extended HFP"),
            ("SER", "Subtract short HFP"), ("SDR", "Subtract long HFP"),
            ("MER", "Multiply short HFP"), ("MDR", "Multiply long HFP"),
            ("DER", "Divide short HFP"), ("DDR", "Divide long HFP"),
            ("HER", "Halve short HFP"), ("HDR", "Halve long HFP"),
        ],
        forms=[("", ""), ("H", "high"), ("L", "low"), ("U", "unnormalized"),
               ("W", "wide"), ("Q", "quad")],
        power_range=(1.08, 1.30),
        latency_range=(3, 7),
        nonpipelined_roots=("DER", "DDR"),
        nonpipelined_latency=(16, 30),
        operands=FPR_FPR_FPR,
    ),
    FamilySpec(
        name="decimal-fp",
        unit="DFU",
        issue_class="DFU.dfp",
        count=120,
        roots=[
            ("ADTR", "Add long DFP"), ("AXTR", "Add extended DFP"),
            ("SDTR", "Subtract long DFP"), ("SXTR", "Subtract extended DFP"),
            ("CDTR", "Compare long DFP"), ("CXTR", "Compare extended DFP"),
            ("FIDTR", "Load FP integer long DFP"), ("QADTR", "Quantize long DFP"),
            ("RRDTR", "Reround long DFP"), ("CDGTR", "Convert from fixed long DFP"),
            ("CGDTR", "Convert to fixed long DFP"), ("LDETR", "Load lengthened DFP"),
            ("DXTRB", "Divide extended DFP"),
        ],
        forms=[("", ""), ("A", "with rounding mode"), ("2", "variant 2"),
               ("U", "unsigned"), ("Z", "zoned"), ("P", "packed"),
               ("S", "signaling"), ("Q", "quantum"), ("H", "high"), ("L", "low")],
        power_range=(1.012, 1.18),
        latency_range=(8, 20),
        nonpipelined_roots=("DXTRB", "QADTR", "RRDTR"),
        nonpipelined_latency=(24, 44),
        operands=FPR_FPR_FPR,
    ),
    FamilySpec(
        name="packed-decimal",
        unit="DFU",
        issue_class="DFU.packed",
        count=40,
        roots=[
            ("AP", "Add packed"), ("SP", "Subtract packed"), ("MP", "Multiply packed"),
            ("DP", "Divide packed"), ("ZAP", "Zero and add packed"),
            ("CP", "Compare packed"), ("SRP", "Shift and round packed"),
            ("CVB", "Convert to binary"), ("CVD", "Convert to decimal"),
            ("PACK", "Pack"), ("UNPK", "Unpack"), ("ED", "Edit"),
        ],
        forms=[("", ""), ("G", "(64)"), ("X", "extended"), ("Y", "long displacement")],
        power_range=(1.02, 1.20),
        latency_range=(6, 16),
        uops_range=(2, 5),
        group_alone=True,
        memory=True,
        nonpipelined_roots=("DP", "MP"),
        nonpipelined_latency=(20, 38),
        operands=MEM_REG,
    ),
    FamilySpec(
        name="vector",
        unit="VXU",
        issue_class="VXU.simd",
        count=180,
        roots=[
            ("VA", "Vector add"), ("VS", "Vector subtract"), ("VML", "Vector multiply low"),
            ("VN", "Vector and"), ("VO", "Vector or"), ("VX", "Vector exclusive or"),
            ("VCEQ", "Vector compare equal"), ("VCH", "Vector compare high"),
            ("VMX", "Vector maximum"), ("VMN", "Vector minimum"),
            ("VAVG", "Vector average"), ("VSUM", "Vector sum across"),
            ("VPK", "Vector pack"), ("VUPK", "Vector unpack"),
            ("VERLL", "Vector element rotate left"), ("VESL", "Vector element shift left"),
        ],
        forms=[("B", "byte"), ("H", "halfword"), ("F", "word"), ("G", "doubleword"),
               ("Q", "quadword"), ("BM", "byte masked"), ("HM", "halfword masked"),
               ("FM", "word masked"), ("GM", "doubleword masked"),
               ("BX", "byte extended"), ("HX", "halfword extended"),
               ("FX", "word extended")],
        power_range=(1.18, 1.46),
        latency_range=(2, 5),
        operands=VR_VR_VR,
    ),
    FamilySpec(
        name="system",
        unit="SYS",
        issue_class="SYS.control",
        count=60,
        roots=[
            ("LPSW", "Load PSW"), ("SSM", "Set system mask"),
            ("STOSM", "Store then or system mask"), ("STNSM", "Store then and system mask"),
            ("SPKA", "Set PSW key from address"), ("SAC", "Set address space control"),
            ("EPSW", "Extract PSW"), ("STAP", "Store CPU address"),
            ("STIDP", "Store CPU id"), ("PTLB", "Purge TLB"),
            ("ESEA", "Extract and set extended authority"),
            ("STFL", "Store facility list"),
        ],
        forms=[("", ""), ("E", "extended"), ("F", "fast"), ("X", "exit"), ("2", "variant 2")],
        power_range=(1.012, 1.15),
        latency_range=(8, 30),
        serializing=True,
        operands=NO_OPERANDS,
    ),
    FamilySpec(
        name="crypto",
        unit="COP",
        issue_class="COP.crypto",
        count=25,
        roots=[
            ("KM", "Cipher message"), ("KMC", "Cipher message with chaining"),
            ("KMF", "Cipher message with cipher feedback"),
            ("KMO", "Cipher message with output feedback"),
            ("KMCTR", "Cipher message with counter"),
            ("KIMD", "Compute intermediate message digest"),
            ("KLMD", "Compute last message digest"),
            ("KMAC", "Compute message authentication code"),
            ("PCC", "Perform cryptographic computation"),
            ("PRNO", "Perform random number operation"),
        ],
        forms=[("", ""), ("A", "AES"), ("D", "DEA")],
        power_range=(1.10, 1.30),
        latency_range=(12, 40),
        uops_range=(4, 10),
        group_alone=True,
        memory=True,
        operands=MEM_REG,
    ),
    FamilySpec(
        name="string",
        unit="LSU",
        issue_class="LSU.string",
        count=30,
        roots=[
            ("SRST", "Search string"), ("MVST", "Move string"),
            ("CLST", "Compare logical string"), ("CU12", "Convert UTF-8 to UTF-16"),
            ("CU21", "Convert UTF-16 to UTF-8"), ("CU41", "Convert UTF-32 to UTF-8"),
            ("CU14", "Convert UTF-8 to UTF-32"), ("TRE", "Translate extended"),
            ("TROO", "Translate one to one"), ("TRTO", "Translate two to one"),
        ],
        forms=[("", ""), ("U", "with argument"), ("2", "variant 2")],
        power_range=(1.08, 1.28),
        latency_range=(6, 20),
        uops_range=(3, 8),
        group_alone=True,
        memory=True,
        operands=MEM_REG,
    ),
]
