"""Plain-text rendering helpers shared by the experiment drivers.

Experiments print the same rows/series the paper's figures plot; these
helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ExperimentError
from ..units import format_freq

__all__ = ["render_table", "render_series", "format_freq"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table."""
    if not headers:
        raise ExperimentError("table needs headers")
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ExperimentError("row width does not match headers")
    widths = [
        max([len(h)] + [len(row[col]) for row in str_rows])
        for col, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    fmt: str = "{:.1f}",
) -> str:
    """Render one or more y-series against a shared x-axis as a table."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [x]
        for values in series.values():
            if len(values) != len(xs):
                raise ExperimentError("series length does not match x-axis")
            row.append(fmt.format(values[index]))
        rows.append(row)
    return render_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
