"""Multi-chip population studies.

"For the purpose of this work, various CP chips of zEC12 systems were
measured" and "experiments have been run on different processors
multiple times to check their reproducibility".  This module runs a
measurement across a seeded population of chip instances (each with its
own process-variation draw) and summarizes the spread — the
reproducibility view the paper's averaging relies on, and the
population data a shipping-voltage decision would be based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ExperimentError
from ..machine.chip import ChipConfig, Chip

__all__ = ["PopulationStatistic", "run_population_study"]


@dataclass
class PopulationStatistic:
    """Distribution of one scalar metric across a chip population."""

    name: str
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if self.values.size > 1 else 0.0

    @property
    def minimum(self) -> float:
        return float(self.values.min())

    @property
    def maximum(self) -> float:
        return float(self.values.max())

    @property
    def spread_pct(self) -> float:
        """Max-min spread relative to the mean, in percent."""
        if self.mean == 0:
            return 0.0
        return 100.0 * (self.maximum - self.minimum) / abs(self.mean)

    def summary(self) -> str:
        return (
            f"{self.name}: mean {self.mean:.2f}, σ {self.std:.2f}, "
            f"range [{self.minimum:.2f}, {self.maximum:.2f}] "
            f"({self.spread_pct:.1f}% spread)"
        )


def run_population_study(
    metric: Callable[[Chip], float],
    name: str,
    n_chips: int = 8,
    config: ChipConfig | None = None,
) -> PopulationStatistic:
    """Evaluate *metric* on *n_chips* chip instances.

    Each chip gets its own variation draw (``chip_id`` 0..n-1 under the
    shared seed); the metric receives a fully built :class:`Chip`.
    """
    if n_chips < 2:
        raise ExperimentError("a population needs at least two chips")
    config = config or ChipConfig()
    values = []
    for chip_id in range(n_chips):
        chip = Chip(config, chip_id=chip_id)
        values.append(float(metric(chip)))
    return PopulationStatistic(name=name, values=np.array(values))
