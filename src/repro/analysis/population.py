"""Multi-chip population studies.

"For the purpose of this work, various CP chips of zEC12 systems were
measured" and "experiments have been run on different processors
multiple times to check their reproducibility".  This module runs a
measurement across a seeded population of chip instances (each with its
own process-variation draw) and summarizes the spread — the
reproducibility view the paper's averaging relies on, and the
population data a shipping-voltage decision would be based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..engine.executor import Executor, make_executor
from ..engine.resilience import RetryPolicy
from ..errors import ExecutionError, ExperimentError
from ..machine.chip import ChipConfig, Chip
from ..obs import get_telemetry

__all__ = ["PopulationStatistic", "run_population_study"]


@dataclass
class PopulationStatistic:
    """Distribution of one scalar metric across a chip population."""

    name: str
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if self.values.size > 1 else 0.0

    @property
    def minimum(self) -> float:
        return float(self.values.min())

    @property
    def maximum(self) -> float:
        return float(self.values.max())

    @property
    def spread_pct(self) -> float:
        """Max-min spread relative to the mean, in percent."""
        if self.mean == 0:
            return 0.0
        return 100.0 * (self.maximum - self.minimum) / abs(self.mean)

    def summary(self) -> str:
        return (
            f"{self.name}: mean {self.mean:.2f}, σ {self.std:.2f}, "
            f"range [{self.minimum:.2f}, {self.maximum:.2f}] "
            f"({self.spread_pct:.1f}% spread)"
        )


@dataclass
class _ChipMetricTask:
    """Picklable per-chip evaluation unit: builds the chip instance for
    one ``chip_id`` and applies the metric (the metric must itself be
    picklable — a module-level function — for the process backend)."""

    metric: Callable[[Chip], float]
    config: ChipConfig

    def __call__(self, chip_id: int) -> float:
        return float(self.metric(Chip(self.config, chip_id=chip_id)))


def run_population_study(
    metric: Callable[[Chip], float],
    name: str,
    n_chips: int = 8,
    config: ChipConfig | None = None,
    executor: Executor | str | None = None,
    jobs: int | None = None,
    retry: RetryPolicy | None = None,
) -> PopulationStatistic:
    """Evaluate *metric* on *n_chips* chip instances.

    Each chip gets its own variation draw (``chip_id`` 0..n-1 under the
    shared seed); the metric receives a fully built :class:`Chip`.
    Chips are independent, so the evaluations fan out over the engine
    executor (``executor="process"``/``$REPRO_EXECUTOR``); results are
    identical to serial execution since every chip derives its own
    named random streams.  Per-chip evaluations execute under *retry*
    (env default): a flaky worker is retried and a broken pool degrades
    to serial, but a population with a permanently failing chip raises
    — a spread statistic over a partial population would silently lie.
    """
    if n_chips < 2:
        raise ExperimentError("a population needs at least two chips")
    config = config or ChipConfig()
    if isinstance(executor, (str, type(None))):
        executor = make_executor(executor, jobs)
    retry = retry or RetryPolicy.from_env()
    telemetry = get_telemetry()
    telemetry.increment("population.chips", n_chips)
    with telemetry.time("population.seconds"):
        outcomes = executor.map_guarded(
            _ChipMetricTask(metric, config),
            list(range(n_chips)),
            retry,
            labels=[f"{name}[chip {i}]" for i in range(n_chips)],
        )
    retries = sum(outcome.attempts - 1 for outcome in outcomes)
    if retries:
        telemetry.increment("engine.retries", retries)
    failures = [o.failure for o in outcomes if not o.ok]
    if failures:
        telemetry.increment("engine.failures", len(failures))
        raise ExecutionError(
            f"{len(failures)} of {n_chips} chip evaluations failed "
            f"permanently; first: {failures[0].describe()}",
            failures,
        ) from failures[0].exception
    return PopulationStatistic(
        name=name, values=np.array([o.value for o in outcomes])
    )
