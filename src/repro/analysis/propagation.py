"""Noise propagation traces (paper Figure 13b).

"We evaluate the effects of a large ΔI event on Core 0, while the other
cores are idling ... the noise in the cores 0, 2, 4 on one side of the
chip is larger than the noise in the cores on the opposite side ...
the noise from core 0 is transferred faster to cores 2 and 4."

The paper ran this on its in-house PDN design tool; here the same
engine that drives the measurements answers directly with exact step
responses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from ..machine.chip import Chip

__all__ = ["PropagationTrace", "propagation_traces"]


@dataclass
class PropagationTrace:
    """Per-core voltage response to a ΔI step on a source core.

    ``times`` is shared; ``volts_by_core[i]`` is core *i*'s deviation
    waveform (V).  ``peak_droop_by_core`` and ``time_to_10pct_by_core``
    quantify strength and speed of the propagation.
    """

    source_core: int
    delta_i: float
    times: np.ndarray
    volts_by_core: list[np.ndarray]
    peak_droop_by_core: list[float]
    time_to_10pct_by_core: list[float]


def propagation_traces(
    chip: Chip,
    source_core: int = 0,
    delta_i: float = 18.0,
    horizon: float = 3e-6,
    samples: int = 3000,
) -> PropagationTrace:
    """Inject a ΔI step at *source_core* and record every core."""
    if not 0 <= source_core < chip.n_cores:
        raise ExperimentError(f"no core {source_core}")
    if delta_i <= 0 or horizon <= 0:
        raise ExperimentError("delta_i and horizon must be positive")
    times = np.linspace(0.0, horizon, samples)
    port = chip.core_ports[source_core]
    responses = chip.modal.step_response(port, chip.core_nodes, times)
    volts = [delta_i * responses[i] for i in range(chip.n_cores)]

    peaks = [float(-wave.min()) for wave in volts]
    times_to_10pct: list[float] = []
    for core, wave in enumerate(volts):
        threshold = 0.10 * peaks[source_core]
        below = np.nonzero(-wave >= threshold)[0]
        times_to_10pct.append(float(times[below[0]]) if below.size else float("inf"))

    return PropagationTrace(
        source_core=source_core,
        delta_i=delta_i,
        times=times,
        volts_by_core=volts,
        peak_droop_by_core=peaks,
        time_to_10pct_by_core=times_to_10pct,
    )
