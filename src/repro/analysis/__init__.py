"""Noise characterization analyses built on the run engine.

* :mod:`.sensitivity` — sweep drivers for the four noise parameters the
  paper studies (stimulus frequency, alignment, ΔI, consecutive-event
  count);
* :mod:`.correlation` — inter-core noise correlation and cluster
  detection (paper Figure 13a);
* :mod:`.propagation` — step-injection propagation traces (Figure 13b);
* :mod:`.mapping` — noise-aware workload mapping enumeration and
  optimization (Figures 14/15, §VII-A);
* :mod:`.guardband` — utilization-based dynamic guard-banding model
  (§VII-B);
* :mod:`.margins` — customer-code worst-case margin extrapolation
  (the reference line of Figure 12);
* :mod:`.report` — plain-text table/series rendering shared by the
  experiment drivers.
"""

from .sensitivity import (
    FrequencySweepPoint,
    sweep_stimulus_frequency,
    sweep_misalignment,
    sweep_delta_i_mappings,
)
from .correlation import correlation_matrix, detect_clusters
from .propagation import propagation_traces
from .mapping import MappingStudy, enumerate_mappings, mapping_extremes
from .guardband import GuardbandPolicy, build_policy, guardband_savings
from .margins import customer_margin_line
from .report import render_series, render_table

__all__ = [
    "FrequencySweepPoint",
    "sweep_stimulus_frequency",
    "sweep_misalignment",
    "sweep_delta_i_mappings",
    "correlation_matrix",
    "detect_clusters",
    "propagation_traces",
    "MappingStudy",
    "enumerate_mappings",
    "mapping_extremes",
    "GuardbandPolicy",
    "build_policy",
    "guardband_savings",
    "customer_margin_line",
    "render_series",
    "render_table",
]
