"""Customer-code margin extrapolation (the reference line of Fig. 12).

"The extrapolation assumes: (a) ΔI events are not synchronized ...
and (b) the magnitude of the ΔI events generated on each core is
around ~80% of the maximum possible ΔI.  This is based on the fact
that, historically, maximum power stressmarks showed ~20% higher than
worst case regular user codes."
"""

from __future__ import annotations

from ..engine import SimulationSession
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram
from ..measure.runit import RUnitConfig
from ..measure.vmin import VminResult, plan_vmin_experiment, run_vmin_experiment
from ..plan.spec import RunPlan

__all__ = [
    "customer_program",
    "plan_customer_margin_line",
    "customer_margin_line",
]


def customer_program(
    max_stressmark: CurrentProgram, delta_i_fraction: float = 0.8
) -> CurrentProgram:
    """The worst-case *customer* workload derived from the maximum
    stressmark: ΔI scaled to ``delta_i_fraction``, synchronization
    removed (real programs do not align their power swings).  Shared
    by the executor and the Fig. 12 plan compiler so both address the
    identical run."""
    if not 0.0 < delta_i_fraction <= 1.0:
        raise ExperimentError("delta_i_fraction must be in (0, 1]")
    scaled_high = max_stressmark.i_low + delta_i_fraction * max_stressmark.delta_i
    return CurrentProgram(
        name=f"customer-{int(delta_i_fraction * 100)}pct",
        i_low=max_stressmark.i_low,
        i_high=scaled_high,
        freq_hz=max_stressmark.freq_hz,
        duty=max_stressmark.duty,
        rise_time=max_stressmark.rise_time,
        sync=None,
    )


def plan_customer_margin_line(
    chip: Chip,
    max_stressmark: CurrentProgram,
    delta_i_fraction: float = 0.8,
    options: RunOptions | None = None,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`customer_margin_line`."""
    customer = customer_program(max_stressmark, delta_i_fraction)
    return plan_vmin_experiment(chip, [customer] * 6, options, figure)


def customer_margin_line(
    chip: Chip,
    max_stressmark: CurrentProgram,
    delta_i_fraction: float = 0.8,
    options: RunOptions | None = None,
    runit: RUnitConfig | None = None,
    session: SimulationSession | None = None,
) -> VminResult:
    """Available margin for the worst-case *customer* code.

    Derives the customer workload with :func:`customer_program`, then
    runs the Vmin protocol on six copies.
    """
    customer = customer_program(max_stressmark, delta_i_fraction)
    return run_vmin_experiment(
        chip, [customer] * 6, runit_config=runit, options=options,
        session=session,
    )
