"""Customer-code margin extrapolation (the reference line of Fig. 12).

"The extrapolation assumes: (a) ΔI events are not synchronized ...
and (b) the magnitude of the ΔI events generated on each core is
around ~80% of the maximum possible ΔI.  This is based on the fact
that, historically, maximum power stressmarks showed ~20% higher than
worst case regular user codes."
"""

from __future__ import annotations

from ..engine import SimulationSession
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram
from ..measure.runit import RUnitConfig
from ..measure.vmin import VminResult, run_vmin_experiment

__all__ = ["customer_margin_line"]


def customer_margin_line(
    chip: Chip,
    max_stressmark: CurrentProgram,
    delta_i_fraction: float = 0.8,
    options: RunOptions | None = None,
    runit: RUnitConfig | None = None,
    session: SimulationSession | None = None,
) -> VminResult:
    """Available margin for the worst-case *customer* code.

    Derives the customer workload from the maximum stressmark by
    scaling its ΔI to ``delta_i_fraction`` and removing the
    synchronization (real programs do not align their power swings),
    then runs the Vmin protocol on six copies.
    """
    if not 0.0 < delta_i_fraction <= 1.0:
        raise ExperimentError("delta_i_fraction must be in (0, 1]")
    scaled_high = max_stressmark.i_low + delta_i_fraction * max_stressmark.delta_i
    customer = CurrentProgram(
        name=f"customer-{int(delta_i_fraction * 100)}pct",
        i_low=max_stressmark.i_low,
        i_high=scaled_high,
        freq_hz=max_stressmark.freq_hz,
        duty=max_stressmark.duty,
        rise_time=max_stressmark.rise_time,
        sync=None,
    )
    return run_vmin_experiment(
        chip, [customer] * 6, runit_config=runit, options=options,
        session=session,
    )
