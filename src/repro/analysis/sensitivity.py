"""Sweep drivers for the paper's §V sensitivity studies.

Each sweep is split into a *compiler* and an *executor*: the private
``_compile_*`` helper enumerates the exact (mappings, tags) workload,
the public ``plan_*`` function wraps that enumeration into a
declarative :class:`~repro.plan.spec.RunPlan` (what the campaign
planner dedups and shards), and the public ``sweep_*`` function
executes the same enumeration through a session and post-processes the
results.  Compiler and executor share one code path, so a compiled
plan's fingerprints are byte-identical to what execution computes —
the property that makes pre-execution dedup counts exact.

Partial sweeps: every driver accepts ``on_failure`` (forwarded to the
session it builds).  Under ``"collect"`` a shmoo-style campaign keeps
the points that worked: runs that exhausted their retry budget are
dropped from the returned dataset instead of aborting the sweep, each
drop is counted (``engine.points_dropped``) and written to the event
log (``point.dropped``), and the experiment layer marks the dropped
count in the exported results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.generator import StressmarkGenerator
from ..core.sync import offset_assignments, spread_offsets
from ..engine import SimulationSession
from ..engine.resilience import RetryPolicy, RunFailure
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram, idle_program
from ..plan.spec import RunPlan

__all__ = [
    "FrequencySweepPoint",
    "default_frequency_grid",
    "plan_stimulus_frequency",
    "sweep_stimulus_frequency",
    "plan_misalignment",
    "sweep_misalignment",
    "plan_delta_i_mappings",
    "sweep_delta_i_mappings",
    "DeltaIMappingPoint",
]


def _drop_failed_points(
    results: list, tags: list, sweep: str, session: SimulationSession
) -> list[int]:
    """Indices of successful results; failed points (RunFailure records
    returned under ``on_failure="collect"``) are accounted and traced.
    """
    kept: list[int] = []
    for index, result in enumerate(results):
        if isinstance(result, RunFailure):
            session.telemetry.increment("engine.points_dropped")
            session.telemetry.emit(
                "point.dropped",
                sweep=sweep,
                run=tags[index],
                error=f"{result.error_type}: {result.message}",
            )
        else:
            kept.append(index)
    return kept


@dataclass
class FrequencySweepPoint:
    """One stimulus frequency of a sweep: requested/achieved frequency
    and the per-core noise readings."""

    freq_hz: float
    achieved_freq_hz: float
    p2p_by_core: list[float]

    @property
    def max_p2p(self) -> float:
        return max(self.p2p_by_core)


def default_frequency_grid(
    f_min: float = 3e3, f_max: float = 1e8, points_per_decade: int = 6
) -> list[float]:
    """Log-spaced stimulus frequency grid covering both resonant bands."""
    if f_min <= 0 or f_max <= f_min:
        raise ExperimentError("bad frequency grid bounds")
    decades = np.log10(f_max / f_min)
    n = max(int(round(decades * points_per_decade)) + 1, 2)
    return [float(f) for f in np.logspace(np.log10(f_min), np.log10(f_max), n)]


def _compile_fsweep(
    generator: StressmarkGenerator,
    frequencies: list[float],
    synchronize: bool,
    n_events: int,
    n_cores: int,
):
    """The exact (mappings, tags, marks) enumeration of the frequency
    sweep — shared by the plan compiler and the executor."""
    marks = [
        generator.max_didt(
            freq_hz=freq, synchronize=synchronize, n_events=n_events
        )
        for freq in frequencies
    ]
    mappings = [[mark.current_program()] * n_cores for mark in marks]
    tags: list[object] = [
        ("fsweep", synchronize, freq) for freq in frequencies
    ]
    return mappings, tags, marks


def plan_stimulus_frequency(
    generator: StressmarkGenerator,
    chip: Chip,
    frequencies: list[float],
    synchronize: bool,
    options: RunOptions | None = None,
    n_events: int = 1000,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`sweep_stimulus_frequency`: the
    runs the sweep *would* execute, without executing anything."""
    mappings, tags, _ = _compile_fsweep(
        generator, frequencies, synchronize, n_events, chip.n_cores
    )
    return RunPlan.from_batch(
        chip, mappings, tags, options or RunOptions(), figure
    )


def sweep_stimulus_frequency(
    generator: StressmarkGenerator,
    chip: Chip,
    frequencies: list[float],
    synchronize: bool,
    options: RunOptions | None = None,
    n_events: int = 1000,
    session: SimulationSession | None = None,
    retry: RetryPolicy | None = None,
    on_failure: str | None = None,
) -> list[FrequencySweepPoint]:
    """Run one copy of the max dI/dt stressmark per core at each
    stimulus frequency (paper Figures 7a and 9).

    All frequency points are independent, so they execute as one
    :meth:`~repro.engine.SimulationSession.run_many` batch — cached
    points replay, the rest fan out over the session executor.  With
    ``on_failure="collect"`` the sweep keeps the frequencies that
    solved and drops (and traces) the rest.
    """
    session = session or SimulationSession(
        chip, options, retry=retry, on_failure=on_failure or "raise"
    )
    mappings, tags, marks = _compile_fsweep(
        generator, frequencies, synchronize, n_events, chip.n_cores
    )
    results = session.run_many(mappings, tags)
    kept = _drop_failed_points(results, tags, "fsweep", session)
    return [
        FrequencySweepPoint(
            freq_hz=frequencies[i],
            achieved_freq_hz=marks[i].achieved_freq_hz,
            p2p_by_core=results[i].p2p_by_core,
        )
        for i in kept
    ]


def _compile_missweep(
    generator: StressmarkGenerator,
    max_misalignments: list[float],
    freq_hz: float,
    assignments_sample: int,
    n_events: int,
    n_cores: int,
):
    """The exact (mappings, tags, batches) enumeration of the
    misalignment sweep — shared by the plan compiler and the executor.
    """
    mappings: list[list[CurrentProgram]] = []
    tags: list[object] = []
    batches: list[tuple[float, int]] = []  # (misalignment, n_assignments)
    for max_mis in max_misalignments:
        offsets = spread_offsets(n_cores, max_mis)
        marks = {
            offset: generator.max_didt(
                freq_hz=freq_hz,
                synchronize=True,
                misalignment=offset,
                n_events=n_events,
            ).current_program()
            for offset in set(offsets)
        }
        count = 0
        for assignment in offset_assignments(
            offsets, sample=assignments_sample, seed=generator.seed
        ):
            mappings.append([marks[offset] for offset in assignment])
            tags.append(("missweep", max_mis, count))
            count += 1
        batches.append((max_mis, count))
    return mappings, tags, batches


def plan_misalignment(
    generator: StressmarkGenerator,
    chip: Chip,
    max_misalignments: list[float],
    freq_hz: float = 2.6e6,
    options: RunOptions | None = None,
    assignments_sample: int = 6,
    n_events: int = 1000,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`sweep_misalignment`."""
    mappings, tags, _ = _compile_missweep(
        generator, max_misalignments, freq_hz, assignments_sample, n_events,
        chip.n_cores,
    )
    return RunPlan.from_batch(
        chip, mappings, tags, options or RunOptions(), figure
    )


def sweep_misalignment(
    generator: StressmarkGenerator,
    chip: Chip,
    max_misalignments: list[float],
    freq_hz: float = 2.6e6,
    options: RunOptions | None = None,
    assignments_sample: int = 6,
    n_events: int = 1000,
    session: SimulationSession | None = None,
    retry: RetryPolicy | None = None,
    on_failure: str | None = None,
) -> dict[float, list[float]]:
    """Noise versus maximum allowed misalignment (paper Figure 10).

    For each maximum misalignment, stressmarks are spread evenly over
    the 62.5 ns-gridded offsets and every sampled offset→core assignment
    is executed; returns, per misalignment, the per-core noise averaged
    over assignments.  The assignments of every misalignment level form
    one independent batch executed through the session.  With
    ``on_failure="collect"`` a misalignment level averages over the
    assignments that solved (a level whose every assignment failed is
    dropped entirely).
    """
    session = session or SimulationSession(
        chip, options, retry=retry, on_failure=on_failure or "raise"
    )
    mappings, tags, batches = _compile_missweep(
        generator, max_misalignments, freq_hz, assignments_sample, n_events,
        chip.n_cores,
    )
    run_results = session.run_many(mappings, tags)
    kept = set(_drop_failed_points(run_results, tags, "missweep", session))
    results: dict[float, list[float]] = {}
    cursor = 0
    for max_mis, count in batches:
        accumulator = np.zeros(chip.n_cores)
        solved = 0
        for index in range(cursor, cursor + count):
            if index in kept:
                accumulator += np.array(run_results[index].p2p_by_core)
                solved += 1
        cursor += count
        if solved:
            results[max_mis] = list(accumulator / solved)
    return results


@dataclass
class DeltaIMappingPoint:
    """One workload mapping of the ΔI study (paper Figure 11).

    ``placement[core]`` is the workload level on that core (``"max"``,
    ``"medium"`` or ``"idle"``); ``distribution`` is the (#max, #medium)
    pair; ``delta_i_pct`` the percentage of the maximum chip ΔI this
    mapping can generate.
    """

    mapping_id: int
    placement: tuple[str, ...]
    distribution: tuple[int, int]
    delta_i_pct: float
    p2p_by_core: list[float]
    active_cores: int

    @property
    def max_p2p(self) -> float:
        return max(self.p2p_by_core)


def _distinct_placements(
    n_max: int, n_med: int, cap: int, seed: int, n_cores: int
) -> list[tuple[str, ...]]:
    """Distinct workload placements of a (max, medium) distribution on
    the chip's cores; capped by a deterministic sample when there are
    many."""
    import itertools

    base = ["max"] * n_max + ["medium"] * n_med + ["idle"] * (
        n_cores - n_max - n_med
    )
    distinct = sorted(set(itertools.permutations(base)))
    if len(distinct) <= cap:
        return distinct
    rng = np.random.default_rng(seed)
    indices = sorted(rng.choice(len(distinct), size=cap, replace=False))
    return [distinct[int(i)] for i in indices]


def _compile_disweep(
    generator: StressmarkGenerator,
    freq_hz: float,
    workload_filter: Callable[[tuple[int, int]], bool] | None,
    placements_per_distribution: int,
    n_cores: int,
):
    """The exact (mappings, tags, planned, full_delta) enumeration of
    the ΔI mapping dataset — shared by the plan compiler and the
    executor (and, via the figure tags, by Figures 11a/11b/13a)."""
    max_prog = generator.max_didt(
        freq_hz=freq_hz, synchronize=True
    ).current_program()
    med_prog = generator.medium_didt(
        freq_hz=freq_hz, synchronize=True
    ).current_program()
    idle = idle_program(generator.target.idle_current)
    by_level = {"max": max_prog, "medium": med_prog, "idle": idle}
    full_delta = n_cores * max_prog.delta_i

    planned: list[tuple[tuple[str, ...], tuple[int, int], float]] = []
    for n_max in range(0, n_cores + 1):
        for n_med in range(0, n_cores + 1 - n_max):
            distribution = (n_max, n_med)
            if workload_filter is not None and not workload_filter(distribution):
                continue
            placements = _distinct_placements(
                n_max, n_med, placements_per_distribution, generator.seed,
                n_cores,
            )
            delta = n_max * max_prog.delta_i + n_med * med_prog.delta_i
            for placement in placements:
                planned.append((placement, distribution, delta))

    mappings = [
        [by_level[level] for level in placement]
        for placement, _, _ in planned
    ]
    tags: list[object] = [("disweep", placement) for placement, _, _ in planned]
    return mappings, tags, planned, full_delta


def plan_delta_i_mappings(
    generator: StressmarkGenerator,
    chip: Chip,
    freq_hz: float = 2.6e6,
    options: RunOptions | None = None,
    workload_filter: Callable[[tuple[int, int]], bool] | None = None,
    placements_per_distribution: int = 4,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`sweep_delta_i_mappings`."""
    mappings, tags, _, _ = _compile_disweep(
        generator, freq_hz, workload_filter, placements_per_distribution,
        chip.n_cores,
    )
    return RunPlan.from_batch(
        chip, mappings, tags, options or RunOptions(), figure
    )


def sweep_delta_i_mappings(
    generator: StressmarkGenerator,
    chip: Chip,
    freq_hz: float = 2.6e6,
    options: RunOptions | None = None,
    workload_filter: Callable[[tuple[int, int]], bool] | None = None,
    placements_per_distribution: int = 4,
    session: SimulationSession | None = None,
    retry: RetryPolicy | None = None,
    on_failure: str | None = None,
) -> list[DeltaIMappingPoint]:
    """Run workload→core mappings of {idle, medium, max} dI/dt.

    Following §V-D: the medium stressmark generates half the ΔI of the
    maximum one and everything is synchronized to maximize noise.  For
    each (#max, #medium) distribution, up to
    ``placements_per_distribution`` distinct core placements are
    executed (the paper runs all of them; the deterministic sample keeps
    the dataset rich enough for the correlation and mapping studies at a
    fraction of the runs).  The whole dataset executes as one session
    batch; Figures 11a, 11b and 13a address the identical batch and so
    share its cached runs.  With ``on_failure="collect"`` the dataset
    keeps the mappings that solved — a fault-degraded shmoo campaign
    still yields its partial scatter.
    """
    session = session or SimulationSession(
        chip, options, retry=retry, on_failure=on_failure or "raise"
    )
    mappings, tags, planned, full_delta = _compile_disweep(
        generator, freq_hz, workload_filter, placements_per_distribution,
        chip.n_cores,
    )
    results = session.run_many(mappings, tags)
    kept = _drop_failed_points(results, tags, "disweep", session)
    return [
        DeltaIMappingPoint(
            mapping_id=mapping_id,
            placement=planned[index][0],
            distribution=planned[index][1],
            delta_i_pct=100.0 * planned[index][2] / full_delta,
            p2p_by_core=results[index].p2p_by_core,
            active_cores=sum(planned[index][1]),
        )
        for mapping_id, index in enumerate(kept)
    ]
