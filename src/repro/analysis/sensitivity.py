"""Sweep drivers for the paper's §V sensitivity studies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.generator import StressmarkGenerator
from ..core.sync import offset_assignments, spread_offsets
from ..engine import SimulationSession
from ..engine.resilience import RetryPolicy
from ..errors import ExperimentError
from ..machine.chip import N_CORES, Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram, idle_program

__all__ = [
    "FrequencySweepPoint",
    "default_frequency_grid",
    "sweep_stimulus_frequency",
    "sweep_misalignment",
    "sweep_delta_i_mappings",
    "DeltaIMappingPoint",
]


@dataclass
class FrequencySweepPoint:
    """One stimulus frequency of a sweep: requested/achieved frequency
    and the per-core noise readings."""

    freq_hz: float
    achieved_freq_hz: float
    p2p_by_core: list[float]

    @property
    def max_p2p(self) -> float:
        return max(self.p2p_by_core)


def default_frequency_grid(
    f_min: float = 3e3, f_max: float = 1e8, points_per_decade: int = 6
) -> list[float]:
    """Log-spaced stimulus frequency grid covering both resonant bands."""
    if f_min <= 0 or f_max <= f_min:
        raise ExperimentError("bad frequency grid bounds")
    decades = np.log10(f_max / f_min)
    n = max(int(round(decades * points_per_decade)) + 1, 2)
    return [float(f) for f in np.logspace(np.log10(f_min), np.log10(f_max), n)]


def sweep_stimulus_frequency(
    generator: StressmarkGenerator,
    chip: Chip,
    frequencies: list[float],
    synchronize: bool,
    options: RunOptions | None = None,
    n_events: int = 1000,
    session: SimulationSession | None = None,
    retry: RetryPolicy | None = None,
) -> list[FrequencySweepPoint]:
    """Run one copy of the max dI/dt stressmark per core at each
    stimulus frequency (paper Figures 7a and 9).

    All frequency points are independent, so they execute as one
    :meth:`~repro.engine.SimulationSession.run_many` batch — cached
    points replay, the rest fan out over the session executor.
    """
    session = session or SimulationSession(chip, options, retry=retry)
    marks = [
        generator.max_didt(
            freq_hz=freq, synchronize=synchronize, n_events=n_events
        )
        for freq in frequencies
    ]
    results = session.run_many(
        [[mark.current_program()] * N_CORES for mark in marks],
        tags=[("fsweep", synchronize, freq) for freq in frequencies],
    )
    return [
        FrequencySweepPoint(
            freq_hz=freq,
            achieved_freq_hz=mark.achieved_freq_hz,
            p2p_by_core=result.p2p_by_core,
        )
        for freq, mark, result in zip(frequencies, marks, results)
    ]


def sweep_misalignment(
    generator: StressmarkGenerator,
    chip: Chip,
    max_misalignments: list[float],
    freq_hz: float = 2.6e6,
    options: RunOptions | None = None,
    assignments_sample: int = 6,
    n_events: int = 1000,
    session: SimulationSession | None = None,
    retry: RetryPolicy | None = None,
) -> dict[float, list[float]]:
    """Noise versus maximum allowed misalignment (paper Figure 10).

    For each maximum misalignment, stressmarks are spread evenly over
    the 62.5 ns-gridded offsets and every sampled offset→core assignment
    is executed; returns, per misalignment, the per-core noise averaged
    over assignments.  The assignments of every misalignment level form
    one independent batch executed through the session.
    """
    session = session or SimulationSession(chip, options, retry=retry)
    mappings: list[list[CurrentProgram]] = []
    tags: list[object] = []
    batches: list[tuple[float, int]] = []  # (misalignment, n_assignments)
    for max_mis in max_misalignments:
        offsets = spread_offsets(N_CORES, max_mis)
        marks = {
            offset: generator.max_didt(
                freq_hz=freq_hz,
                synchronize=True,
                misalignment=offset,
                n_events=n_events,
            ).current_program()
            for offset in set(offsets)
        }
        count = 0
        for assignment in offset_assignments(
            offsets, sample=assignments_sample, seed=generator.seed
        ):
            mappings.append([marks[offset] for offset in assignment])
            tags.append(("missweep", max_mis, count))
            count += 1
        batches.append((max_mis, count))

    run_results = session.run_many(mappings, tags)
    results: dict[float, list[float]] = {}
    cursor = 0
    for max_mis, count in batches:
        accumulator = np.zeros(N_CORES)
        for result in run_results[cursor : cursor + count]:
            accumulator += np.array(result.p2p_by_core)
        cursor += count
        results[max_mis] = list(accumulator / count)
    return results


@dataclass
class DeltaIMappingPoint:
    """One workload mapping of the ΔI study (paper Figure 11).

    ``placement[core]`` is the workload level on that core (``"max"``,
    ``"medium"`` or ``"idle"``); ``distribution`` is the (#max, #medium)
    pair; ``delta_i_pct`` the percentage of the maximum chip ΔI this
    mapping can generate.
    """

    mapping_id: int
    placement: tuple[str, ...]
    distribution: tuple[int, int]
    delta_i_pct: float
    p2p_by_core: list[float]
    active_cores: int

    @property
    def max_p2p(self) -> float:
        return max(self.p2p_by_core)


def _distinct_placements(
    n_max: int, n_med: int, cap: int, seed: int
) -> list[tuple[str, ...]]:
    """Distinct workload placements of a (max, medium) distribution on
    the six cores; capped by a deterministic sample when there are many."""
    import itertools

    base = ["max"] * n_max + ["medium"] * n_med + ["idle"] * (
        N_CORES - n_max - n_med
    )
    distinct = sorted(set(itertools.permutations(base)))
    if len(distinct) <= cap:
        return distinct
    rng = np.random.default_rng(seed)
    indices = sorted(rng.choice(len(distinct), size=cap, replace=False))
    return [distinct[int(i)] for i in indices]


def sweep_delta_i_mappings(
    generator: StressmarkGenerator,
    chip: Chip,
    freq_hz: float = 2.6e6,
    options: RunOptions | None = None,
    workload_filter: Callable[[tuple[int, int]], bool] | None = None,
    placements_per_distribution: int = 4,
    session: SimulationSession | None = None,
    retry: RetryPolicy | None = None,
) -> list[DeltaIMappingPoint]:
    """Run workload→core mappings of {idle, medium, max} dI/dt.

    Following §V-D: the medium stressmark generates half the ΔI of the
    maximum one and everything is synchronized to maximize noise.  For
    each (#max, #medium) distribution, up to
    ``placements_per_distribution`` distinct core placements are
    executed (the paper runs all of them; the deterministic sample keeps
    the dataset rich enough for the correlation and mapping studies at a
    fraction of the runs).  The whole dataset executes as one session
    batch; Figures 11a, 11b and 13a address the identical batch and so
    share its cached runs.
    """
    session = session or SimulationSession(chip, options, retry=retry)
    max_prog = generator.max_didt(freq_hz=freq_hz, synchronize=True).current_program()
    med_prog = generator.medium_didt(
        freq_hz=freq_hz, synchronize=True
    ).current_program()
    idle = idle_program(generator.target.idle_current)
    by_level = {"max": max_prog, "medium": med_prog, "idle": idle}
    full_delta = N_CORES * max_prog.delta_i

    planned: list[tuple[tuple[str, ...], tuple[int, int], float]] = []
    for n_max in range(0, N_CORES + 1):
        for n_med in range(0, N_CORES + 1 - n_max):
            distribution = (n_max, n_med)
            if workload_filter is not None and not workload_filter(distribution):
                continue
            placements = _distinct_placements(
                n_max, n_med, placements_per_distribution, generator.seed
            )
            delta = n_max * max_prog.delta_i + n_med * med_prog.delta_i
            for placement in placements:
                planned.append((placement, distribution, delta))

    results = session.run_many(
        [[by_level[level] for level in placement] for placement, _, _ in planned],
        tags=[("disweep", placement) for placement, _, _ in planned],
    )
    return [
        DeltaIMappingPoint(
            mapping_id=mapping_id,
            placement=placement,
            distribution=distribution,
            delta_i_pct=100.0 * delta / full_delta,
            p2p_by_core=result.p2p_by_core,
            active_cores=sum(distribution),
        )
        for mapping_id, ((placement, distribution, delta), result) in enumerate(
            zip(planned, results)
        )
    ]
