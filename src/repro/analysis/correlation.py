"""Inter-core noise correlation and cluster detection (Figure 13a).

"We compute the correlation factor between the noise seen in all the
possible mappings for each pair of cores ... we detect two clusters of
cores: cores 0,2,4 and cores 1,3,5."
"""

from __future__ import annotations

import numpy as np

from ..errors import ExperimentError
from .sensitivity import DeltaIMappingPoint

__all__ = ["correlation_matrix", "detect_clusters"]


def correlation_matrix(points: list[DeltaIMappingPoint]) -> np.ndarray:
    """Pearson correlation of per-core noise across workload mappings.

    Each mapping contributes one observation of the six per-core noise
    readings; the matrix is 6×6 and symmetric with a unit diagonal.
    """
    if len(points) < 3:
        raise ExperimentError("need at least three mappings for correlations")
    data = np.array([point.p2p_by_core for point in points])  # runs × cores
    # Discard all-idle style rows with no spread to keep Pearson defined.
    if np.allclose(data.std(axis=0), 0.0):
        raise ExperimentError("noise readings show no variance across mappings")
    return np.corrcoef(data.T)


def detect_clusters(matrix: np.ndarray) -> list[list[int]]:
    """Split the cores into two clusters by correlation affinity.

    Greedy agglomeration: seed the two clusters with the pair of cores
    whose correlation is *lowest* (they must be in different clusters),
    then assign every other core to the seed it correlates with more.
    Returns the two clusters, each sorted, lowest-core-first.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n) or n < 2:
        raise ExperimentError("correlation matrix must be square (n >= 2)")
    off_diag = matrix.copy()
    np.fill_diagonal(off_diag, np.inf)
    seed_a, seed_b = np.unravel_index(np.argmin(off_diag), off_diag.shape)
    clusters: dict[int, list[int]] = {seed_a: [seed_a], seed_b: [seed_b]}
    for core in range(n):
        if core in (seed_a, seed_b):
            continue
        home = seed_a if matrix[core, seed_a] >= matrix[core, seed_b] else seed_b
        clusters[home].append(core)
    result = [
        sorted(int(core) for core in clusters[seed_a]),
        sorted(int(core) for core in clusters[seed_b]),
    ]
    result.sort(key=lambda cluster: cluster[0])
    return result
