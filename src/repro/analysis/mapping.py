"""Noise-aware workload mapping (paper Figures 14/15, §VII-A).

The worst-case noise of running k identical stressmarks depends on
*which* cores they land on: packing them into one noise cluster is
worse than spreading them across the clusters.  A noise-aware mapper
can therefore shave worst-case noise — and with it, guard-band — by
choosing placements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..engine import SimulationSession
from ..errors import ExperimentError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram
from ..plan.spec import RunPlan

__all__ = [
    "MappingOutcome",
    "MappingStudy",
    "plan_enumerate_mappings",
    "enumerate_mappings",
    "plan_mapping_extremes",
    "mapping_extremes",
]


@dataclass
class MappingOutcome:
    """One placement of k workloads and its worst-case noise."""

    cores: tuple[int, ...]
    p2p_by_core: list[float]

    @property
    def worst_noise(self) -> float:
        return max(self.p2p_by_core)

    @property
    def worst_core(self) -> int:
        return self.p2p_by_core.index(max(self.p2p_by_core))


@dataclass
class MappingStudy:
    """All placements of k identical workloads on the chip."""

    n_workloads: int
    outcomes: list[MappingOutcome]

    @property
    def best(self) -> MappingOutcome:
        """The placement minimizing worst-case noise (noise-aware pick)."""
        return min(self.outcomes, key=lambda o: (o.worst_noise, o.cores))

    @property
    def worst(self) -> MappingOutcome:
        """The placement maximizing worst-case noise (adversarial pick)."""
        return max(self.outcomes, key=lambda o: (o.worst_noise, o.cores))

    @property
    def reduction_opportunity(self) -> float:
        """%p2p points a noise-aware mapper saves over the worst pick."""
        return self.worst.worst_noise - self.best.worst_noise


def _compile_placements(
    chip: Chip,
    program: CurrentProgram,
    n_workloads: int,
    idle_current: float | None,
):
    """The exact (mappings, tags, placements) enumeration of the
    C(n, k) placement study — shared by the plan compiler and the
    executor."""
    n_cores = chip.n_cores
    if not 0 <= n_workloads <= n_cores:
        raise ExperimentError(
            f"cannot place {n_workloads} workloads on {n_cores} cores"
        )
    if idle_current is None:
        idle_current = chip.config.core.static_power_w / chip.vnom
    from ..machine.workload import idle_program

    idle = idle_program(idle_current)
    placements = list(itertools.combinations(range(n_cores), n_workloads))
    mappings = [
        [program if i in cores else idle for i in range(n_cores)]
        for cores in placements
    ]
    tags: list[object] = [("mapping", cores) for cores in placements]
    return mappings, tags, placements


def plan_enumerate_mappings(
    chip: Chip,
    program: CurrentProgram,
    n_workloads: int,
    options: RunOptions | None = None,
    idle_current: float | None = None,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`enumerate_mappings`."""
    mappings, tags, _ = _compile_placements(
        chip, program, n_workloads, idle_current
    )
    return RunPlan.from_batch(
        chip, mappings, tags, options or RunOptions(), figure
    )


def enumerate_mappings(
    chip: Chip,
    program: CurrentProgram,
    n_workloads: int,
    options: RunOptions | None = None,
    idle_current: float | None = None,
    session: SimulationSession | None = None,
) -> MappingStudy:
    """Run every placement of *n_workloads* copies of *program*.

    ``idle_current`` feeds the unoccupied cores; defaults to the chip's
    static current.  The C(6, k) placements execute as one session
    batch (cached placements replay; misses fan out over the session
    executor — ``--jobs N`` on the Fig. 14/15 sweeps lands here).
    """
    session = session or SimulationSession(chip, options)
    mappings, tags, placements = _compile_placements(
        chip, program, n_workloads, idle_current
    )
    results = session.run_many(mappings, tags=tags)
    outcomes = [
        MappingOutcome(cores=cores, p2p_by_core=result.p2p_by_core)
        for cores, result in zip(placements, results)
    ]
    return MappingStudy(n_workloads=n_workloads, outcomes=outcomes)


def plan_mapping_extremes(
    chip: Chip,
    program: CurrentProgram,
    workload_counts: list[int],
    options: RunOptions | None = None,
    figure: str | None = None,
) -> RunPlan:
    """The declarative form of :func:`mapping_extremes` (Figure 15)."""
    plan = RunPlan.for_chip(chip)
    for k in workload_counts:
        plan.extend(
            plan_enumerate_mappings(chip, program, k, options, figure=figure)
        )
    return plan


def mapping_extremes(
    chip: Chip,
    program: CurrentProgram,
    workload_counts: list[int],
    options: RunOptions | None = None,
    session: SimulationSession | None = None,
) -> dict[int, MappingStudy]:
    """Best/worst mapping study per workload count (Figure 15)."""
    session = session or SimulationSession(chip, options)
    return {
        k: enumerate_mappings(chip, program, k, options, session=session)
        for k in workload_counts
    }
