"""Utilization-based dynamic guard-banding (paper §VII-B).

"The amount of ΔI that can be generated is bounded by the number of
cores that are executing a workload.  If the hardware ... is aware of
the number of cores that can execute a workload, then it could safely
adapt the available margin accordingly."

The policy: for each possible active-core count k, determine the
worst-case noise any workload on k cores can generate (from the ΔI
study's regions), convert it to a required voltage margin, and run the
supply at nominal minus the *unused* part of the static worst-case
margin whenever fewer cores are active.  Energy savings follow from
P ∝ V² at a given utilization profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError, GuardbandProfileError
from .sensitivity import DeltaIMappingPoint

__all__ = ["GuardbandPolicy", "guardband_savings"]


@dataclass
class GuardbandPolicy:
    """Margin schedule indexed by active-core count.

    ``margin_by_active_cores[k]`` is the voltage margin (fraction of
    nominal) that must be reserved when at most *k* cores may execute.
    """

    margin_by_active_cores: dict[int, float]
    static_margin: float

    def margin_for(self, active_cores: int) -> float:
        if active_cores not in self.margin_by_active_cores:
            raise ExperimentError(f"no margin entry for {active_cores} active cores")
        return self.margin_by_active_cores[active_cores]

    def voltage_scale(self, active_cores: int) -> float:
        """Supply scale vs. the statically guard-banded voltage.

        The static design reserves ``static_margin``; with k active
        cores only ``margin_for(k)`` is needed, so the supply can drop
        by the difference.
        """
        return 1.0 - (self.static_margin - self.margin_for(active_cores))

    def power_scale(self, active_cores: int) -> float:
        """Dynamic power scale (V² law) at *active_cores*."""
        return self.voltage_scale(active_cores) ** 2


def build_policy(
    points: list[DeltaIMappingPoint],
    volts_per_p2p_point: float = 0.0016,
    headroom: float = 0.005,
) -> GuardbandPolicy:
    """Derive the margin schedule from the ΔI mapping study.

    ``volts_per_p2p_point`` converts worst-case %p2p readings into
    required margin (the skitter calibration line); ``headroom`` adds a
    fixed safety term.
    """
    if not points:
        raise ExperimentError("need ΔI study data to build a policy")
    worst_by_count: dict[int, float] = {}
    for point in points:
        count = point.active_cores
        worst_by_count[count] = max(worst_by_count.get(count, 0.0), point.max_p2p)
    max_cores = max(worst_by_count)
    # Margin must be monotone in the core count: a schedule entry covers
    # "up to k cores active".
    margins: dict[int, float] = {}
    running = 0.0
    for count in range(0, max_cores + 1):
        noise = worst_by_count.get(count, 0.0)
        running = max(running, noise * volts_per_p2p_point + headroom)
        margins[count] = running
    return GuardbandPolicy(
        margin_by_active_cores=margins, static_margin=margins[max_cores]
    )


def guardband_savings(
    policy: GuardbandPolicy, utilization_profile: dict[int, float]
) -> float:
    """Average dynamic-power saving of the policy (fraction).

    ``utilization_profile[k]`` is the fraction of time at most *k* cores
    are active; fractions must sum to 1.  A profile that cannot support
    the average — empty, a single degenerate bucket, or negative
    occupancy — raises :class:`~repro.errors.GuardbandProfileError`
    rather than returning a meaningless number.
    """
    if not utilization_profile:
        raise GuardbandProfileError(
            "utilization profile is empty: savings are an average over "
            "occupancy buckets, and there is nothing to average"
        )
    if len(utilization_profile) < 2:
        (cores,) = utilization_profile
        raise GuardbandProfileError(
            f"utilization profile has a single bucket ({cores} active "
            f"cores): a dynamic guard band needs utilization variation "
            f"to save anything — supply at least two occupancy levels"
        )
    negative = {k: v for k, v in utilization_profile.items() if v < 0}
    if negative:
        raise GuardbandProfileError(
            f"utilization profile has negative occupancy fractions: "
            f"{negative}"
        )
    total = sum(utilization_profile.values())
    if abs(total - 1.0) > 1e-6:
        raise ExperimentError("utilization profile fractions must sum to 1")
    baseline = 1.0
    scaled = sum(
        share * policy.power_scale(cores)
        for cores, share in utilization_profile.items()
    )
    return baseline - scaled
