"""The observe → actuate loop binding a controller to a stepping
session, plus the summary metrics every driving path reports.

The loop owns the one-window actuation latency: the controller's
answer to window *k* is held and applied just before window *k + 1* is
solved.  An optional R-Unit checks every window's observed worst
instantaneous voltage (bias and simultaneous-switching deepening
included), so undervolting controllers accumulate *violations* exactly
the way the Vmin protocol detects failures.

Summaries are plain JSON-safe dicts — identical whether the loop ran
in-process, under the CLI verb, inside a plan-compiled experiment or
behind the serve ``session.*`` verbs, which is what the three-path
acceptance check compares.
"""

from __future__ import annotations

from ..engine.stepping import SteppingSession, WindowObservation
from ..measure.runit import RUnit
from ..obs import Telemetry, get_telemetry
from .api import Controller

__all__ = ["ClosedLoopRun", "loop_summary"]


def loop_summary(
    observations: list[WindowObservation],
    vnom: float,
    *,
    violations: int = 0,
    violation_windows: list[int] | None = None,
) -> dict:
    """Control-quality metrics of one completed loop.

    ``droop_v`` is the deepest observed excursion below nominal
    (bias and SSN deepening included), ``overshoot_v`` the highest
    excursion above it, and ``settling_window`` the index of the last
    bias change — after it the supply command is constant, the
    classic settling measure of a step response.
    """
    if not observations:
        return {
            "windows": 0,
            "droop_v": 0.0,
            "overshoot_v": 0.0,
            "settling_window": 0,
            "transitions": 0,
            "mean_bias": 1.0,
            "final_bias": 1.0,
            "min_bias": 1.0,
            "droop_events": 0,
            "violations": int(violations),
            "violation_windows": list(violation_windows or []),
        }
    biases = [obs.supply_bias for obs in observations]
    transitions = 0
    settling = 0
    previous = 1.0
    for index, bias in enumerate(biases):
        if bias != previous:
            transitions += 1
            settling = index
        previous = bias
    worst = min(obs.worst_vmin for obs in observations)
    highest = max(max(obs.v_max) for obs in observations)
    return {
        "windows": len(observations),
        "droop_v": float(max(vnom - worst, 0.0)),
        "overshoot_v": float(max(highest - vnom, 0.0)),
        "settling_window": int(settling),
        "transitions": int(transitions),
        "mean_bias": float(sum(biases) / len(biases)),
        "final_bias": float(biases[-1]),
        "min_bias": float(min(biases)),
        "droop_events": int(sum(obs.droop_events for obs in observations)),
        "violations": int(violations),
        "violation_windows": list(violation_windows or []),
    }


class ClosedLoopRun:
    """One controller driving one stepping session to completion."""

    def __init__(
        self,
        session: SteppingSession,
        controller: Controller,
        runit: RUnit | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.session = session
        self.controller = controller
        self.runit = runit
        self.telemetry = telemetry or get_telemetry()
        self.observations: list[WindowObservation] = []
        self.violation_windows: list[int] = []
        self._pending = controller.prime()

    @property
    def violations(self) -> int:
        return len(self.violation_windows)

    def step(self) -> WindowObservation:
        """Advance one window: apply the held actuation, solve,
        check the R-Unit, ask the controller for the next move."""
        observation = self.session.step(self._pending)
        self.observations.append(observation)
        if self.runit is not None and self.runit.check(
            observation.worst_vmin
        ):
            self.violation_windows.append(observation.index)
            self.telemetry.increment("control.violations")
        self._pending = self.controller.observe(observation)
        return observation

    def run(self) -> dict:
        """Step every remaining window; return :meth:`summary`."""
        while not self.session.done:
            self.step()
        return self.summary()

    def summary(self) -> dict:
        """Loop metrics plus the controller's own diagnostics."""
        summary = loop_summary(
            self.observations,
            self.session.chip.vnom,
            violations=self.violations,
            violation_windows=self.violation_windows,
        )
        summary["controller"] = self.controller.summary()
        summary["backend"] = self.session.resolved_backend
        return summary
