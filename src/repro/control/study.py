"""The closed-loop studies: controller-gain sweep and attack surface.

Both studies post-process ONE solved stimulus.  The plan compiler
declares a single nominal baseline run under :data:`CONTROL_RUN_TAG`
(the vmin-experiment pattern), so control campaigns shard/dedup/fleet
like everything else; the driver executes that baseline through the
engine session (cache-addressed) and then steps the closed loop on a
:class:`~repro.engine.stepping.SteppingSession` built from the *same*
``(mapping, options, run_tag)`` triple.  Because every built-in
controller actuates the supply bias only — a pure offset under the
linear PDN — each sweep point :meth:`rewind`s the session and re-steps
the already-solved waveforms: a whole gain sweep costs one transient
solve.

Each study also re-derives the monolithic result from the stepping
state (:meth:`SteppingSession.result`) and compares it to the engine
baseline *exactly* — the stepping ≡ monolithic acceptance check rides
along with every sweep.
"""

from __future__ import annotations

from ..engine import SimulationSession
from ..engine.stepping import SteppingSession
from ..machine.chip import Chip
from ..machine.runner import RunOptions, RunResult
from ..machine.workload import CurrentProgram
from ..measure.runit import RUnit, RUnitConfig
from ..plan.spec import RunPlan
from .controllers import AdversarialUndervolter, IntegralPowerController
from .loop import ClosedLoopRun

__all__ = [
    "CONTROL_RUN_TAG",
    "DEFAULT_GAINS",
    "DEFAULT_DEPTHS",
    "DEFAULT_DURATIONS",
    "plan_control_experiment",
    "results_identical",
    "gain_sweep",
    "attack_surface",
]

#: The run tag every control study executes under — the plan compiler
#: and the stepping session must agree byte-for-byte, so the baseline
#: run's fingerprint is shared across plan, CLI and serve paths.
CONTROL_RUN_TAG = "control"

#: Integral gains swept by the ``ctrl-gain`` study (Ki, bias volts per
#: unit power error per window): from sluggish to oscillatory.
DEFAULT_GAINS = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0)

#: Undervolt depths (0.5 % steps) and pulse durations (windows)
#: spanned by the ``ctrl-attack`` heatmap.
DEFAULT_DEPTHS = (5, 10, 15, 20, 25, 30)
DEFAULT_DURATIONS = (1, 2, 4)


def plan_control_experiment(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    options: RunOptions | None = None,
    figure: str | None = None,
) -> RunPlan:
    """Declarative form of a control study: the single nominal baseline
    run it needs (the closed loop itself is deterministic
    post-processing of that stimulus)."""
    plan = RunPlan.for_chip(chip)
    plan.add(mapping, CONTROL_RUN_TAG, options or RunOptions(), figure)
    return plan


def results_identical(a: RunResult, b: RunResult) -> bool:
    """Exact (tolerance-zero) equality of two run results' measurements."""
    if len(a.measurements) != len(b.measurements):
        return False
    return all(
        m.core == n.core
        and m.p2p_pct == n.p2p_pct
        and m.v_min == n.v_min
        and m.v_max == n.v_max
        and m.coherent_delta_i == n.coherent_delta_i
        for m, n in zip(a.measurements, b.measurements)
    )


def _stepping_session(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    options: RunOptions | None,
    windows_per_segment: int,
    backend: str | None,
) -> SteppingSession:
    return SteppingSession(
        chip,
        mapping,
        options,
        run_tag=CONTROL_RUN_TAG,
        windows_per_segment=windows_per_segment,
        backend=backend,
    )


def gain_sweep(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    options: RunOptions | None = None,
    *,
    gains: tuple[float, ...] = DEFAULT_GAINS,
    setpoint: float = 0.85,
    windows_per_segment: int = 8,
    backend: str | None = None,
    runit_config: RUnitConfig | None = None,
    baseline: RunResult | None = None,
    session: SimulationSession | None = None,
) -> dict:
    """Droop/overshoot/settling-time vs integral-controller gain.

    One stepping session serves every gain (bias-only actuation keeps
    the solver epoch warm across :meth:`rewind`s).  Returns a JSON-safe
    dict: per-gain loop summaries plus the stepping ≡ monolithic
    equivalence verdict against *baseline* (computed through *session*
    or a fresh engine session when not supplied).
    """
    if baseline is None:
        session = session or SimulationSession(chip, options)
        baseline = session.run(mapping, run_tag=CONTROL_RUN_TAG)
    stepping = _stepping_session(
        chip, mapping, options, windows_per_segment, backend
    )
    points = []
    for gain in gains:
        stepping.rewind()
        controller = IntegralPowerController(
            chip.vnom, setpoint=setpoint, gain=float(gain)
        )
        loop = ClosedLoopRun(
            stepping,
            controller,
            runit=RUnit(runit_config or RUnitConfig(), chip.vnom),
        )
        summary = loop.run()
        summary["gain"] = float(gain)
        points.append(summary)
    # Bias never touches the nominal-supply sticky state, so the final
    # rewind+result must replay the monolithic baseline byte for byte.
    stepping.rewind()
    equivalent = results_identical(stepping.result(), baseline)
    return {
        "study": "gain_sweep",
        "run_tag": CONTROL_RUN_TAG,
        "setpoint": float(setpoint),
        "windows_per_segment": int(windows_per_segment),
        "windows": stepping.n_windows,
        "backend": stepping.resolved_backend,
        "baseline_worst_vmin": float(baseline.worst_vmin),
        "baseline_max_p2p": float(baseline.max_p2p),
        "stepping_equivalent": bool(equivalent),
        "points": points,
    }


def attack_surface(
    chip: Chip,
    mapping: list[CurrentProgram | None],
    options: RunOptions | None = None,
    *,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    durations: tuple[int, ...] = DEFAULT_DURATIONS,
    windows_per_segment: int = 8,
    backend: str | None = None,
    runit_config: RUnitConfig | None = None,
    baseline: RunResult | None = None,
    session: SimulationSession | None = None,
) -> dict:
    """Vmin-violation heatmap over (undervolt depth, pulse duration,
    alignment with dI/dt stress).

    A probe pass finds the deepest-droop window; every (depth,
    duration) cell is then attacked twice — aligned to that window and
    unaligned (window 0) — and scored by R-Unit violations.  The
    returned frontier gives, per duration and alignment, the shallowest
    depth that produced a violation: the attack surface the guard-band
    must defend.
    """
    if baseline is None:
        session = session or SimulationSession(chip, options)
        baseline = session.run(mapping, run_tag=CONTROL_RUN_TAG)
    stepping = _stepping_session(
        chip, mapping, options, windows_per_segment, backend
    )
    runit_config = runit_config or RUnitConfig()

    # Probe pass: the un-actuated droop profile locates the stress.
    probe = stepping.run_to_completion()
    stress_window = min(probe, key=lambda obs: obs.worst_vmin).index
    equivalent = results_identical(stepping.result(), baseline)

    cells = []
    for depth in depths:
        for duration in durations:
            for alignment, start in (
                ("aligned", stress_window),
                ("unaligned", 0),
            ):
                if alignment == "unaligned" and start == stress_window:
                    continue  # stress already at window 0: one cell
                stepping.rewind()
                agent = AdversarialUndervolter(
                    depth_steps=int(depth),
                    duration_windows=int(duration),
                    start_window=int(start),
                )
                loop = ClosedLoopRun(
                    stepping,
                    agent,
                    runit=RUnit(runit_config, chip.vnom),
                )
                summary = loop.run()
                cells.append(
                    {
                        "depth_steps": int(depth),
                        "duration_windows": int(duration),
                        "alignment": alignment,
                        "start_window": int(start),
                        "violations": summary["violations"],
                        "droop_v": summary["droop_v"],
                        "min_bias": summary["min_bias"],
                    }
                )

    frontier: dict[str, dict[str, int | None]] = {}
    for alignment in ("aligned", "unaligned"):
        for duration in durations:
            hits = [
                cell["depth_steps"]
                for cell in cells
                if cell["alignment"] == alignment
                and cell["duration_windows"] == duration
                and cell["violations"] > 0
            ]
            frontier.setdefault(alignment, {})[str(duration)] = (
                min(hits) if hits else None
            )
    return {
        "study": "attack_surface",
        "run_tag": CONTROL_RUN_TAG,
        "windows_per_segment": int(windows_per_segment),
        "windows": stepping.n_windows,
        "backend": stepping.resolved_backend,
        "stress_window": int(stress_window),
        "v_fail": float(runit_config.v_fail_frac * chip.vnom),
        "baseline_worst_vmin": float(baseline.worst_vmin),
        "stepping_equivalent": bool(equivalent),
        "cells": cells,
        "frontier": frontier,
    }
