"""The three built-in controllers.

* :class:`IntegralPowerController` — the integral power regulator of
  "Power Regulation in High Performance Multicore Processors"
  (PAPERS.md): the supply command integrates the power-tracking error,
  ``V[k+1] = V[k] + Ki · (Pref − P[k])``, quantized to the service
  element's 0.5 % steps.  Gain selects the classic trade: low gains
  settle slowly, high gains overshoot and oscillate — the droop/
  overshoot/settling-vs-gain curves the ``ctrl-gain`` study sweeps.
* :class:`DynamicGuardbandController` — the paper's §VII-B
  utilization-based dynamic guard-band, online: the active-core count
  of each window is mapped through a
  :class:`~repro.analysis.guardband.GuardbandPolicy` margin schedule
  with exactly the quantization (floor, slack-protected) of the
  offline :class:`~repro.mitigation.guardband.GuardbandController`.
* :class:`AdversarialUndervolter` — a CLKscrew-style agent: a timed
  undervolt pulse (depth × duration, optionally aligned with the
  dI/dt-stress window) hunting for R-Unit Vmin violations.  The search
  over (depth, duration, alignment) lives in
  :mod:`repro.control.study`.
"""

from __future__ import annotations

import numpy as np

from ..analysis.guardband import GuardbandPolicy
from ..errors import ControlError
from ..machine.chip import Chip
from ..machine.system import VOLTAGE_STEP
from .api import Actuation, Controller, WindowObservation

__all__ = [
    "IntegralPowerController",
    "DynamicGuardbandController",
    "AdversarialUndervolter",
    "controller_from_spec",
    "BIAS_STEP_MIN",
    "BIAS_STEP_MAX",
]

#: The service element's safe bias range, in 0.5 % steps.
BIAS_STEP_MIN = -60
BIAS_STEP_MAX = 20

#: Static (idle) share of the power proxy: even a fully idle window
#: draws leakage + clock power, so the regulator can still observe a
#: supply-dependent signal.
STATIC_POWER_FRAC = 0.3


def _clamp_steps(steps: int) -> int:
    return max(BIAS_STEP_MIN, min(BIAS_STEP_MAX, steps))


class IntegralPowerController(Controller):
    """Integral regulator tracking a relative power setpoint.

    The measured power proxy of a window is
    ``(V̄/Vnom)² · (static + (1 − static)·utilization)`` — the V² law
    over the observed mean supply, activity-weighted.  ``setpoint`` is
    in the same normalized units (1.0 ≈ all cores busy at nominal), and
    ``gain`` is the integral constant Ki in volts-of-bias per unit
    power error per window.
    """

    kind = "integral"

    def __init__(
        self,
        chip_vnom: float,
        setpoint: float = 0.85,
        gain: float = 0.1,
    ):
        if chip_vnom <= 0:
            raise ControlError("nominal voltage must be positive")
        if not 0.0 < setpoint:
            raise ControlError(f"setpoint must be positive (got {setpoint})")
        if gain < 0:
            raise ControlError(f"gain must be >= 0 (got {gain})")
        self.vnom = float(chip_vnom)
        self.setpoint = float(setpoint)
        self.gain = float(gain)
        self.reset()

    def reset(self) -> None:
        self._command = 1.0        # continuous bias command
        self._steps = 0            # last quantized actuation
        self._errors: list[float] = []

    def power_proxy(self, window: WindowObservation) -> float:
        v_mean = sum(window.v_mean) / len(window.v_mean)
        activity = STATIC_POWER_FRAC + (1.0 - STATIC_POWER_FRAC) * (
            window.utilization
        )
        return (v_mean / self.vnom) ** 2 * activity

    def observe(self, window: WindowObservation) -> Actuation | None:
        error = self.setpoint - self.power_proxy(window)
        self._errors.append(error)
        # Integrate, with anti-windup at the actuator's safe range.
        self._command += self.gain * error
        lo = 1.0 + BIAS_STEP_MIN * VOLTAGE_STEP
        hi = 1.0 + BIAS_STEP_MAX * VOLTAGE_STEP
        self._command = min(max(self._command, lo), hi)
        steps = _clamp_steps(int(round((self._command - 1.0) / VOLTAGE_STEP)))
        if steps == self._steps:
            return None
        self._steps = steps
        return Actuation(bias_steps=steps, note=f"integral ki={self.gain:g}")

    def summary(self) -> dict:
        errors = self._errors
        return {
            "kind": self.kind,
            "gain": self.gain,
            "setpoint": self.setpoint,
            "final_command": self._command,
            "final_steps": self._steps,
            "mean_abs_error": (
                float(np.mean(np.abs(errors))) if errors else 0.0
            ),
            "final_error": float(errors[-1]) if errors else 0.0,
        }


class DynamicGuardbandController(Controller):
    """Online utilization-based guard-banding (paper §VII-B).

    Mirrors the quantization of the offline
    :meth:`~repro.mitigation.guardband.GuardbandController.bias_for`
    walk — unused static margin minus *slack*, floored to whole 0.5 %
    steps — but keyed on the per-window active-core count the stepping
    engine observes, rather than a precomputed utilization trace.
    """

    kind = "guardband"

    def __init__(self, policy: GuardbandPolicy, slack: float = 0.0025):
        if slack < 0:
            raise ControlError("slack cannot be negative")
        self.policy = policy
        self.slack = float(slack)
        self._max_cores = max(policy.margin_by_active_cores)
        self.reset()

    def reset(self) -> None:
        self._steps = 0
        self._transitions = 0
        self._min_headroom = float("inf")

    def steps_for(self, active_cores: int) -> int:
        """Signed bias steps when *active_cores* may execute — the
        same floor quantization as the offline controller."""
        k = min(int(active_cores), self._max_cores)
        unused = self.policy.static_margin - self.policy.margin_for(k)
        reducible = max(unused - self.slack, 0.0)
        return -int(np.floor(reducible / VOLTAGE_STEP))

    def observe(self, window: WindowObservation) -> Actuation | None:
        steps = self.steps_for(window.n_active)
        k = min(window.n_active, self._max_cores)
        programmed = self.policy.static_margin + steps * VOLTAGE_STEP
        self._min_headroom = min(
            self._min_headroom, programmed - self.policy.margin_for(k)
        )
        if steps == self._steps:
            return None
        self._steps = steps
        self._transitions += 1
        return Actuation(
            bias_steps=steps, note=f"guardband k={window.n_active}"
        )

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "slack": self.slack,
            "final_steps": self._steps,
            "transitions": self._transitions,
            "min_headroom": (
                float(self._min_headroom)
                if np.isfinite(self._min_headroom)
                else None
            ),
        }


class AdversarialUndervolter(Controller):
    """Timed undervolt pulse hunting for Vmin violations.

    Drops the supply by ``depth_steps`` 0.5 % steps for
    ``duration_windows`` consecutive windows starting at
    ``start_window``, then restores nominal — guard-band violation as
    an attack, not a margin.  Alignment with the dI/dt stress (choosing
    ``start_window`` at the deepest-droop window of a probe pass) is
    what the ``ctrl-attack`` study searches over.
    """

    kind = "adversarial"

    def __init__(
        self,
        depth_steps: int,
        duration_windows: int,
        start_window: int = 0,
    ):
        if depth_steps < 0:
            raise ControlError(
                f"depth_steps must be >= 0 (got {depth_steps})"
            )
        if depth_steps > -BIAS_STEP_MIN:
            raise ControlError(
                f"depth_steps beyond the service element's safe range "
                f"(got {depth_steps}, max {-BIAS_STEP_MIN})"
            )
        if duration_windows < 1:
            raise ControlError(
                f"duration_windows must be >= 1 (got {duration_windows})"
            )
        if start_window < 0:
            raise ControlError(
                f"start_window must be >= 0 (got {start_window})"
            )
        self.depth_steps = int(depth_steps)
        self.duration_windows = int(duration_windows)
        self.start_window = int(start_window)
        self.reset()

    def reset(self) -> None:
        self._steps = 0

    def _steps_for_window(self, index: int) -> int:
        attacking = (
            self.start_window <= index
            < self.start_window + self.duration_windows
        )
        return -self.depth_steps if attacking else 0

    def prime(self) -> Actuation | None:
        steps = self._steps_for_window(0)
        if steps == self._steps:
            return None
        self._steps = steps
        return Actuation(bias_steps=steps, note="attack onset")

    def observe(self, window: WindowObservation) -> Actuation | None:
        steps = self._steps_for_window(window.index + 1)
        if steps == self._steps:
            return None
        self._steps = steps
        note = "attack onset" if steps else "attack end"
        return Actuation(bias_steps=steps, note=note)

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "depth_steps": self.depth_steps,
            "duration_windows": self.duration_windows,
            "start_window": self.start_window,
        }


def controller_from_spec(spec: dict, chip: Chip) -> Controller:
    """Build a controller from its wire/CLI description.

    ``spec["kind"]`` selects the class; the remaining keys are its
    parameters.  The guard-band kind accepts a margin schedule inline
    (``margins`` mapping active-core count → margin fraction, plus
    ``static_margin``), so a serve client can ship a policy derived
    elsewhere.
    """
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ControlError("controller spec must be a dict with a 'kind'")
    kind = spec["kind"]
    if kind == "integral":
        return IntegralPowerController(
            chip.vnom,
            setpoint=float(spec.get("setpoint", 0.85)),
            gain=float(spec.get("gain", 0.1)),
        )
    if kind == "guardband":
        margins = spec.get("margins")
        if not isinstance(margins, dict) or not margins:
            raise ControlError(
                "guardband controller spec needs a 'margins' schedule"
            )
        schedule = {int(k): float(v) for k, v in margins.items()}
        static = float(spec.get("static_margin", max(schedule.values())))
        policy = GuardbandPolicy(
            margin_by_active_cores=schedule, static_margin=static
        )
        return DynamicGuardbandController(
            policy, slack=float(spec.get("slack", 0.0025))
        )
    if kind == "adversarial":
        return AdversarialUndervolter(
            depth_steps=int(spec.get("depth_steps", 8)),
            duration_windows=int(spec.get("duration_windows", 2)),
            start_window=int(spec.get("start_window", 0)),
        )
    raise ControlError(f"unknown controller kind {kind!r}")
