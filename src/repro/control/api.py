"""The controller contract of the closed-loop subsystem.

A :class:`Controller` rides a
:class:`~repro.engine.stepping.SteppingSession`: after every solved
window it receives the :class:`~repro.engine.stepping.WindowObservation`
and may answer with an :class:`~repro.engine.stepping.Actuation`, which
the loop applies before the *next* window is solved — the one-window
actuation latency a real management loop has.  ``prime()`` lets a
controller act before the first window (e.g. an attack aligned to
window zero).

Controllers are deterministic functions of the observation stream:
the same session stimulus and controller parameters produce the same
actuations, observations and summary on every path that drives the
loop (in-process, CLI, plan-compiled experiment, serve session verbs)
— the property the acceptance suite pins.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..engine.stepping import Actuation, WindowObservation

__all__ = ["Controller", "Actuation", "WindowObservation"]


class Controller(ABC):
    """One closed-loop decision policy."""

    #: Wire-facing name; concrete classes override.
    kind = "controller"

    def prime(self) -> Actuation | None:
        """Actuation applied before the first window (default none)."""
        return None

    @abstractmethod
    def observe(self, window: WindowObservation) -> Actuation | None:
        """Digest one window; return the actuation for the next window
        (or ``None`` to leave the knobs alone)."""

    def reset(self) -> None:
        """Return to the initial state (start of a new loop)."""

    def summary(self) -> dict:
        """JSON-safe controller-internal diagnostics."""
        return {}
