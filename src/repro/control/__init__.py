"""``repro.control`` — the closed-loop simulation subsystem.

The stack, bottom-up:

* :class:`~repro.pdn.kernels.SteppingSolver` (kernel layer) — windowed
  evaluation with exact LTI state carry-over;
* :class:`~repro.engine.stepping.SteppingSession` (engine layer) — the
  observe/actuate window loop over one mapping run, bit-identical to
  the monolithic solve when un-actuated;
* :class:`Controller` implementations (this package) — the integral
  power regulator, the paper's dynamic guard-band, and the adversarial
  undervolter;
* :class:`ClosedLoopRun` — the loop binding, R-Unit violation
  accounting and summary metrics;
* :mod:`repro.control.study` — the ``ctrl-gain`` / ``ctrl-attack``
  experiment drivers (plan-compiled, CLI- and serve-drivable).

See DESIGN.md §15 for the architecture and the state-carry invariant.
"""

from .api import Actuation, Controller, WindowObservation
from .controllers import (
    AdversarialUndervolter,
    DynamicGuardbandController,
    IntegralPowerController,
    controller_from_spec,
)
from .loop import ClosedLoopRun, loop_summary
from .study import (
    CONTROL_RUN_TAG,
    attack_surface,
    gain_sweep,
    plan_control_experiment,
    results_identical,
)

__all__ = [
    "Actuation",
    "Controller",
    "WindowObservation",
    "IntegralPowerController",
    "DynamicGuardbandController",
    "AdversarialUndervolter",
    "controller_from_spec",
    "ClosedLoopRun",
    "loop_summary",
    "CONTROL_RUN_TAG",
    "plan_control_experiment",
    "gain_sweep",
    "attack_surface",
    "results_identical",
]
