"""Core resource configuration.

The numbers model a 5.5 GHz mainframe-class core: three-wide dispatch
groups, two fixed-point and two load/store pipes, single binary-FP,
decimal-FP and vector pipes, plus system/coprocessor sequencers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UarchError
from ..isa.instruction import FUNCTIONAL_UNITS

__all__ = ["CoreConfig", "default_core_config"]


@dataclass(frozen=True)
class CoreConfig:
    """Static configuration of one core.

    Attributes
    ----------
    clock_hz:
        Core clock frequency.
    dispatch_width:
        Maximum instructions per dispatch group.
    unit_counts:
        Functional unit name → number of instances.
    max_memory_per_group:
        LSU port constraint on a dispatch group.
    static_power_w:
        Clock-grid + leakage power (workload independent).
    floor_power_w:
        Measured power of the cheapest single-instruction loop (the
        Table I normalization point).  Must exceed ``static_power_w``.
    vnom:
        Nominal supply voltage, for power→current conversion.
    power_ramp_cycles:
        Cycles for the core's power to swing between activity levels
        (pipeline fill/drain inertia); sets the ΔI edge rise time.
    """

    name: str = "zmainframe-core"
    clock_hz: float = 5.5e9
    dispatch_width: int = 3
    unit_counts: dict[str, int] = field(
        default_factory=lambda: {
            "FXU": 2, "LSU": 2, "BRU": 1, "BFU": 1,
            "DFU": 1, "VXU": 1, "SYS": 1, "COP": 1,
        }
    )
    max_memory_per_group: int = 2
    static_power_w: float = 14.2
    floor_power_w: float = 14.5
    vnom: float = 1.05
    power_ramp_cycles: int = 60

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise UarchError("clock frequency must be positive")
        if self.dispatch_width < 1:
            raise UarchError("dispatch width must be >= 1")
        if self.floor_power_w <= self.static_power_w:
            raise UarchError("floor power must exceed static power")
        for unit in FUNCTIONAL_UNITS:
            if self.unit_counts.get(unit, 0) < 1:
                raise UarchError(f"unit {unit!r} needs at least one instance")

    @property
    def cycle_time(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz

    @property
    def ramp_time(self) -> float:
        """Power transition (ΔI edge) rise time in seconds."""
        return self.power_ramp_cycles * self.cycle_time

    def unit_count(self, unit: str) -> int:
        try:
            return self.unit_counts[unit]
        except KeyError:
            raise UarchError(f"unknown functional unit {unit!r}") from None


def default_core_config() -> CoreConfig:
    """The reference core configuration used throughout the library."""
    return CoreConfig()
