"""Dispatch-group formation.

The core dispatches instructions in groups of up to
``dispatch_width`` (three).  Group formation follows the rules the
paper's microarchitectural filter encodes:

* a branch-like instruction (``ends_group``) closes its group;
* a cracked/complex instruction (``group_alone``) dispatches alone;
* at most ``max_memory_per_group`` memory operations share a group.

Groups never straddle loop iterations because generated loops always
close with a branch.
"""

from __future__ import annotations

from typing import Sequence

from ..isa.instruction import InstructionDef
from .resources import CoreConfig

__all__ = ["form_groups", "average_group_size"]


def form_groups(
    body: Sequence[InstructionDef], config: CoreConfig
) -> list[list[InstructionDef]]:
    """Split one loop iteration *body* into dispatch groups."""
    groups: list[list[InstructionDef]] = []
    current: list[InstructionDef] = []
    memory_in_current = 0

    def close() -> None:
        nonlocal current, memory_in_current
        if current:
            groups.append(current)
            current = []
            memory_in_current = 0

    for inst in body:
        if inst.group_alone:
            close()
            groups.append([inst])
            continue
        if len(current) >= config.dispatch_width:
            close()
        if inst.memory and memory_in_current >= config.max_memory_per_group:
            close()
        current.append(inst)
        if inst.memory:
            memory_in_current += 1
        if inst.ends_group:
            close()
    close()
    return groups


def average_group_size(
    body: Sequence[InstructionDef], config: CoreConfig
) -> float:
    """Average dispatch-group size of one loop iteration of *body*."""
    groups = form_groups(body, config)
    if not groups:
        return 0.0
    return len(body) / len(groups)
