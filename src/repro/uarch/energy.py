"""Per-µop energy model derived from the ISA's power weights.

The ISA stores, per instruction, the *relative sustained power* of a
dependence-free single-instruction loop (Table I semantics: cheapest
instruction = 1.0).  This module inverts that definition into per-µop
energies:

    measured_power(inst loop) = floor_power * weight(inst)
    dynamic_power             = measured_power - static_power
    epi(inst)                 = dynamic_power / (clock * uop_rate(inst loop))

where ``uop_rate`` comes from the analytic throughput model applied to
the Table I skeleton itself — a long dependence-free repetition of the
instruction — so that profiling such a loop measures back exactly the
defined weight.  With
per-µop energies in hand, the power of an *arbitrary* sequence follows
from its own throughput profile — and mixed-unit sequences genuinely
exceed any single instruction's power, because single-instance units
(vector, FP) carry higher per-µop energy at the same loop power.
That emergent property is what makes the paper's max-power search over
instruction combinations meaningful.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import UarchError
from ..isa.instruction import InstructionDef
from ..isa.isa import Isa
from .resources import CoreConfig
from .throughput import analyze_loop

__all__ = ["EnergyModel"]


class EnergyModel:
    """Maps instructions and sequences to energies and powers."""

    #: Repetitions used to compute the asymptotic µop rate of the
    #: Table I skeleton (long dependence-free repetition loops).  Two
    #: dozen repetitions are enough for group-formation effects to
    #: converge; the real skeleton uses 4000.
    CALIBRATION_REPS = 24

    def __init__(self, isa: Isa, config: CoreConfig):
        self.isa = isa
        self.config = config
        self._epi: dict[str, float] = {}
        dyn_scale = config.floor_power_w - config.static_power_w
        if dyn_scale <= 0:
            raise UarchError("floor power must exceed static power")
        for inst in isa:
            profile = analyze_loop([inst] * self.CALIBRATION_REPS, config)
            uop_rate_hz = profile.ipc * config.clock_hz
            measured = config.floor_power_w * inst.power_weight
            dynamic = measured - config.static_power_w
            if dynamic <= 0:  # pragma: no cover - weights are >= 1.0
                raise UarchError(f"{inst.mnemonic}: non-positive dynamic power")
            self._epi[inst.mnemonic] = dynamic / uop_rate_hz

    def epi(self, inst: InstructionDef | str) -> float:
        """Energy per µop in joules."""
        mnemonic = inst if isinstance(inst, str) else inst.mnemonic
        try:
            return self._epi[mnemonic]
        except KeyError:
            raise UarchError(f"no energy data for {mnemonic!r}") from None

    def iteration_energy(self, body: Sequence[InstructionDef]) -> float:
        """Dynamic energy of one loop iteration (joules)."""
        return sum(self.epi(inst) * inst.uops for inst in body)

    def dynamic_power(
        self, body: Sequence[InstructionDef], profile=None
    ) -> float:
        """Steady-state dynamic power of an endless loop over *body* (W).

        Callers that already hold *body*'s throughput profile pass it
        in to skip re-deriving it (profiling a 4000-instruction EPI
        skeleton is not free)."""
        if profile is None:
            profile = analyze_loop(body, self.config)
        seconds_per_iteration = profile.cycles * self.config.cycle_time
        return self.iteration_energy(body) / seconds_per_iteration

    def total_power(self, body: Sequence[InstructionDef]) -> float:
        """Steady-state total power (static + dynamic) in watts."""
        return self.config.static_power_w + self.dynamic_power(body)

    def current(self, body: Sequence[InstructionDef]) -> float:
        """Steady-state supply current draw (A) at nominal voltage."""
        return self.total_power(body) / self.config.vnom

    @property
    def idle_power(self) -> float:
        """Power of an idling core (static only)."""
        return self.config.static_power_w

    @property
    def idle_current(self) -> float:
        """Idle supply current (A)."""
        return self.config.static_power_w / self.config.vnom
