"""Sequence power estimation façade.

Bundles the throughput and energy models into the single call the
stressmark pipeline uses: "what power and current does this loop body
sustain?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..isa.instruction import InstructionDef
from .energy import EnergyModel
from .throughput import LoopProfile, analyze_loop

__all__ = ["PowerEstimate", "estimate_loop_power"]


@dataclass
class PowerEstimate:
    """Steady-state power/performance of an endless loop.

    Attributes
    ----------
    watts:
        Total power (static + dynamic).
    dynamic_watts:
        Dynamic component only.
    amps:
        Supply current at nominal voltage.
    profile:
        The underlying throughput profile (IPC, groups, bottleneck).
    """

    watts: float
    dynamic_watts: float
    amps: float
    profile: LoopProfile

    @property
    def ipc(self) -> float:
        """µops per cycle of the loop."""
        return self.profile.ipc


def estimate_loop_power(
    body: Sequence[InstructionDef],
    model: EnergyModel,
    profile: LoopProfile | None = None,
) -> PowerEstimate:
    """Estimate the sustained power of an endless loop over *body*.

    An already-derived throughput *profile* of *body* short-circuits
    both this function's and the energy model's analysis pass."""
    if profile is None:
        profile = analyze_loop(body, model.config)
    dynamic = model.dynamic_power(body, profile=profile)
    total = model.config.static_power_w + dynamic
    return PowerEstimate(
        watts=total,
        dynamic_watts=dynamic,
        amps=total / model.config.vnom,
        profile=profile,
    )
