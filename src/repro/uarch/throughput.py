"""Analytic steady-state throughput model for loop kernels.

For an endless loop whose body repeats a fixed instruction sequence with
no loop-carried data dependences (the shape every generated
microbenchmark has), the steady-state cycles per iteration are bounded
by three mechanisms:

* **dispatch** — one group per cycle, so at least ``len(groups)``
  cycles;
* **functional-unit capacity** — each unit instance completes one µop
  per cycle when pipelined, or occupies the unit for ``latency`` cycles
  per µop when not (dividers, long decimal ops);
* **serialization** — serializing instructions drain the pipeline and
  insert their full latency.

The model returns the binding bottleneck, which the paper's IPC
filtering stage exploits ("it is well-known that IPC is directly
related to power").  The cycle-level simulator in
:mod:`repro.uarch.pipeline` validates this model in the test suite.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from ..errors import UarchError
from ..isa.instruction import InstructionDef
from .grouping import form_groups
from .resources import CoreConfig

__all__ = ["LoopProfile", "analyze_loop"]


@dataclass
class LoopProfile:
    """Steady-state execution profile of one loop iteration.

    Attributes
    ----------
    cycles:
        Cycles per iteration (float; fractional values arise from unit
        capacity limits averaged over iterations).
    uops:
        Total µops per iteration.
    ipc:
        µops per cycle — the metric the paper's IPC filter ranks by.
    groups:
        Dispatch groups per iteration.
    avg_group_size:
        Instructions per dispatch group.
    bottleneck:
        Human-readable name of the binding constraint
        (``dispatch``, ``unit:FXU``, ``serialize``).
    unit_load:
        Unit name → busy-cycles demanded per iteration per instance.
    """

    cycles: float
    uops: int
    ipc: float
    groups: int
    avg_group_size: float
    bottleneck: str
    unit_load: dict[str, float]


def analyze_loop(
    body: Sequence[InstructionDef], config: CoreConfig
) -> LoopProfile:
    """Profile one iteration of an endless loop running *body*."""
    if not body:
        raise UarchError("loop body is empty")

    groups = form_groups(body, config)
    n_groups = len(groups)

    unit_load: dict[str, float] = defaultdict(float)
    serialize_penalty = 0.0
    total_uops = 0
    for inst in body:
        total_uops += inst.uops
        occupancy = float(inst.latency) if not inst.pipelined else 1.0
        unit_load[inst.unit] += inst.uops * occupancy / config.unit_count(inst.unit)
        if inst.serializing:
            # A serializing instruction spends its latency with the
            # pipeline drained; one cycle is already counted as its
            # dispatch group.
            serialize_penalty += inst.latency - 1.0

    candidates: list[tuple[float, str]] = [(float(n_groups), "dispatch")]
    for unit, load in unit_load.items():
        candidates.append((load, f"unit:{unit}"))
    cycles, bottleneck = max(candidates, key=lambda pair: pair[0])
    cycles += serialize_penalty
    if serialize_penalty > 0 and serialize_penalty >= cycles / 2:
        bottleneck = "serialize"

    return LoopProfile(
        cycles=cycles,
        uops=total_uops,
        ipc=total_uops / cycles,
        groups=n_groups,
        avg_group_size=len(body) / n_groups,
        bottleneck=bottleneck,
        unit_load=dict(unit_load),
    )
