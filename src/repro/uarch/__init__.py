"""Core microarchitecture model of the evaluation platform.

Models the aspects of a mainframe-class super-scalar out-of-order core
that the stressmark methodology depends on:

* **dispatch grouping** (:mod:`.grouping`) — instructions dispatch in
  groups of up to three; branches end their group; cracked/complex
  instructions dispatch alone; at most two memory operations per group.
  The paper's microarchitectural filtering stage is built on these
  rules ("sequences known to not have an average dispatch group size of
  3 are filtered out").
* **steady-state loop throughput** (:mod:`.throughput`) — an analytic
  model of µops-per-cycle for an endless loop body, limited by dispatch
  groups, per-unit capacity (including non-pipelined dividers) and
  serializing instructions.
* **a cycle-level pipeline simulator** (:mod:`.pipeline`) — an
  independent execution model used to validate the analytic throughput
  and to produce per-cycle energy traces (power ramp shapes).
* **the energy/power model** (:mod:`.energy`, :mod:`.power`) —
  per-µop energies are derived from the ISA's relative power weights so
  that a measured single-instruction loop reproduces the Table I
  ranking, and arbitrary sequences get physically sensible powers
  (multi-unit sequences exceed any single instruction's power, which is
  why the paper's max-power search over combinations pays off).
"""

from .resources import CoreConfig, default_core_config
from .grouping import form_groups
from .throughput import LoopProfile, analyze_loop
from .energy import EnergyModel
from .power import PowerEstimate, estimate_loop_power
from .pipeline import PipelineResult, simulate_loop

__all__ = [
    "CoreConfig",
    "default_core_config",
    "form_groups",
    "LoopProfile",
    "analyze_loop",
    "EnergyModel",
    "PowerEstimate",
    "estimate_loop_power",
    "PipelineResult",
    "simulate_loop",
]
