"""Cycle-level pipeline simulator.

An independent, executable model of the core used to (a) validate the
analytic throughput model and (b) produce per-cycle energy traces, from
which the power ramp shape of a workload transition can be observed.
It is intentionally simpler than a full OoO model — dispatch groups
issue in order, each µop occupies a functional-unit instance for one
cycle (pipelined) or for its latency (non-pipelined), serializing
instructions drain the machine — which matches the granularity the
stressmark methodology needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import UarchError
from ..isa.instruction import InstructionDef
from .energy import EnergyModel
from .grouping import form_groups
from .resources import CoreConfig

__all__ = ["PipelineResult", "simulate_loop"]


@dataclass
class PipelineResult:
    """Outcome of a cycle-level simulation.

    Attributes
    ----------
    cycles:
        Total cycles simulated.
    uops:
        Total µops dispatched.
    ipc:
        µops per cycle over the whole run.
    energy_per_cycle:
        Dynamic energy dispatched each cycle (J), length ``cycles``.
    """

    cycles: int
    uops: int
    ipc: float
    energy_per_cycle: np.ndarray

    def dynamic_power(self, clock_hz: float) -> float:
        """Average dynamic power over the run (W)."""
        if self.cycles == 0:
            return 0.0
        return float(self.energy_per_cycle.sum()) * clock_hz / self.cycles


def simulate_loop(
    body: Sequence[InstructionDef],
    model: EnergyModel,
    iterations: int = 50,
) -> PipelineResult:
    """Simulate *iterations* repetitions of *body* cycle by cycle."""
    if not body:
        raise UarchError("loop body is empty")
    if iterations < 1:
        raise UarchError("need at least one iteration")

    config: CoreConfig = model.config
    groups = form_groups(body, config)

    # Per-unit instance availability: the cycle at which each instance
    # can accept its next µop.
    available: dict[str, list[int]] = {
        unit: [0] * count for unit, count in config.unit_counts.items()
    }

    energy: list[float] = []
    cycle = 0
    total_uops = 0

    def ensure_cycle(upto: int) -> None:
        while len(energy) <= upto:
            energy.append(0.0)

    #: Issue-queue depth: a group may dispatch while its µops wait up to
    #: this many cycles for a busy unit instance; deeper backlogs stall
    #: dispatch (backpressure).
    queue_depth = 8

    for _ in range(iterations):
        for group in groups:
            serializing = any(inst.serializing for inst in group)
            if serializing:
                # Wait until every unit instance is free.
                cycle = max(
                    cycle, max(max(slots) for slots in available.values())
                )
            # Find the earliest dispatch cycle at which every µop can
            # issue within the queue window.
            start = cycle
            while True:
                feasible = True
                claims: list[tuple[str, int, int, int]] = []
                # Tentative per-instance claim bookkeeping for this try.
                tentative = {u: list(s) for u, s in available.items()}
                for inst in group:
                    occupancy = 1 if inst.pipelined else inst.latency
                    for _ in range(inst.uops):
                        slots = tentative[inst.unit]
                        idx = min(range(len(slots)), key=slots.__getitem__)
                        issue_at = max(slots[idx], start)
                        if issue_at - start > queue_depth:
                            feasible = False
                            break
                        claims.append(
                            (inst.unit, idx, issue_at, issue_at + occupancy)
                        )
                        slots[idx] = issue_at + occupancy
                    if not feasible:
                        break
                if feasible:
                    break
                start += 1
            for unit, idx, _issue, until in claims:
                available[unit][idx] = until
            cycle = start
            group_uops = sum(inst.uops for inst in group)
            total_uops += group_uops
            # Energy is spent when µops issue.
            uop_index = 0
            for inst in group:
                for _ in range(inst.uops):
                    _, _, issue_at, _ = claims[uop_index]
                    ensure_cycle(issue_at)
                    energy[issue_at] += model.epi(inst)
                    uop_index += 1
            ensure_cycle(cycle)
            if serializing:
                # Drain: nothing dispatches until the latency elapses.
                drain = max(inst.latency for inst in group if inst.serializing)
                cycle += drain
            else:
                cycle += 1

    ensure_cycle(cycle)
    trace = np.array(energy)
    n_cycles = len(trace)
    return PipelineResult(
        cycles=n_cycles,
        uops=total_uops,
        ipc=total_uops / n_cycles,
        energy_per_cycle=trace,
    )
