"""Run-execution backends: serial and chunked process-pool fan-out.

Independent simulation runs (a frequency sweep's points, an exhaustive
mapping enumeration, a chip population, a GA generation) have no data
dependencies, so they fan out over a :class:`ProcessPoolExecutor` when
more than one core is available.  Work is dispatched in contiguous
chunks so each worker process amortizes its one-time setup (rebuilding
the chip's modal decomposition) over many runs.

Backend selection:

* explicit ``executor=``/``jobs=`` arguments win;
* else ``$REPRO_EXECUTOR`` (``serial``/``process``) and ``$REPRO_JOBS``;
* else serial — on a single-core host the pool only adds overhead.

Determinism does not depend on the backend: every run derives its
random streams by name (:mod:`repro.rng`), so serial and process
execution produce bit-identical results (guarded by
``tests/engine/test_determinism.py``).

Fault isolation: both backends expose :meth:`map_guarded`, which runs
every item through :func:`repro.engine.resilience.guarded_call`
(bounded retry + backoff + optional per-run timeout) and returns
structured :class:`~repro.engine.resilience.GuardedOutcome`s instead of
letting one bad run kill the batch.  The process backend additionally
**degrades gracefully**: a chunk whose worker crashes
(``BrokenProcessPool``), wedges past its wall-clock budget, or fails to
even deserialize its task is re-executed serially in the parent
process, so a broken pool costs throughput, never results.

Telemetry crosses the pool boundary with the results: each guarded
chunk runs under :func:`repro.obs.capture_telemetry`, so everything the
run records ambiently (solver timers, retry counters, latency
histograms) is snapshotted per chunk and merged back into the caller's
sink — a ``--jobs N`` campaign reports the same counters as a serial
one (guarded by ``tests/engine/test_worker_telemetry.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigError
from ..obs import Telemetry, capture_telemetry, get_telemetry
from .resilience import GuardedOutcome, RetryPolicy, guarded_call

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_jobs",
    "default_executor_name",
    "chunked",
]

#: Pool-level slack (seconds) on top of the per-chunk retry/timeout
#: budget before a worker is declared wedged.
POOL_GRACE_S = 5.0

T = TypeVar("T")
R = TypeVar("R")

EXECUTOR_NAMES = ("serial", "process")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else the
    machine's CPU count."""
    if jobs is not None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1 (got {jobs})")
        return jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer (got {env!r})")
        if parsed < 1:
            raise ConfigError(f"REPRO_JOBS must be >= 1 (got {parsed})")
        return parsed
    return os.cpu_count() or 1


def default_executor_name() -> str:
    """Backend used when none is requested explicitly (a blank or
    whitespace-only ``$REPRO_EXECUTOR`` means "unset")."""
    name = os.environ.get("REPRO_EXECUTOR", "").strip().lower() or "serial"
    if name not in EXECUTOR_NAMES:
        raise ConfigError(
            f"REPRO_EXECUTOR must be one of {EXECUTOR_NAMES} (got {name!r})"
        )
    return name


def chunked(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split *items* into at most *n_chunks* contiguous, near-equal
    chunks (empty chunks are dropped)."""
    if n_chunks < 1:
        raise ConfigError(f"n_chunks must be >= 1 (got {n_chunks})")
    n_chunks = min(n_chunks, len(items)) or 1
    size, extra = divmod(len(items), n_chunks)
    chunks: list[list[T]] = []
    start = 0
    for i in range(n_chunks):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            chunks.append(list(items[start:stop]))
        start = stop
    return chunks


def _normalize_guard_inputs(
    items: Sequence,
    labels: Sequence[object] | None,
    fingerprints: Sequence[str | None] | None,
) -> list[tuple[int, object, object, str | None]]:
    """Zip items with per-item failure metadata into (index, item,
    label, fingerprint) entries."""
    items = list(items)
    if labels is None:
        labels = list(range(len(items)))
    if fingerprints is None:
        fingerprints = [None] * len(items)
    if len(labels) != len(items) or len(fingerprints) != len(items):
        raise ConfigError(
            "labels/fingerprints must match the number of items"
        )
    return list(zip(range(len(items)), items, labels, fingerprints))


class SerialExecutor:
    """In-process, in-order execution (the default backend)."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def map_guarded(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        retry: RetryPolicy | None = None,
        *,
        labels: Sequence[object] | None = None,
        fingerprints: Sequence[str | None] | None = None,
        on_result: Callable[[int, GuardedOutcome], None] | None = None,
        telemetry: Telemetry | None = None,
    ) -> list[GuardedOutcome]:
        """Fault-isolated :meth:`map`: one outcome per item, in order.

        *on_result* fires as each item completes (the session uses it
        to flush finished runs to the disk cache incrementally, which
        is what makes an interrupted campaign resumable).  Everything
        the runs record ambiently is captured and merged into
        *telemetry* (the ambient sink when omitted), mirroring the
        process backend's worker-snapshot merge so both backends
        account identically.
        """
        retry = retry or RetryPolicy()
        sink = telemetry or get_telemetry()
        outcomes: list[GuardedOutcome] = []
        with capture_telemetry() as local:
            try:
                for index, item, label, fingerprint in _normalize_guard_inputs(
                    items, labels, fingerprints
                ):
                    outcome = guarded_call(
                        fn, item, retry, label=label, fingerprint=fingerprint
                    )
                    if on_result is not None:
                        on_result(index, outcome)
                    outcomes.append(outcome)
            finally:
                # Merge inside a finally so an interrupted batch keeps
                # the metrics of the runs that did finish.
                sink.merge(local.merge_payload())
        return outcomes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SerialExecutor()"


def _run_chunk(fn: Callable, chunk: list) -> list:
    """Worker-side driver: apply *fn* to each item of one chunk."""
    return [fn(item) for item in chunk]


def _run_chunk_guarded(
    fn: Callable, chunk: list, retry: RetryPolicy
) -> list[tuple[int, GuardedOutcome]]:
    """Guarded chunk driver: retries happen *inside* the hosting
    process (cheap — no round trip), failures come back as data."""
    return [
        (
            index,
            guarded_call(
                fn, item, retry, label=label, fingerprint=fingerprint
            ),
        )
        for index, item, label, fingerprint in chunk
    ]


def _run_chunk_guarded_captured(
    fn: Callable, chunk: list, retry: RetryPolicy
) -> tuple[list[tuple[int, GuardedOutcome]], dict]:
    """Worker-side guarded driver with telemetry capture: the chunk's
    ambient recordings (solver timers, histograms, counters) come back
    as a picklable merge payload alongside the outcomes, so nothing a
    worker records is lost at the pool boundary."""
    with capture_telemetry() as local:
        pairs = _run_chunk_guarded(fn, chunk, retry)
        return pairs, local.merge_payload()


class ProcessExecutor:
    """Chunked fan-out over a :class:`ProcessPoolExecutor`.

    ``fn`` and the items must be picklable (module-level callables or
    dataclass instances).  Results come back in input order.
    """

    name = "process"

    def __init__(self, jobs: int | None = None, chunks_per_job: int = 1):
        if chunks_per_job < 1:
            raise ConfigError(
                f"chunks_per_job must be >= 1 (got {chunks_per_job})"
            )
        self.jobs = resolve_jobs(jobs)
        self.chunks_per_job = chunks_per_job

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Plain fan-out.  A broken pool (worker died mid-batch)
        degrades to serial re-execution of the unfinished chunks; run
        exceptions propagate to the caller unchanged."""
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 and len(items) <= 1:
            return [fn(item) for item in items]
        chunks = chunked(items, self.jobs * self.chunks_per_job)
        results: list[R] = []
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            degraded = False
            for future, chunk in zip(futures, chunks):
                if degraded:
                    results.extend(fn(item) for item in chunk)
                    continue
                try:
                    results.extend(future.result())
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:
                    if not _is_pool_infrastructure_error(error):
                        raise
                    _account_degradation(get_telemetry())
                    degraded = True
                    results.extend(fn(item) for item in chunk)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results

    def map_guarded(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        retry: RetryPolicy | None = None,
        *,
        labels: Sequence[object] | None = None,
        fingerprints: Sequence[str | None] | None = None,
        on_result: Callable[[int, GuardedOutcome], None] | None = None,
        telemetry: Telemetry | None = None,
    ) -> list[GuardedOutcome]:
        """Fault-isolated fan-out with graceful degradation.

        Retries run worker-side; a chunk whose worker crashes, wedges
        past its wall-clock budget, or cannot even unpickle its task is
        re-executed serially in the parent, so every item always ends
        up with a :class:`GuardedOutcome`.  *on_result* fires per item
        as its chunk completes (incremental checkpoint flush).

        Each worker chunk captures what its runs record ambiently and
        ships the snapshot back with the outcomes; the snapshot is
        merged into *telemetry* (ambient sink when omitted) as the
        chunk completes, so worker-side metrics — retry counters,
        solver timers, latency histograms — survive the pool boundary.
        Degraded chunks re-run in-process under the same capture, so
        fault-degraded and healthy chunks account identically.
        """
        retry = retry or RetryPolicy()
        sink = telemetry or get_telemetry()
        entries = _normalize_guard_inputs(items, labels, fingerprints)
        if not entries:
            return []
        serial = SerialExecutor()
        if self.jobs == 1 or len(entries) <= 1:
            return serial.map_guarded(
                fn,
                [item for _, item, _, _ in entries],
                retry,
                labels=[label for _, _, label, _ in entries],
                fingerprints=[fp for _, _, _, fp in entries],
                on_result=on_result,
                telemetry=sink,
            )
        chunks = chunked(entries, self.jobs * self.chunks_per_job)
        outcomes: list[GuardedOutcome | None] = [None] * len(entries)
        budget = self._chunk_budget_s(retry)
        degraded = False
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            futures = [
                pool.submit(_run_chunk_guarded_captured, fn, chunk, retry)
                for chunk in chunks
            ]
            for future, chunk in zip(futures, chunks):
                try:
                    timeout = budget * len(chunk) if budget else None
                    pairs, worker_payload = future.result(timeout=timeout)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:
                    # Worker crash (BrokenProcessPool), wedged worker
                    # (TimeoutError) or task transfer failure: run this
                    # chunk in-process instead of losing the batch.
                    if not degraded:
                        degraded = True
                        _account_degradation(sink)
                    sink.increment("engine.pool.chunk_failures")
                    with capture_telemetry() as local:
                        pairs = _run_chunk_guarded(fn, chunk, retry)
                        worker_payload = local.merge_payload()
                sink.merge(worker_payload)
                for index, outcome in pairs:
                    outcomes[index] = outcome
                    if on_result is not None:
                        on_result(index, outcome)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes  # type: ignore[return-value]

    def _chunk_budget_s(self, retry: RetryPolicy) -> float | None:
        """Wall-clock allowance per chunk item before the pool declares
        the worker wedged (None disables the watchdog, matching
        ``run_timeout_s=None``)."""
        if retry.run_timeout_s is None:
            return None
        backoff_total = sum(
            retry.backoff_s(attempt)
            for attempt in range(1, retry.max_retries + 1)
        )
        per_item = retry.run_timeout_s * (retry.max_retries + 1)
        return per_item + backoff_total + POOL_GRACE_S

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessExecutor(jobs={self.jobs})"


def _is_pool_infrastructure_error(error: BaseException) -> bool:
    """True when a future failed because of the *pool* (dead worker,
    lost task, unpicklable transfer) rather than the mapped function
    itself raising."""
    from concurrent.futures import BrokenExecutor
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, (BrokenExecutor, BrokenProcessPool))


def _account_degradation(telemetry: Telemetry) -> None:
    telemetry.increment("engine.pool.degraded_to_serial")


#: Union type for annotations.
Executor = SerialExecutor | ProcessExecutor


def make_executor(
    name: str | None = None, jobs: int | None = None
) -> Executor:
    """Build a backend from a name (explicit > env > serial)."""
    name = (name or default_executor_name()).strip().lower()
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(jobs)
    raise ConfigError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )
