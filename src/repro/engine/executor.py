"""Run-execution backends: serial and chunked process-pool fan-out.

Independent simulation runs (a frequency sweep's points, an exhaustive
mapping enumeration, a chip population, a GA generation) have no data
dependencies, so they fan out over a :class:`ProcessPoolExecutor` when
more than one core is available.  Work is dispatched in contiguous
chunks so each worker process amortizes its one-time setup (rebuilding
the chip's modal decomposition) over many runs.

Backend selection:

* explicit ``executor=``/``jobs=`` arguments win;
* else ``$REPRO_EXECUTOR`` (``serial``/``process``) and ``$REPRO_JOBS``;
* else serial — on a single-core host the pool only adds overhead.

Determinism does not depend on the backend: every run derives its
random streams by name (:mod:`repro.rng`), so serial and process
execution produce bit-identical results (guarded by
``tests/engine/test_determinism.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import ConfigError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_jobs",
    "default_executor_name",
    "chunked",
]

T = TypeVar("T")
R = TypeVar("R")

EXECUTOR_NAMES = ("serial", "process")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else the
    machine's CPU count."""
    if jobs is not None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1 (got {jobs})")
        return jobs
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer (got {env!r})")
        if parsed < 1:
            raise ConfigError(f"REPRO_JOBS must be >= 1 (got {parsed})")
        return parsed
    return os.cpu_count() or 1


def default_executor_name() -> str:
    """Backend used when none is requested explicitly."""
    name = os.environ.get("REPRO_EXECUTOR", "serial").strip().lower()
    if name not in EXECUTOR_NAMES:
        raise ConfigError(
            f"REPRO_EXECUTOR must be one of {EXECUTOR_NAMES} (got {name!r})"
        )
    return name


def chunked(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split *items* into at most *n_chunks* contiguous, near-equal
    chunks (empty chunks are dropped)."""
    if n_chunks < 1:
        raise ConfigError(f"n_chunks must be >= 1 (got {n_chunks})")
    n_chunks = min(n_chunks, len(items)) or 1
    size, extra = divmod(len(items), n_chunks)
    chunks: list[list[T]] = []
    start = 0
    for i in range(n_chunks):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            chunks.append(list(items[start:stop]))
        start = stop
    return chunks


class SerialExecutor:
    """In-process, in-order execution (the default backend)."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SerialExecutor()"


def _run_chunk(fn: Callable, chunk: list) -> list:
    """Worker-side driver: apply *fn* to each item of one chunk."""
    return [fn(item) for item in chunk]


class ProcessExecutor:
    """Chunked fan-out over a :class:`ProcessPoolExecutor`.

    ``fn`` and the items must be picklable (module-level callables or
    dataclass instances).  Results come back in input order.
    """

    name = "process"

    def __init__(self, jobs: int | None = None, chunks_per_job: int = 1):
        if chunks_per_job < 1:
            raise ConfigError(
                f"chunks_per_job must be >= 1 (got {chunks_per_job})"
            )
        self.jobs = resolve_jobs(jobs)
        self.chunks_per_job = chunks_per_job

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 and len(items) <= 1:
            return [fn(item) for item in items]
        chunks = chunked(items, self.jobs * self.chunks_per_job)
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            results: list[R] = []
            for future in futures:
                results.extend(future.result())
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProcessExecutor(jobs={self.jobs})"


#: Union type for annotations.
Executor = SerialExecutor | ProcessExecutor


def make_executor(
    name: str | None = None, jobs: int | None = None
) -> Executor:
    """Build a backend from a name (explicit > env > serial)."""
    name = (name or default_executor_name()).strip().lower()
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(jobs)
    raise ConfigError(
        f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
    )
