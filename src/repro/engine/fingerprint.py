"""Stable content fingerprints for simulation runs.

A run is fully determined by (a) the chip — its configuration plus the
``chip_id`` that selects the process-variation draw, (b) the per-core
current programs, (c) the run options, and — only when some program
draws random phases — (d) the run tag and phase seed.  The fingerprint
hashes a canonical textual form of exactly those inputs, so two runs
with the same fingerprint produce bit-identical :class:`RunResult`s and
can share one cache entry, across sessions and across processes.

Fully synchronized (or steady) mappings are *deterministic*: the runner
never touches its RNG for them, so the run tag and the phase seed are
excluded from their fingerprint.  That is what lets, e.g., the Fig. 14
two-mapping comparison reuse runs already executed by the Fig. 15
exhaustive enumeration — same chip, same programs, different tags.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Sequence

import numpy as np

from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram

__all__ = [
    "canonical",
    "chip_fingerprint",
    "run_fingerprint",
    "is_deterministic_mapping",
    "content_key",
]


def canonical(value: object) -> str:
    """A deterministic textual form of *value* for hashing.

    Dataclasses are expanded field by field (class name included), dicts
    are sorted by key, sequences are expanded element-wise, numpy
    scalars collapse to Python numbers.  The result is stable across
    processes (no ``id()``/``hash()`` involvement).
    """
    if is_dataclass(value) and not isinstance(value, type):
        parts = ",".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in fields(value)
        )
        return f"{type(value).__name__}({parts})"
    if isinstance(value, dict):
        items = ",".join(
            f"{canonical(k)}:{canonical(v)}" for k, v in sorted(value.items())
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in value) + "]"
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return canonical(value.item())
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def content_key(*parts: object) -> str:
    """SHA-256 hex digest of the canonical form of *parts* — the
    generic content-addressing primitive (the run fingerprint below and
    e.g. the GA fitness cache both build on it)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def chip_fingerprint(chip: Chip) -> str:
    """Canonical identity of one chip instance: its full configuration
    (PDN, core, skitter, seeds, SSN weights) plus the variation-draw
    ``chip_id``."""
    return canonical((type(chip).__name__, chip.config, chip.chip_id))


def is_deterministic_mapping(
    mapping: Sequence[CurrentProgram | None],
) -> bool:
    """True when no program in *mapping* draws random phases — every
    bursting program is TOD-synchronized, so the run is independent of
    the run tag and the phase seed."""
    return not any(
        program is not None and program.is_phase_randomized
        for program in mapping
    )


def run_fingerprint(
    chip_fp: str,
    mapping: Sequence[CurrentProgram | None],
    options: RunOptions,
    run_tag: object,
) -> str:
    """The content address of one run.

    ``options.seed`` only feeds the phase draws, so it is folded into
    the phase part and dropped entirely for deterministic mappings.
    """
    options_sig = {
        f.name: getattr(options, f.name)
        for f in fields(options)
        if f.name != "seed"
    }
    if is_deterministic_mapping(mapping):
        phase_part: object = "deterministic"
    else:
        phase_part = ("tag", run_tag, "seed", options.seed)
    return content_key(chip_fp, list(mapping), options_sig, phase_part)
