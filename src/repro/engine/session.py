"""The shared run-session layer: one instrumented hot path for every
simulation sweep.

A :class:`SimulationSession` binds a chip and one set of
:class:`RunOptions` and exposes :meth:`run` / :meth:`run_many`.  Every
consumer layer — the experiment drivers, the §V sensitivity sweeps, the
exhaustive mapping enumeration, the Vmin protocol, the mitigation
mechanisms — executes runs through a session instead of constructing
:class:`ChipRunner`s directly.  The session adds, around the raw
runner:

* **content-addressed caching** — each run's fingerprint (chip netlist
  + variation seed, per-core program signatures, run options, phase
  seed where applicable) addresses a shared two-tier
  :class:`ResultCache`, so identical configurations are solved once per
  campaign (and once per machine, with the disk tier);
* **parallel fan-out** — :meth:`run_many` dispatches cache misses in
  contiguous chunks over a process pool when a parallel backend is
  selected (``--jobs``/``$REPRO_JOBS``), rebuilding the chip once per
  worker;
* **telemetry** — run counts, cache hits/misses, solver-call counts and
  solver wall-clock, surfaced by ``repro-noise run --profile`` and the
  experiment exporter.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..machine.chip import Chip, ChipConfig, N_CORES
from ..machine.runner import ChipRunner, RunOptions, RunResult
from ..machine.workload import CurrentProgram
from ..telemetry import Telemetry, get_telemetry
from .cache import ResultCache, global_cache
from .executor import Executor, SerialExecutor, chunked, make_executor
from .fingerprint import chip_fingerprint, run_fingerprint

__all__ = ["SimulationSession"]

Mapping = Sequence[CurrentProgram | None]


class SimulationSession:
    """Cached, instrumented, parallelizable execution of mapping runs
    on one chip.

    Parameters
    ----------
    chip:
        The chip instance runs execute on.
    options:
        Run options shared by every run of this session (fresh defaults
        when omitted).
    cache:
        Result cache; the process-wide shared cache when omitted, so
        independent sessions over the same chip reuse each other's
        runs.  Pass ``cache=None`` explicitly via a private
        :class:`ResultCache` to isolate a session (tests).
    executor:
        Fan-out backend for :meth:`run_many` (``"serial"``/
        ``"process"`` or a prebuilt executor); environment default when
        omitted.
    telemetry:
        Telemetry sink (process default when omitted).
    """

    def __init__(
        self,
        chip: Chip,
        options: RunOptions | None = None,
        *,
        cache: ResultCache | None = None,
        executor: Executor | str | None = None,
        jobs: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.chip = chip
        self.options = options or RunOptions()
        self.cache = cache if cache is not None else global_cache()
        if isinstance(executor, (str, type(None))):
            executor = make_executor(executor, jobs)
        self.executor = executor
        self.telemetry = telemetry or get_telemetry()
        self.runner = ChipRunner(chip)
        self._chip_fp = chip_fingerprint(chip)

    def derive(self, **option_overrides) -> "SimulationSession":
        """A sibling session over the same chip, cache, executor and
        telemetry, with *option_overrides* applied to a copy of the run
        options (the caller's options are never mutated)."""
        return SimulationSession(
            self.chip,
            replace(self.options, **option_overrides),
            cache=self.cache,
            executor=self.executor,
            telemetry=self.telemetry,
        )

    # -- single runs ----------------------------------------------------
    def fingerprint(self, mapping: Mapping, run_tag: object = "run") -> str:
        """Content address of one run under this session."""
        return run_fingerprint(self._chip_fp, mapping, self.options, run_tag)

    def run(self, mapping: Mapping, run_tag: object = "run") -> RunResult:
        """Execute *mapping* (or replay it from the cache)."""
        self.telemetry.increment("engine.runs")
        key = self.fingerprint(mapping, run_tag)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        with self.telemetry.time("engine.run_seconds"):
            result = self.runner.run(mapping, self.options, run_tag)
        self._account_executed(1)
        self.cache.put(key, result)
        return result

    # -- batched runs ---------------------------------------------------
    def run_many(
        self,
        mappings: Sequence[Mapping],
        tags: Sequence[object] | None = None,
    ) -> list[RunResult]:
        """Execute a batch of independent runs, in input order.

        Cache hits are replayed; distinct misses are deduplicated and
        fanned out over the session executor (chunked, so each worker
        process rebuilds the chip once per batch).
        """
        mappings = [list(m) for m in mappings]
        if tags is None:
            tags = list(range(len(mappings)))
        if len(tags) != len(mappings):
            raise ValueError("tags and mappings must have equal length")
        self.telemetry.increment("engine.runs", len(mappings))

        results: list[RunResult | None] = [None] * len(mappings)
        pending: dict[str, list[int]] = {}
        for i, (mapping, tag) in enumerate(zip(mappings, tags)):
            key = self.fingerprint(mapping, tag)
            cached = self.cache.get(key)
            if cached is not None:
                results[i] = cached
            else:
                pending.setdefault(key, []).append(i)

        if pending:
            order = list(pending)
            work = [
                (key, mappings[pending[key][0]], tags[pending[key][0]])
                for key in order
            ]
            executed = self._execute_misses(work)
            for key, result in zip(order, executed):
                self.cache.put(key, result)
                for i in pending[key]:
                    results[i] = result
        return results  # type: ignore[return-value]

    # -- internals ------------------------------------------------------
    def _account_executed(self, n_runs: int) -> None:
        self.telemetry.increment("engine.runs_executed", n_runs)
        # One LTI superposition solve per (segment, observed core).
        self.telemetry.increment(
            "engine.solver_calls", n_runs * self.options.segments * N_CORES
        )

    def _execute_misses(
        self, work: list[tuple[str, Mapping, object]]
    ) -> list[RunResult]:
        """Run the deduplicated misses; returns results in *work* order."""
        serial = (
            isinstance(self.executor, SerialExecutor)
            or self.executor.jobs <= 1
            or len(work) <= 1
        )
        with self.telemetry.time("engine.run_seconds"):
            if serial:
                results = [
                    self.runner.run(mapping, self.options, tag)
                    for _, mapping, tag in work
                ]
            else:
                batches = chunked(work, self.executor.jobs)
                specs = [
                    _BatchSpec(
                        config=self.chip.config,
                        chip_id=self.chip.chip_id,
                        options=self.options,
                        jobs=[(m, t) for _, m, t in batch],
                    )
                    for batch in batches
                ]
                nested = self.executor.map(_execute_batch, specs)
                results = [result for batch in nested for result in batch]
        self._account_executed(len(work))
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulationSession(chip={self.chip!r}, "
            f"executor={self.executor!r})"
        )


# -- worker side ---------------------------------------------------------

class _BatchSpec:
    """Picklable description of one worker batch."""

    def __init__(
        self,
        config: ChipConfig,
        chip_id: int,
        options: RunOptions,
        jobs: list[tuple[list, object]],
    ):
        self.config = config
        self.chip_id = chip_id
        self.options = options
        self.jobs = jobs


#: Per-worker-process chip memo: rebuilding the modal decomposition is
#: the expensive part of worker startup, so keep chips across batches.
_WORKER_CHIPS: dict[str, Chip] = {}


def _execute_batch(spec: _BatchSpec) -> list[RunResult]:
    """Worker-side execution of one batch (top-level: picklable)."""
    probe = Chip(spec.config, spec.chip_id)
    key = chip_fingerprint(probe)
    chip = _WORKER_CHIPS.setdefault(key, probe)
    runner = ChipRunner(chip)
    return [
        runner.run(mapping, spec.options, tag) for mapping, tag in spec.jobs
    ]
