"""The shared run-session layer: one instrumented hot path for every
simulation sweep.

A :class:`SimulationSession` binds a chip and one set of
:class:`RunOptions` and exposes :meth:`run` / :meth:`run_many`.  Every
consumer layer — the experiment drivers, the §V sensitivity sweeps, the
exhaustive mapping enumeration, the Vmin protocol, the mitigation
mechanisms — executes runs through a session instead of constructing
:class:`ChipRunner`s directly.  The session adds, around the raw
runner:

* **content-addressed caching** — each run's fingerprint (chip netlist
  + variation seed, per-core program signatures, run options, phase
  seed where applicable) addresses a shared two-tier
  :class:`ResultCache`, so identical configurations are solved once per
  campaign (and once per machine, with the disk tier);
* **parallel fan-out** — :meth:`run_many` dispatches cache misses in
  contiguous chunks over a process pool when a parallel backend is
  selected (``--jobs``/``$REPRO_JOBS``), rebuilding the chip once per
  worker;
* **fault isolation** — every run executes under a
  :class:`~repro.engine.resilience.RetryPolicy` (bounded retry with
  backoff, optional per-run timeout); a run that still fails surfaces
  as a structured :class:`~repro.engine.resilience.RunFailure` and, by
  default, one consolidated :class:`~repro.errors.ExecutionError` — a
  crashing worker never takes the rest of the batch down with it, and
  a broken process pool degrades to serial execution;
* **checkpointing** — finished runs are flushed to the (atomic-write)
  disk cache *as they complete*, not at batch end, so a campaign
  killed midway resumes by replaying the finished points and
  recomputing only the rest;
* **telemetry** — run counts, cache hits/misses, retry/failure/
  degradation counters, solver-call counts and solver wall-clock,
  surfaced by ``repro-noise run --profile`` and the experiment
  exporter.

Fault injection (``$REPRO_FAULTS`` or an explicit ``faults=`` plan)
wraps the session executor in a
:class:`~repro.faults.FaultyExecutor`, which is how the engine's test
suite and the CI fault-injection job prove all of the above.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Sequence

from ..errors import ConfigError, ExecutionError, SolverError
from ..machine.chip import Chip, ChipConfig
from ..machine.runner import ChipRunner, RunOptions, RunResult
from ..machine.workload import CurrentProgram
from ..obs import Telemetry, get_telemetry
from .cache import ResultCache, global_cache
from .executor import Executor, SerialExecutor, chunked, make_executor
from .fingerprint import canonical, chip_fingerprint, run_fingerprint
from .resilience import GuardedOutcome, RetryPolicy, RunFailure

__all__ = ["SimulationSession", "BACKENDS", "resolve_backend_name"]

Mapping = Sequence[CurrentProgram | None]

#: ``on_failure`` modes: raise one consolidated ExecutionError, or
#: return RunFailure records in the results.
FAILURE_MODES = ("raise", "collect")

#: Solve-path choices: ``auto`` compiles the chip's batched kernel and
#: falls back to the reference superposition solver when compilation
#: fails; the explicit names force one path.  The choice never enters
#: run fingerprints — backend must not change the cache key.
BACKENDS = ("auto", "reference", "batched")

#: Contiguous runs per batched-dispatch unit: the cache-checkpoint
#: granularity of the batched backend (each batch flushes its finished
#: runs to the cache before the next batch starts).
_BATCH_RUNS = 32

_UNSET = object()


def resolve_backend_name(backend: str | None) -> str:
    """Normalize and validate a backend choice: explicit argument,
    else ``$REPRO_BACKEND`` (the global ``--backend`` CLI flag exports
    it), else ``auto``."""
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", "").strip().lower() or "auto"
    if backend not in BACKENDS:
        raise ConfigError(
            f"backend must be one of {BACKENDS} (got {backend!r})"
        )
    return backend


class SimulationSession:
    """Cached, instrumented, fault-tolerant, parallelizable execution
    of mapping runs on one chip.

    Parameters
    ----------
    chip:
        The chip instance runs execute on.
    options:
        Run options shared by every run of this session (fresh defaults
        when omitted).
    cache:
        Result cache; the process-wide shared cache when omitted, so
        independent sessions over the same chip reuse each other's
        runs.  Pass ``cache=None`` explicitly via a private
        :class:`ResultCache` to isolate a session (tests).
    executor:
        Fan-out backend for :meth:`run_many` (``"serial"``/
        ``"process"`` or a prebuilt executor); environment default when
        omitted.
    retry:
        Fault-isolation policy (max retries, backoff, per-run
        timeout); ``$REPRO_MAX_RETRIES``/``$REPRO_RUN_TIMEOUT`` (the
        ``--max-retries``/``--run-timeout`` CLI flags) when omitted.
    on_failure:
        ``"raise"`` (default): a run that exhausts its retries raises
        one :class:`~repro.errors.ExecutionError` carrying every
        :class:`~repro.engine.resilience.RunFailure` of the batch.
        ``"collect"``: failures are returned in-place in the result
        list instead, so a sweep can keep the points that worked.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injected around the
        executor; ``$REPRO_FAULTS`` when omitted (the CI
        fault-injection job sets it).
    telemetry:
        Telemetry sink (process default when omitted).
    backend:
        Solve path: ``"auto"`` (default; ``$REPRO_BACKEND`` when set)
        compiles the chip's batched kernel and falls back to the
        reference solver if compilation fails, ``"reference"`` and
        ``"batched"`` force one path (an explicit ``"batched"``
        propagates the compile error).  The backend never enters run
        fingerprints, so either path reads and writes the same cache
        entries.
    """

    def __init__(
        self,
        chip: Chip,
        options: RunOptions | None = None,
        *,
        cache: ResultCache | None = None,
        executor: Executor | str | None = None,
        jobs: int | None = None,
        retry: RetryPolicy | None = None,
        on_failure: str = "raise",
        faults: object = _UNSET,
        telemetry: Telemetry | None = None,
        backend: str | None = None,
    ):
        self.chip = chip
        self.options = options or RunOptions()
        self.backend = resolve_backend_name(backend)
        self._resolved_backend: str | None = None
        self.cache = cache if cache is not None else global_cache()
        if isinstance(executor, (str, type(None))):
            executor = make_executor(executor, jobs)
        if on_failure not in FAILURE_MODES:
            raise ConfigError(
                f"on_failure must be one of {FAILURE_MODES} "
                f"(got {on_failure!r})"
            )
        self.retry = retry or RetryPolicy.from_env()
        self.on_failure = on_failure
        self.executor = self._wire_faults(executor, faults)
        self.telemetry = telemetry or get_telemetry()
        self.runner = ChipRunner(chip)
        self._chip_fp = chip_fingerprint(chip)

    @staticmethod
    def _wire_faults(executor, faults):
        """Wrap *executor* in a FaultyExecutor when a plan is supplied
        (explicitly or via ``$REPRO_FAULTS``)."""
        from ..faults import FaultPlan, FaultyExecutor

        if isinstance(executor, FaultyExecutor):
            return executor
        plan = FaultPlan.from_env() if faults is _UNSET else faults
        if plan is not None and plan.active:
            return FaultyExecutor(executor, plan)
        return executor

    def derive(self, **option_overrides) -> "SimulationSession":
        """A sibling session over the same chip, cache, executor and
        telemetry, with *option_overrides* applied to a copy of the run
        options (the caller's options are never mutated)."""
        return SimulationSession(
            self.chip,
            replace(self.options, **option_overrides),
            cache=self.cache,
            executor=self.executor,
            retry=self.retry,
            on_failure=self.on_failure,
            faults=None,
            telemetry=self.telemetry,
            backend=self.backend,
        )

    # -- backend resolution ---------------------------------------------
    def _resolve_backend(self) -> str:
        """The concrete solve path (``"reference"`` or ``"batched"``)
        this session executes with.

        Lazy and resolved at most once: ``"auto"`` tries to compile the
        chip's kernel (memoized per chip fingerprint, so a warm process
        pays nothing) and falls back to the reference solver when
        compilation fails its self-check; an explicit ``"batched"``
        propagates the :class:`~repro.errors.SolverError` instead.
        """
        if self._resolved_backend is None:
            if self.backend == "reference":
                self._resolved_backend = "reference"
            else:
                try:
                    with self.telemetry.time("engine.kernel.compile_seconds"):
                        self.chip.compiled_kernel
                    self._resolved_backend = "batched"
                except SolverError as error:
                    if self.backend == "batched":
                        raise
                    self.telemetry.increment("engine.kernel.fallbacks")
                    self.telemetry.emit(
                        "kernel.fallback",
                        chip=self.chip.chip_id,
                        error=f"{type(error).__name__}: {error}",
                    )
                    self._resolved_backend = "reference"
        return self._resolved_backend

    # -- single runs ----------------------------------------------------
    def fingerprint(self, mapping: Mapping, run_tag: object = "run") -> str:
        """Content address of one run under this session."""
        return run_fingerprint(self._chip_fp, mapping, self.options, run_tag)

    def run(self, mapping: Mapping, run_tag: object = "run") -> RunResult:
        """Execute *mapping* (or replay it from the cache).

        Under ``on_failure="collect"`` a run that exhausted its retry
        budget returns its :class:`RunFailure` record instead of a
        result.
        """
        self.telemetry.increment("engine.runs")
        key = self.fingerprint(mapping, run_tag)
        cached = self.cache.get(key)
        if cached is not None:
            self.telemetry.emit("run.cached", run=run_tag, fingerprint=key)
            return cached
        self.telemetry.emit("run.scheduled", run=run_tag, fingerprint=key)
        return self._execute_and_cache([(key, list(mapping), run_tag)])[0]

    # -- batched runs ---------------------------------------------------
    def run_many(
        self,
        mappings: Sequence[Mapping],
        tags: Sequence[object] | None = None,
    ) -> list[RunResult]:
        """Execute a batch of independent runs, in input order.

        Cache hits are replayed; distinct misses are deduplicated and —
        all addressed to this session's chip fingerprint — dispatched
        as contiguous batches through the compiled kernel on the
        batched backend, or fanned out over the session executor
        (chunked, so each worker process rebuilds the chip once per
        batch) otherwise.  Finished runs are checkpointed to the cache
        as they complete, so an interrupted batch resumes from where it
        died.
        """
        mappings = [list(m) for m in mappings]
        if tags is None:
            tags = list(range(len(mappings)))
        if len(tags) != len(mappings):
            raise ValueError("tags and mappings must have equal length")
        self.telemetry.increment("engine.runs", len(mappings))

        results: list[RunResult | RunFailure | None] = [None] * len(mappings)
        pending: dict[str, list[int]] = {}
        with self.telemetry.span("session.lookup", runs=len(mappings)):
            for i, (mapping, tag) in enumerate(zip(mappings, tags)):
                key = self.fingerprint(mapping, tag)
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                    self.telemetry.emit(
                        "run.cached", run=tag, fingerprint=key
                    )
                else:
                    if key not in pending:
                        self.telemetry.emit(
                            "run.scheduled", run=tag, fingerprint=key
                        )
                    pending.setdefault(key, []).append(i)

        if pending:
            order = list(pending)
            work = [
                (key, mappings[pending[key][0]], tags[pending[key][0]])
                for key in order
            ]
            executed = self._execute_and_cache(work)
            for key, result in zip(order, executed):
                for i in pending[key]:
                    results[i] = result
        return results  # type: ignore[return-value]

    # -- internals ------------------------------------------------------
    def _account_executed(self, n_runs: int) -> None:
        self.telemetry.increment("engine.runs_executed", n_runs)
        # One LTI superposition solve per (segment, observed core).
        self.telemetry.increment(
            "engine.solver_calls",
            n_runs * self.options.segments * self.chip.n_cores,
        )

    def _execute_and_cache(
        self, work: list[tuple[str, Mapping, object]]
    ) -> list[RunResult | RunFailure]:
        """Run the deduplicated misses under the retry policy; returns
        results (or failure records) in *work* order.

        Every finished run is flushed to the cache the moment its
        chunk completes — the incremental checkpoint that makes a
        killed campaign resumable — and failed runs are *not* cached,
        so a later invocation recomputes exactly the unfinished points.
        """
        keys = [key for key, _, _ in work]
        labels = [tag for _, _, tag in work]
        backend = self._resolve_backend()
        run_fn = _RunItem(
            self.chip.config, self.chip.chip_id, self.options, backend
        )
        # Pre-seed the worker-chip memo so in-process execution (the
        # serial backend, or a degraded pool) reuses this session's
        # already-built chip instead of re-deriving the modal model.
        _WORKER_CHIPS.setdefault(run_fn.chip_key, self.chip)
        telemetry = self.telemetry

        def flush(index: int, outcome) -> None:
            # Fires per run as its chunk completes, so the disk-cache
            # checkpoint, the latency histograms and the event log all
            # advance incrementally — a killed campaign leaves both a
            # resumable cache and a readable trace.
            if outcome.ok:
                self.cache.put(keys[index], outcome.value)
            telemetry.observe("engine.run.seconds", outcome.duration_s)
            telemetry.observe(
                f"engine.run.{backend}.seconds", outcome.duration_s
            )
            telemetry.observe("engine.run.attempts", outcome.attempts)
            if outcome.attempts > 1:
                telemetry.emit(
                    "run.retried",
                    run=labels[index],
                    fingerprint=keys[index],
                    retries=outcome.attempts - 1,
                )
            if outcome.ok:
                telemetry.emit(
                    "run.completed",
                    run=labels[index],
                    fingerprint=keys[index],
                    dur_s=round(outcome.duration_s, 6),
                    attempts=outcome.attempts,
                    worker=outcome.worker,
                )
            else:
                telemetry.emit(
                    "run.failed",
                    run=labels[index],
                    fingerprint=keys[index],
                    dur_s=round(outcome.duration_s, 6),
                    attempts=outcome.attempts,
                    worker=outcome.worker,
                    error=f"{outcome.failure.error_type}: "
                    f"{outcome.failure.message}",
                )

        for key, _, tag in work:
            telemetry.emit("run.started", run=tag, fingerprint=key)
        with telemetry.span("session.execute", runs=len(work)):
            with telemetry.time("engine.run_seconds"):
                if self._batch_dispatch_eligible(backend, len(work)):
                    outcomes = self._dispatch_batched(work, run_fn, flush)
                else:
                    outcomes = self.executor.map_guarded(
                        run_fn,
                        [
                            (key, list(mapping), tag)
                            for key, mapping, tag in work
                        ],
                        self.retry,
                        labels=labels,
                        fingerprints=keys,
                        on_result=flush,
                        telemetry=telemetry,
                    )

        retries = sum(outcome.attempts - 1 for outcome in outcomes)
        if retries:
            self.telemetry.increment("engine.retries", retries)
        timeouts = sum(outcome.timeouts for outcome in outcomes)
        if timeouts:
            self.telemetry.increment("engine.timeouts", timeouts)
        failures = [o.failure for o in outcomes if not o.ok]
        self._account_executed(len(work) - len(failures))
        if failures:
            self.telemetry.increment("engine.failures", len(failures))
            if self.on_failure == "raise":
                first = failures[0]
                error = ExecutionError(
                    f"{len(failures)} of {len(work)} run(s) failed "
                    f"permanently; first: {first.describe()}",
                    failures,
                )
                raise error from first.exception
        return [o.value if o.ok else o.failure for o in outcomes]

    def _batch_dispatch_eligible(self, backend: str, n_runs: int) -> bool:
        """Batched dispatch applies to multi-run miss sets on the
        batched backend under plain in-process execution.  Wrapped
        executors (fault injection) and process pools keep the per-run
        guarded path — pools already amortize kernel build per worker,
        and fault plans target the executor boundary."""
        return (
            backend == "batched"
            and n_runs > 1
            and type(self.executor) is SerialExecutor
        )

    def _dispatch_batched(
        self,
        work: list[tuple[str, Mapping, object]],
        run_fn: "_RunItem",
        flush,
    ) -> list[GuardedOutcome]:
        """Dispatch cache misses as contiguous batches through the
        chip's compiled kernel — grouped by the chip fingerprint every
        run of this session shares — instead of run-at-a-time guarded
        calls.

        Per-run semantics are preserved relative to the guarded path:

        * **cache checkpoints** — each batch flushes every finished run
          to the cache before the next batch starts (granularity ≤
          ``_BATCH_RUNS`` runs, incremental within the miss set);
        * **retry semantics** — a batch that raises degrades to the
          per-run guarded path (full retry policy, structured
          failures) for exactly its runs;
        * **telemetry** — per-run completion events and latency
          histograms fire as usual, plus one ``session.batch`` event
          per batch.
        """
        kernel = self.chip.compiled_kernel
        telemetry = self.telemetry
        outcomes: list[GuardedOutcome | None] = [None] * len(work)
        n_batches = -(-len(work) // _BATCH_RUNS)
        for batch in chunked(list(enumerate(work)), n_batches):
            indices = [index for index, _ in batch]
            mappings = [list(mapping) for _, (_, mapping, _) in batch]
            tags = [tag for _, (_, _, tag) in batch]
            start = time.perf_counter()
            try:
                batch_results = self.runner.run_batch(
                    mappings, self.options, run_tags=tags, kernel=kernel
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                telemetry.increment("engine.batch.degraded")
                telemetry.emit(
                    "session.batch.degraded",
                    runs=len(batch),
                    error=f"{type(error).__name__}: {error}",
                )
                guarded = self.executor.map_guarded(
                    run_fn,
                    [
                        (key, list(mapping), tag)
                        for _, (key, mapping, tag) in batch
                    ],
                    self.retry,
                    labels=tags,
                    fingerprints=[key for _, (key, _, _) in batch],
                    on_result=lambda j, outcome: flush(indices[j], outcome),
                    telemetry=telemetry,
                )
                for index, outcome in zip(indices, guarded):
                    outcomes[index] = outcome
                continue
            duration = time.perf_counter() - start
            per_run = duration / len(batch)
            telemetry.emit(
                "session.batch",
                runs=len(batch),
                chip=self._chip_fp[:12],
                dur_s=round(duration, 6),
                backend="batched",
            )
            for index, result in zip(indices, batch_results):
                # Same per-run solver accounting as the guarded path,
                # so batched and per-run dispatch report identical
                # counters (worker-telemetry parity).
                telemetry.increment("engine.solver.invocations")
                telemetry.observe("engine.solver.seconds", per_run)
                outcome = GuardedOutcome(
                    value=result,
                    duration_s=per_run,
                    worker=os.getpid(),
                )
                outcomes[index] = outcome
                flush(index, outcome)
        return outcomes  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulationSession(chip={self.chip!r}, "
            f"executor={self.executor!r})"
        )


# -- worker side ---------------------------------------------------------

#: Per-worker-process chip memo: rebuilding the modal decomposition is
#: the expensive part of worker startup, so keep chips across batches.
_WORKER_CHIPS: dict[str, Chip] = {}


class _RunItem:
    """Picklable per-run callable: ``(fingerprint, mapping, tag)`` →
    :class:`RunResult`, rebuilding the chip at most once per worker
    process (memoized by chip identity, computed without constructing
    a probe chip)."""

    def __init__(
        self,
        config: ChipConfig,
        chip_id: int,
        options: RunOptions,
        backend: str = "reference",
    ):
        self.config = config
        self.chip_id = chip_id
        self.options = options
        self.backend = backend
        self.chip_key = canonical((Chip.__name__, config, chip_id))

    def __call__(self, item: tuple[str, list, object]) -> RunResult:
        _, mapping, tag = item
        chip = _WORKER_CHIPS.get(self.chip_key)
        # Recorded into the *ambient* telemetry: inside a pool worker
        # that is the chunk's capture sink, whose snapshot merges back
        # into the session telemetry — the worker-side metrics that
        # used to vanish at the ProcessPoolExecutor boundary.
        telemetry = get_telemetry()
        if chip is None:
            with telemetry.time("engine.worker.chip_build_seconds"):
                chip = Chip(self.config, self.chip_id)
            _WORKER_CHIPS[self.chip_key] = chip
        # The compiled kernel is memoized per chip fingerprint, so a
        # pool worker compiles once per chip and reuses it across every
        # run and batch it executes.
        kernel = chip.compiled_kernel if self.backend == "batched" else None
        telemetry.increment("engine.solver.invocations")
        start = time.perf_counter()
        result = ChipRunner(chip).run(mapping, self.options, tag, kernel=kernel)
        telemetry.observe(
            "engine.solver.seconds", time.perf_counter() - start
        )
        return result
