"""Campaign manifests: durable record of which points finished.

A multi-experiment CLI invocation (``repro-noise run fig7a fig9 ...``)
is a *campaign*.  Individual run results already checkpoint into the
disk cache as they complete, so re-running a killed campaign replays
the finished runs for free — but the campaign itself still needs to
know which *points* (experiments) completed so ``--resume`` can skip
them without re-entering their drivers at all.  The manifest is a tiny
JSON file, rewritten atomically after every completed point, holding
per-point status and the engine telemetry snapshot at completion time.

With campaign sharding (:mod:`repro.plan`), several *processes* may
hold manifests for slices of one campaign: each shard writes its own
manifest under a writer lock (a live concurrent writer is waited out
with bounded, deterministically jittered retries, then refused with
:class:`~repro.errors.ConcurrencyError`), and
:meth:`CampaignManifest.merge_from` folds shard manifests into one —
the bookkeeping half of the shard-merge step, next to the disk-cache
merge (:func:`repro.engine.cache.merge_cache_dirs`).

With a fleet (:mod:`repro.fleet`), one manifest is additionally the
*shared claim table*: any worker pulls unfinished runs in batches
under the writer lock (:meth:`CampaignManifest.claim_batch`), renews
its leases while executing (:meth:`CampaignManifest.renew_claims`),
and survivors steal the expired leases of dead or wedged workers.  A
run whose lease has expired under ``poison_after`` distinct workers is
benched as ``poisoned`` instead of wedging the fleet — the claim-table
analogue of the disk cache's corruption quarantine.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from ..errors import ConcurrencyError, ConfigError
from ..ioutil import atomic_write_json
from .resilience import RetryPolicy

__all__ = ["CampaignManifest", "ClaimDecision", "LOCK_RETRY"]

MANIFEST_VERSION = 1
MANIFEST_NAME = "campaign-manifest.json"

#: Point-status precedence when merging manifests: completed work wins
#: over a recorded failure, which wins over a benched (poisoned) run,
#: which wins over a mere claim or start marker.
_STATUS_RANK = {
    "complete": 4,
    "failed": 3,
    "poisoned": 2,
    "claimed": 1,
    "started": 0,
}

#: Statuses that take a point out of the claimable pool for good.
_TERMINAL = frozenset({"complete", "failed", "poisoned"})

#: Default contention policy of :meth:`CampaignManifest.writer_lock`:
#: a handful of short, deterministically jittered waits — long enough
#: for polite multi-worker claiming (fleet workers hold the lock for
#: milliseconds), short enough that two genuinely long-lived writers
#: sharing one manifest path still fail fast.
LOCK_RETRY = RetryPolicy(
    max_retries=6,
    backoff_base_s=0.02,
    backoff_factor=2.0,
    backoff_max_s=0.25,
)

#: How many distinct workers a run may kill before it is benched.
DEFAULT_POISON_AFTER = 3

_UNSET = object()


def _token_pid(token: str | None) -> int | None:
    """The pid recorded in a lock token (``pid:nonce`` or a legacy
    bare pid), or ``None`` when unparsable."""
    if not token:
        return None
    try:
        return int(token.split(":", 1)[0])
    except ValueError:
        return None


@dataclass
class ClaimDecision:
    """What one :meth:`CampaignManifest.claim_batch` call decided.

    ``claimed`` is what the worker now holds (``stolen`` is the subset
    reclaimed from expired leases); ``poisoned`` lists runs benched by
    this very call; ``pending`` counts unfinished runs currently held
    under someone else's live lease; ``remaining`` counts unfinished
    claimable runs left behind (claim again later).  The campaign is
    finished for this worker when all four are empty/zero.
    """

    claimed: list[str] = field(default_factory=list)
    stolen: list[str] = field(default_factory=list)
    poisoned: list[str] = field(default_factory=list)
    pending: int = 0
    remaining: int = 0

    @property
    def exhausted(self) -> bool:
        """True when no unfinished work is left anywhere — neither
        claimable nor under a live lease."""
        return not self.claimed and not self.pending and not self.remaining


class CampaignManifest:
    """Atomic, resumable record of a campaign's completed points.

    The file is the source of truth: every mutation reloads, applies,
    and atomically republishes, so concurrent readers (or a process
    killed mid-update) only ever see a complete manifest.  Mutating
    methods serialize through :meth:`writer_lock`, which is reentrant
    within the acquiring thread — a caller already holding the lock
    can checkpoint without deadlocking itself.
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        self.path = path
        self._lock_depth = 0
        self._owner_thread: int | None = None

    @property
    def lock_path(self) -> Path:
        return self.path.parent / (self.path.name + ".lock")

    # -- reading --------------------------------------------------------
    def load(self) -> dict:
        """The manifest payload (a fresh empty one when the file does
        not exist or is unreadable — a torn manifest must never wedge
        a resume, it just loses the skip optimization)."""
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {"version": MANIFEST_VERSION, "points": {}}
        if not isinstance(payload, dict) or "points" not in payload:
            return {"version": MANIFEST_VERSION, "points": {}}
        return payload

    @property
    def completed(self) -> set[str]:
        """Ids of points recorded as complete."""
        points = self.load()["points"]
        return {
            point_id
            for point_id, entry in points.items()
            if isinstance(entry, dict) and entry.get("status") == "complete"
        }

    def is_complete(self, point_id: str) -> bool:
        return point_id in self.completed

    def statuses(self) -> dict[str, str]:
        """Point id → status for every recorded point."""
        return {
            point_id: entry.get("status", "?")
            for point_id, entry in self.load()["points"].items()
            if isinstance(entry, dict)
        }

    # -- writing --------------------------------------------------------
    def mark_started(self, point_id: str) -> None:
        """Record that *point_id* began executing (a later resume sees
        it as unfinished and recomputes it)."""
        self._update(point_id, {"status": "started"})

    def mark_complete(self, point_id: str, meta: dict | None = None) -> None:
        """Record that *point_id* finished; *meta* (e.g. a telemetry
        snapshot) rides along for post-mortems."""
        entry: dict = {"status": "complete"}
        if meta:
            entry["meta"] = meta
        self._update(point_id, entry)

    def mark_failed(
        self, point_id: str, reason: str, worker: str | None = None
    ) -> None:
        """Record a permanent point failure (still recomputed on
        resume — a failure is by definition unfinished work)."""
        entry: dict = {"status": "failed", "reason": reason}
        if worker is not None:
            entry["worker"] = worker
        self._update(point_id, entry)

    def mark_many_complete(
        self, point_ids: list[str], worker: str | None = None
    ) -> None:
        """Record a batch of completed points in one atomic rewrite
        (what the plan executor does after each run group, instead of
        an O(n²) rewrite-per-run), under the writer lock so concurrent
        batches from different workers never lose updates.

        With a *worker*, completion is attributed to that worker id —
        the per-worker accounting the fleet fold reports — and steal
        history recorded on the prior claim entry is preserved.
        """
        if not point_ids:
            return
        with self.writer_lock():
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            for point_id in point_ids:
                entry: dict = {"status": "complete"}
                previous = payload["points"].get(point_id)
                if isinstance(previous, dict) and previous.get("steals"):
                    entry["steals"] = previous["steals"]
                if worker is not None:
                    entry["worker"] = worker
                payload["points"][point_id] = entry
            atomic_write_json(self.path, payload)

    def _update(self, point_id: str, entry: dict) -> None:
        with self.writer_lock():
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            payload["points"][point_id] = entry
            atomic_write_json(self.path, payload)

    # -- campaign identity ----------------------------------------------
    @property
    def campaign(self) -> dict | None:
        """The campaign identity recorded by :meth:`bind_campaign`
        (``None`` for a fresh or pre-sharding manifest)."""
        entry = self.load().get("campaign")
        return entry if isinstance(entry, dict) else None

    def bind_campaign(self, info: dict) -> None:
        """Record which campaign (plan fingerprint, shard) this
        manifest belongs to, so a later merge can refuse to fold
        manifests of *different* campaigns into one result.

        Rebinding to a different plan fingerprint raises
        :class:`~repro.errors.ConfigError` — a manifest path reused
        across campaigns is almost certainly an operator mistake.
        """
        current = self.campaign
        if current and current.get("plan") != info.get("plan"):
            raise ConfigError(
                f"manifest {self.path} already belongs to campaign "
                f"{current.get('plan')!r}; refusing to rebind to "
                f"{info.get('plan')!r} (use a fresh manifest path)"
            )
        with self.writer_lock():
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            payload["campaign"] = info
            atomic_write_json(self.path, payload)

    # -- concurrent writers ---------------------------------------------
    @contextmanager
    def writer_lock(
        self,
        retry: RetryPolicy | None | object = _UNSET,
        jitter_key: str | None = None,
    ) -> Iterator[None]:
        """Exclusive-writer guard for the manifest path.

        Creates ``<manifest>.lock`` with ``O_CREAT | O_EXCL`` (atomic
        on POSIX and NFS-safe enough for shard workers on one host).
        Contention with a *live* writer is retried under *retry*
        (default :data:`LOCK_RETRY`) with deterministic jitter derived
        from ``(jitter_key or pid, attempt)`` — polite multi-worker
        claiming instead of an instant refusal — and only a writer
        that stays locked through the whole budget gets
        :class:`~repro.errors.ConcurrencyError`.  ``retry=None``
        restores the fail-fast behavior.

        A lock left behind by a dead process is *broken via atomic
        rename*: every would-be breaker renames the stale lockfile
        aside to a per-pid name, so exactly one breaker wins the inode
        even when several observe the dead holder simultaneously (the
        unlink-and-recreate race this replaces let two processes both
        "acquire").  Acquisition is additionally re-verified — the
        lockfile must still hold this writer's unique token after the
        create — so a raced acquisition is detected and retried rather
        than silently shared.

        The lock is reentrant within the owning thread: nested
        ``writer_lock()`` blocks on the same instance (e.g. a
        checkpoint inside an execution that already holds the lock)
        are free.
        """
        if self._owner_thread == threading.get_ident():
            self._lock_depth += 1
            try:
                yield
            finally:
                self._lock_depth -= 1
            return
        policy = LOCK_RETRY if retry is _UNSET else retry
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}:{os.urandom(4).hex()}"
        attempts = 0
        spins = 0
        while True:
            try:
                acquired = self._try_acquire(token)
            except ConcurrencyError:
                attempts += 1
                if policy is None or attempts > policy.max_retries:
                    raise
                time.sleep(
                    policy.backoff_s(attempts)
                    * _lock_jitter(jitter_key, attempts)
                )
                continue
            if acquired:
                break
            spins += 1
            if spins > 50:  # pragma: no cover - pathological churn
                raise ConcurrencyError(
                    f"manifest {self.path} is locked by a concurrent writer"
                )
        self._owner_thread = threading.get_ident()
        self._lock_depth = 1
        try:
            yield
        finally:
            self._lock_depth = 0
            self._owner_thread = None
            try:
                os.unlink(self.lock_path)
            except OSError:  # pragma: no cover - already removed
                pass

    def _try_acquire(self, token: str) -> bool:
        """One acquisition attempt.  Returns True when this writer now
        owns the lock, False when the attempt should be repeated (a
        stale lock was broken, or a race was detected), and raises
        :class:`~repro.errors.ConcurrencyError` on a live holder."""
        try:
            fd = os.open(self.lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            observed = self._lock_token()
            if observed is None:
                # Vanished or unreadable mid-break: retry the create.
                return False
            holder = _token_pid(observed)
            if holder is not None and self._alive(holder):
                raise ConcurrencyError(
                    f"manifest {self.path} is locked by live writer "
                    f"pid {holder}; two shard processes must not "
                    f"share one manifest path"
                )
            self._break_stale(observed)
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(token)
        # Re-verify ownership: a breaker that observed the *previous*
        # dead holder may have renamed our fresh lock away in the
        # window between its staleness check and its rename.  Owning
        # means the file still carries our token.
        return self._lock_token() == token

    def _break_stale(self, observed: str) -> None:
        """Break the stale lock whose content is *observed*, via atomic
        rename so exactly one of several simultaneous breakers wins."""
        trash = self.lock_path.with_name(
            f"{self.lock_path.name}.break-{os.getpid()}"
        )
        try:
            os.replace(self.lock_path, trash)
        except OSError:
            return  # another breaker won the rename
        try:
            stolen = trash.read_text()
        except OSError:
            stolen = None
        try:
            trash.unlink()
        except OSError:  # pragma: no cover - cleanup is best effort
            pass
        if stolen is not None and stolen != observed:
            # We renamed a lock that was re-created by someone else
            # between our staleness read and our rename.  If its owner
            # is alive, restore it (best effort — the owner's own
            # re-verification catches the remaining window).
            pid = _token_pid(stolen)
            if pid is not None and self._alive(pid):
                try:
                    fd = os.open(
                        self.lock_path,
                        os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                    )
                    with os.fdopen(fd, "w") as handle:
                        handle.write(stolen)
                except OSError:  # somebody already re-created it
                    pass

    def _lock_token(self) -> str | None:
        try:
            return self.lock_path.read_text()
        except OSError:
            return None

    def _lock_holder(self) -> int | None:
        return _token_pid(self._lock_token())

    @staticmethod
    def _alive(pid: int) -> bool:
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (OSError, PermissionError):  # exists, not ours
            return True
        return True

    # -- lease-based claiming (fleet) ------------------------------------
    def claim_batch(
        self,
        candidates: Sequence[str],
        *,
        worker: str,
        limit: int = 4,
        lease_s: float = 30.0,
        host: str | None = None,
        pid: int | None = None,
        poison_after: int = DEFAULT_POISON_AFTER,
        now: float | None = None,
    ) -> ClaimDecision:
        """Claim up to *limit* unfinished points from *candidates*
        under a heartbeat-renewable lease, in one atomic rewrite under
        the writer lock.

        A point is claimable when it has never been claimed, was
        released, or its current lease expired (dead or wedged
        worker) — the latter is a *steal*, recorded on the entry.  A
        point whose lease has now expired under ``poison_after``
        distinct workers is benched as ``poisoned`` instead of being
        handed out again: a run that keeps killing workers must not
        wedge the fleet.  A malformed claim entry (lease corruption)
        counts as expired — corruption must never make a run
        unclaimable forever.
        """
        if limit < 1:
            raise ConfigError(f"claim limit must be >= 1 (got {limit})")
        if lease_s <= 0:
            raise ConfigError(f"lease_s must be > 0 (got {lease_s})")
        now = time.time() if now is None else now
        decision = ClaimDecision()
        with self.writer_lock(jitter_key=worker):
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            points = payload["points"]
            for point_id in candidates:
                entry = points.get(point_id)
                entry = entry if isinstance(entry, dict) else {}
                status = entry.get("status")
                if status in _TERMINAL:
                    continue
                stolen_from: str | None = None
                if status == "claimed":
                    claim = entry.get("claim")
                    claim = claim if isinstance(claim, dict) else {}
                    owner = claim.get("worker")
                    deadline = claim.get("deadline")
                    live = (
                        isinstance(deadline, (int, float))
                        and deadline > now
                    )
                    if owner == worker:
                        pass  # re-claiming our own lease renews it
                    elif live:
                        decision.pending += 1
                        continue
                    else:
                        # Expired (or corrupt) lease: steal, unless
                        # the run has burned too many workers already.
                        victims = [
                            victim
                            for victim in entry.get("victims", ())
                            if isinstance(victim, str)
                        ]
                        if isinstance(owner, str) and owner not in victims:
                            victims.append(owner)
                        if len(victims) >= poison_after:
                            points[point_id] = {
                                "status": "poisoned",
                                "victims": victims,
                                "steals": entry.get("steals", 0),
                                "reason": (
                                    f"lease expired under {len(victims)} "
                                    f"distinct workers"
                                ),
                            }
                            decision.poisoned.append(point_id)
                            continue
                        stolen_from = owner if isinstance(owner, str) else None
                        entry = dict(entry, victims=victims)
                if len(decision.claimed) >= limit:
                    decision.remaining += 1
                    continue
                claim: dict = {
                    "worker": worker,
                    "deadline": round(now + lease_s, 3),
                }
                if host is not None:
                    claim["host"] = host
                if pid is not None:
                    claim["pid"] = pid
                new_entry: dict = {"status": "claimed", "claim": claim}
                if entry.get("victims"):
                    new_entry["victims"] = entry["victims"]
                steals = entry.get("steals", 0)
                if stolen_from is not None:
                    steals = int(steals) + 1
                    claim["stolen_from"] = stolen_from
                    decision.stolen.append(point_id)
                if steals:
                    new_entry["steals"] = steals
                points[point_id] = new_entry
                decision.claimed.append(point_id)
            if decision.claimed or decision.poisoned:
                atomic_write_json(self.path, payload)
        return decision

    def renew_claims(
        self,
        point_ids: Sequence[str],
        *,
        worker: str,
        lease_s: float = 30.0,
        now: float | None = None,
    ) -> list[str]:
        """Heartbeat: extend the lease deadline of every point in
        *point_ids* still claimed by *worker*; returns the renewed
        ids.  A point that was stolen in the meantime (or completed by
        its thief) is *not* renewed — the worker learns its lease is
        gone and can stop caring about the duplicate execution
        (results are content-addressed, so duplicates are identical).
        """
        now = time.time() if now is None else now
        renewed: list[str] = []
        with self.writer_lock(jitter_key=worker):
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            points = payload["points"]
            for point_id in point_ids:
                entry = points.get(point_id)
                if not isinstance(entry, dict):
                    continue
                claim = entry.get("claim")
                if (
                    entry.get("status") == "claimed"
                    and isinstance(claim, dict)
                    and claim.get("worker") == worker
                ):
                    claim["deadline"] = round(now + lease_s, 3)
                    renewed.append(point_id)
            if renewed:
                atomic_write_json(self.path, payload)
        return renewed

    def release_claims(
        self, point_ids: Sequence[str], *, worker: str
    ) -> int:
        """Return the claims *worker* still holds on *point_ids* to the
        claimable pool (graceful drain); returns how many were
        released.  Steal history is preserved."""
        released = 0
        with self.writer_lock(jitter_key=worker):
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            points = payload["points"]
            for point_id in point_ids:
                entry = points.get(point_id)
                if not isinstance(entry, dict):
                    continue
                claim = entry.get("claim")
                if (
                    entry.get("status") == "claimed"
                    and isinstance(claim, dict)
                    and claim.get("worker") == worker
                ):
                    replacement: dict = {"status": "started"}
                    for key in ("victims", "steals"):
                        if entry.get(key):
                            replacement[key] = entry[key]
                    points[point_id] = replacement
                    released += 1
            if released:
                atomic_write_json(self.path, payload)
        return released

    def claims(self) -> dict[str, dict]:
        """Point id → live claim entry for every currently claimed
        point (a read-only view for monitors and tests)."""
        return {
            point_id: dict(entry["claim"])
            for point_id, entry in self.load()["points"].items()
            if isinstance(entry, dict)
            and entry.get("status") == "claimed"
            and isinstance(entry.get("claim"), dict)
        }

    def fleet_accounting(self) -> dict[str, dict]:
        """Per-worker tallies from worker-attributed entries: runs
        ``completed`` / ``stolen`` (completed after stealing) /
        ``failed`` per worker id — what
        :meth:`~repro.plan.execute.ExecutionReport.summary` reports as
        ``by_worker`` after a fleet campaign."""
        accounting: dict[str, dict] = {}
        for entry in self.load()["points"].values():
            if not isinstance(entry, dict):
                continue
            worker = entry.get("worker")
            if not isinstance(worker, str):
                continue
            tally = accounting.setdefault(
                worker, {"completed": 0, "stolen": 0, "failed": 0}
            )
            if entry.get("status") == "complete":
                tally["completed"] += 1
                if entry.get("steals"):
                    tally["stolen"] += 1
            elif entry.get("status") == "failed":
                tally["failed"] += 1
        return {worker: accounting[worker] for worker in sorted(accounting)}

    # -- merging shard manifests ----------------------------------------
    def merge_from(self, *sources: "CampaignManifest") -> int:
        """Fold shard manifests into this one; returns the number of
        point entries absorbed.

        Point conflicts resolve by status precedence (``complete`` >
        ``failed`` > ``poisoned`` > ``claimed`` > ``started``), so a
        point that any shard finished is finished in the union.
        Sources bound to a *different* campaign fingerprint are
        refused with :class:`~repro.errors.ConfigError` — merging
        unrelated campaigns would fabricate a resume state.  The
        merged manifest is published in one atomic rewrite, under the
        writer lock.
        """
        with self.writer_lock():
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            points = payload["points"]
            campaign = payload.get("campaign")
            absorbed = 0
            for source in sources:
                other = source.load()
                other_campaign = other.get("campaign")
                if isinstance(other_campaign, dict):
                    if (
                        isinstance(campaign, dict)
                        and campaign.get("plan") != other_campaign.get("plan")
                    ):
                        raise ConfigError(
                            f"refusing to merge {source.path}: campaign "
                            f"{other_campaign.get('plan')!r} != "
                            f"{campaign.get('plan')!r}"
                        )
                    if campaign is None:
                        # Adopt the plan identity, but not the shard
                        # slice: the union is no single shard.
                        campaign = {
                            k: v
                            for k, v in other_campaign.items()
                            if k != "shard"
                        }
                for point_id, entry in other.get("points", {}).items():
                    if not isinstance(entry, dict):
                        continue
                    current = points.get(point_id)
                    new_rank = _STATUS_RANK.get(entry.get("status"), -1)
                    old_rank = (
                        _STATUS_RANK.get(current.get("status"), -1)
                        if isinstance(current, dict)
                        else -1
                    )
                    if new_rank > old_rank:
                        points[point_id] = entry
                        absorbed += 1
            if campaign is not None:
                payload["campaign"] = campaign
            atomic_write_json(self.path, payload)
        return absorbed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CampaignManifest({self.path})"


def _lock_jitter(jitter_key: str | None, attempt: int) -> float:
    """Deterministic jitter factor in [0.5, 1.5): a pure function of
    ``(jitter_key or pid, attempt)``, so contention tests and chaos
    campaigns replay the same backoff schedule while distinct workers
    still decorrelate."""
    key = jitter_key if jitter_key is not None else str(os.getpid())
    digest = hashlib.sha256(f"{key}|{attempt}".encode()).digest()
    return 0.5 + int.from_bytes(digest[:8], "big") / 2**64
