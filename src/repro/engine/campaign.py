"""Campaign manifests: durable record of which points finished.

A multi-experiment CLI invocation (``repro-noise run fig7a fig9 ...``)
is a *campaign*.  Individual run results already checkpoint into the
disk cache as they complete, so re-running a killed campaign replays
the finished runs for free — but the campaign itself still needs to
know which *points* (experiments) completed so ``--resume`` can skip
them without re-entering their drivers at all.  The manifest is a tiny
JSON file, rewritten atomically after every completed point, holding
per-point status and the engine telemetry snapshot at completion time.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..ioutil import atomic_write_json

__all__ = ["CampaignManifest"]

MANIFEST_VERSION = 1
MANIFEST_NAME = "campaign-manifest.json"


class CampaignManifest:
    """Atomic, resumable record of a campaign's completed points.

    The file is the source of truth: every mutation reloads, applies,
    and atomically republishes, so concurrent readers (or a process
    killed mid-update) only ever see a complete manifest.
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        self.path = path

    # -- reading --------------------------------------------------------
    def load(self) -> dict:
        """The manifest payload (a fresh empty one when the file does
        not exist or is unreadable — a torn manifest must never wedge
        a resume, it just loses the skip optimization)."""
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {"version": MANIFEST_VERSION, "points": {}}
        if not isinstance(payload, dict) or "points" not in payload:
            return {"version": MANIFEST_VERSION, "points": {}}
        return payload

    @property
    def completed(self) -> set[str]:
        """Ids of points recorded as complete."""
        points = self.load()["points"]
        return {
            point_id
            for point_id, entry in points.items()
            if isinstance(entry, dict) and entry.get("status") == "complete"
        }

    def is_complete(self, point_id: str) -> bool:
        return point_id in self.completed

    # -- writing --------------------------------------------------------
    def mark_started(self, point_id: str) -> None:
        """Record that *point_id* began executing (a later resume sees
        it as unfinished and recomputes it)."""
        self._update(point_id, {"status": "started"})

    def mark_complete(self, point_id: str, meta: dict | None = None) -> None:
        """Record that *point_id* finished; *meta* (e.g. a telemetry
        snapshot) rides along for post-mortems."""
        entry: dict = {"status": "complete"}
        if meta:
            entry["meta"] = meta
        self._update(point_id, entry)

    def mark_failed(self, point_id: str, reason: str) -> None:
        """Record a permanent point failure (still recomputed on
        resume — a failure is by definition unfinished work)."""
        self._update(point_id, {"status": "failed", "reason": reason})

    def _update(self, point_id: str, entry: dict) -> None:
        payload = self.load()
        payload["version"] = MANIFEST_VERSION
        payload["points"][point_id] = entry
        atomic_write_json(self.path, payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CampaignManifest({self.path})"
