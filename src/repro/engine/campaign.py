"""Campaign manifests: durable record of which points finished.

A multi-experiment CLI invocation (``repro-noise run fig7a fig9 ...``)
is a *campaign*.  Individual run results already checkpoint into the
disk cache as they complete, so re-running a killed campaign replays
the finished runs for free — but the campaign itself still needs to
know which *points* (experiments) completed so ``--resume`` can skip
them without re-entering their drivers at all.  The manifest is a tiny
JSON file, rewritten atomically after every completed point, holding
per-point status and the engine telemetry snapshot at completion time.

With campaign sharding (:mod:`repro.plan`), several *processes* may
hold manifests for slices of one campaign: each shard writes its own
manifest under a writer lock (two live writers to the same path are
refused with :class:`~repro.errors.ConcurrencyError`), and
:meth:`CampaignManifest.merge_from` folds shard manifests into one —
the bookkeeping half of the shard-merge step, next to the disk-cache
merge (:func:`repro.engine.cache.merge_cache_dirs`).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from ..errors import ConcurrencyError, ConfigError
from ..ioutil import atomic_write_json

__all__ = ["CampaignManifest"]

MANIFEST_VERSION = 1
MANIFEST_NAME = "campaign-manifest.json"

#: Point-status precedence when merging manifests: completed work wins
#: over a recorded failure, which wins over a mere start marker.
_STATUS_RANK = {"complete": 2, "failed": 1, "started": 0}


class CampaignManifest:
    """Atomic, resumable record of a campaign's completed points.

    The file is the source of truth: every mutation reloads, applies,
    and atomically republishes, so concurrent readers (or a process
    killed mid-update) only ever see a complete manifest.
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        self.path = path

    @property
    def lock_path(self) -> Path:
        return self.path.parent / (self.path.name + ".lock")

    # -- reading --------------------------------------------------------
    def load(self) -> dict:
        """The manifest payload (a fresh empty one when the file does
        not exist or is unreadable — a torn manifest must never wedge
        a resume, it just loses the skip optimization)."""
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {"version": MANIFEST_VERSION, "points": {}}
        if not isinstance(payload, dict) or "points" not in payload:
            return {"version": MANIFEST_VERSION, "points": {}}
        return payload

    @property
    def completed(self) -> set[str]:
        """Ids of points recorded as complete."""
        points = self.load()["points"]
        return {
            point_id
            for point_id, entry in points.items()
            if isinstance(entry, dict) and entry.get("status") == "complete"
        }

    def is_complete(self, point_id: str) -> bool:
        return point_id in self.completed

    # -- writing --------------------------------------------------------
    def mark_started(self, point_id: str) -> None:
        """Record that *point_id* began executing (a later resume sees
        it as unfinished and recomputes it)."""
        self._update(point_id, {"status": "started"})

    def mark_complete(self, point_id: str, meta: dict | None = None) -> None:
        """Record that *point_id* finished; *meta* (e.g. a telemetry
        snapshot) rides along for post-mortems."""
        entry: dict = {"status": "complete"}
        if meta:
            entry["meta"] = meta
        self._update(point_id, entry)

    def mark_failed(self, point_id: str, reason: str) -> None:
        """Record a permanent point failure (still recomputed on
        resume — a failure is by definition unfinished work)."""
        self._update(point_id, {"status": "failed", "reason": reason})

    def mark_many_complete(self, point_ids: list[str]) -> None:
        """Record a batch of completed points in one atomic rewrite
        (what the plan executor does after each run group, instead of
        an O(n²) rewrite-per-run)."""
        if not point_ids:
            return
        payload = self.load()
        payload["version"] = MANIFEST_VERSION
        for point_id in point_ids:
            payload["points"][point_id] = {"status": "complete"}
        atomic_write_json(self.path, payload)

    def _update(self, point_id: str, entry: dict) -> None:
        payload = self.load()
        payload["version"] = MANIFEST_VERSION
        payload["points"][point_id] = entry
        atomic_write_json(self.path, payload)

    # -- campaign identity ----------------------------------------------
    @property
    def campaign(self) -> dict | None:
        """The campaign identity recorded by :meth:`bind_campaign`
        (``None`` for a fresh or pre-sharding manifest)."""
        entry = self.load().get("campaign")
        return entry if isinstance(entry, dict) else None

    def bind_campaign(self, info: dict) -> None:
        """Record which campaign (plan fingerprint, shard) this
        manifest belongs to, so a later merge can refuse to fold
        manifests of *different* campaigns into one result.

        Rebinding to a different plan fingerprint raises
        :class:`~repro.errors.ConfigError` — a manifest path reused
        across campaigns is almost certainly an operator mistake.
        """
        current = self.campaign
        if current and current.get("plan") != info.get("plan"):
            raise ConfigError(
                f"manifest {self.path} already belongs to campaign "
                f"{current.get('plan')!r}; refusing to rebind to "
                f"{info.get('plan')!r} (use a fresh manifest path)"
            )
        payload = self.load()
        payload["version"] = MANIFEST_VERSION
        payload["campaign"] = info
        atomic_write_json(self.path, payload)

    # -- concurrent writers ---------------------------------------------
    @contextmanager
    def writer_lock(self) -> Iterator[None]:
        """Exclusive-writer guard for the manifest path.

        Creates ``<manifest>.lock`` with ``O_CREAT | O_EXCL`` (atomic
        on POSIX and NFS-safe enough for shard workers on one host); a
        second live writer gets :class:`~repro.errors.ConcurrencyError`
        instead of silently interleaving updates.  A lock left behind
        by a dead process (its recorded pid no longer runs) is broken
        and re-acquired, so a crashed shard never wedges the campaign.
        """
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        acquired = False
        for attempt in (1, 2):
            try:
                fd = os.open(
                    self.lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL
                )
                with os.fdopen(fd, "w") as handle:
                    handle.write(str(os.getpid()))
                acquired = True
                break
            except FileExistsError:
                holder = self._lock_holder()
                if holder is not None and self._alive(holder):
                    raise ConcurrencyError(
                        f"manifest {self.path} is locked by live writer "
                        f"pid {holder}; two shard processes must not "
                        f"share one manifest path"
                    ) from None
                # Stale lock (holder dead or unreadable): break it and
                # retry the atomic create exactly once — if somebody
                # else wins the re-create race, they are a live writer.
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    pass
        if not acquired:  # lost the re-create race both times
            raise ConcurrencyError(
                f"manifest {self.path} is locked by a concurrent writer"
            )
        try:
            yield
        finally:
            try:
                os.unlink(self.lock_path)
            except OSError:  # pragma: no cover - already removed
                pass

    def _lock_holder(self) -> int | None:
        try:
            return int(self.lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    @staticmethod
    def _alive(pid: int) -> bool:
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (OSError, PermissionError):  # exists, not ours
            return True
        return True

    # -- merging shard manifests ----------------------------------------
    def merge_from(self, *sources: "CampaignManifest") -> int:
        """Fold shard manifests into this one; returns the number of
        point entries absorbed.

        Point conflicts resolve by status precedence (``complete`` >
        ``failed`` > ``started``), so a point that any shard finished
        is finished in the union.  Sources bound to a *different*
        campaign fingerprint are refused with
        :class:`~repro.errors.ConfigError` — merging unrelated
        campaigns would fabricate a resume state.  The merged manifest
        is published in one atomic rewrite, under the writer lock.
        """
        with self.writer_lock():
            payload = self.load()
            payload["version"] = MANIFEST_VERSION
            points = payload["points"]
            campaign = payload.get("campaign")
            absorbed = 0
            for source in sources:
                other = source.load()
                other_campaign = other.get("campaign")
                if isinstance(other_campaign, dict):
                    if (
                        isinstance(campaign, dict)
                        and campaign.get("plan") != other_campaign.get("plan")
                    ):
                        raise ConfigError(
                            f"refusing to merge {source.path}: campaign "
                            f"{other_campaign.get('plan')!r} != "
                            f"{campaign.get('plan')!r}"
                        )
                    if campaign is None:
                        # Adopt the plan identity, but not the shard
                        # slice: the union is no single shard.
                        campaign = {
                            k: v
                            for k, v in other_campaign.items()
                            if k != "shard"
                        }
                for point_id, entry in other.get("points", {}).items():
                    if not isinstance(entry, dict):
                        continue
                    current = points.get(point_id)
                    new_rank = _STATUS_RANK.get(entry.get("status"), -1)
                    old_rank = (
                        _STATUS_RANK.get(current.get("status"), -1)
                        if isinstance(current, dict)
                        else -1
                    )
                    if new_rank > old_rank:
                        points[point_id] = entry
                        absorbed += 1
            if campaign is not None:
                payload["campaign"] = campaign
            atomic_write_json(self.path, payload)
        return absorbed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CampaignManifest({self.path})"
