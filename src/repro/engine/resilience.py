"""Per-run fault isolation: retry with backoff, timeouts, structured
failures.

The Vmin protocol the paper is built around *expects* runs to die —
undervolt until the R-Unit sees the first error and the system reboots —
and near-margin stress campaigns (FIRESTARTER-style shmoo sweeps) treat
crash-and-resume as the normal case, not the exception.  This module
gives the engine the same stance: a single run is executed through
:func:`guarded_call`, which

* enforces an optional per-run wall-clock budget (``run_timeout_s``),
* retries transient failures with bounded exponential backoff
  (deterministic — no jitter, so campaigns stay reproducible), and
* converts a run that still fails after its budget into a structured
  :class:`RunFailure` record (error type, message, traceback, attempt
  count, run label) instead of an exception that would kill the whole
  chunk.

Executors fan :func:`guarded_call` out (``map_guarded``), sessions
account the attempt counters into telemetry, and callers choose whether
a surviving failure raises (:class:`~repro.errors.ExecutionError`) or
is collected alongside the successful results.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from ..errors import ConfigError, RunTimeoutError

__all__ = [
    "RetryPolicy",
    "RunFailure",
    "GuardedOutcome",
    "guarded_call",
    "call_with_timeout",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How the execution layer treats a failing run.

    Attributes
    ----------
    max_retries:
        Re-executions granted after the first failed attempt (0 = fail
        immediately; the default 2 absorbs transient worker faults).
    backoff_base_s:
        Sleep before the first retry; each further retry multiplies it
        by :attr:`backoff_factor`, capped at :attr:`backoff_max_s`.
        The schedule is deterministic (no jitter) so that campaigns
        remain bit-reproducible under fault injection.
    run_timeout_s:
        Per-run wall-clock budget; ``None`` disables the watchdog.  A
        run that exceeds it fails with
        :class:`~repro.errors.RunTimeoutError` (and is retried like any
        other failure).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    run_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0 (got {self.max_retries})"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1 (got {self.backoff_factor})"
            )
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ConfigError(
                f"run_timeout_s must be > 0 (got {self.run_timeout_s})"
            )

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``$REPRO_MAX_RETRIES`` / ``$REPRO_RUN_TIMEOUT``
        (the ``--max-retries`` / ``--run-timeout`` CLI flags export
        these), with library defaults for anything unset."""
        kwargs: dict = {}
        retries = os.environ.get("REPRO_MAX_RETRIES", "").strip()
        if retries:
            try:
                kwargs["max_retries"] = int(retries)
            except ValueError:
                raise ConfigError(
                    f"REPRO_MAX_RETRIES must be an integer (got {retries!r})"
                )
        timeout = os.environ.get("REPRO_RUN_TIMEOUT", "").strip()
        if timeout:
            try:
                kwargs["run_timeout_s"] = float(timeout)
            except ValueError:
                raise ConfigError(
                    f"REPRO_RUN_TIMEOUT must be a number (got {timeout!r})"
                )
        return cls(**kwargs)


@dataclass
class RunFailure:
    """A run that exhausted its retry budget, as data.

    Picklable by construction (the original exception object rides
    along only when it pickles cleanly), so a failure can cross a
    process-pool boundary without taking the chunk down with it.
    """

    label: object
    error_type: str
    message: str
    traceback: str
    attempts: int
    fingerprint: str | None = None
    exception: BaseException | None = field(default=None, repr=False)

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        label: object = None,
        attempts: int = 1,
        fingerprint: str | None = None,
    ) -> "RunFailure":
        try:
            carried = pickle.loads(pickle.dumps(error))
        except Exception:
            carried = None
        return cls(
            label=label,
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback_module.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
            attempts=attempts,
            fingerprint=fingerprint,
            exception=carried,
        )

    def describe(self) -> str:
        return (
            f"run {self.label!r} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class GuardedOutcome:
    """Result of one guarded run: either a value or a failure record,
    plus the attempt/timeout counts (for the retry telemetry) and the
    total wall clock spent across all attempts, including backoff
    sleeps (feeds the ``engine.run.seconds`` latency histogram).

    ``worker`` is the pid of the process that executed the run — the
    parent itself under the serial backend, a pool worker under the
    process backend — which is how the Chrome trace exporter lays a
    ``--jobs N`` campaign out as one lane per worker."""

    value: object = None
    failure: RunFailure | None = None
    attempts: int = 1
    timeouts: int = 0
    duration_s: float = 0.0
    worker: int | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def call_with_timeout(
    fn: Callable[[T], R], item: T, timeout_s: float | None
) -> R:
    """Apply *fn* to *item*, bounded by *timeout_s* of wall clock.

    The call runs on a daemon watchdog thread; when the budget expires
    the caller raises :class:`~repro.errors.RunTimeoutError` and
    abandons the thread (a leaked worker finishes in the background —
    acceptable for the pure-compute runs the engine executes, and the
    only portable soft-timeout available in-process).
    """
    if timeout_s is None:
        return fn(item)
    box: dict = {}

    def target() -> None:
        try:
            box["value"] = fn(item)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise RunTimeoutError(
            f"run exceeded its {timeout_s:g}s wall-clock budget"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


def guarded_call(
    fn: Callable[[T], R],
    item: T,
    policy: RetryPolicy | None = None,
    *,
    label: object = None,
    fingerprint: str | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> GuardedOutcome:
    """Execute one run under *policy*; never raises for run failures.

    ``KeyboardInterrupt``/``SystemExit`` propagate (a host interruption
    must abort the campaign, not be retried); every other exception —
    including the watchdog's :class:`~repro.errors.RunTimeoutError` —
    consumes one attempt and, once the budget is spent, becomes a
    :class:`RunFailure`.
    """
    policy = policy or RetryPolicy()
    attempts = 0
    timeouts = 0
    started = time.perf_counter()
    while True:
        attempts += 1
        try:
            value = call_with_timeout(fn, item, policy.run_timeout_s)
            return GuardedOutcome(
                value=value,
                attempts=attempts,
                timeouts=timeouts,
                duration_s=time.perf_counter() - started,
                worker=os.getpid(),
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            if isinstance(error, RunTimeoutError):
                timeouts += 1
            if attempts > policy.max_retries:
                return GuardedOutcome(
                    failure=RunFailure.from_exception(
                        error,
                        label=label,
                        attempts=attempts,
                        fingerprint=fingerprint,
                    ),
                    attempts=attempts,
                    timeouts=timeouts,
                    duration_s=time.perf_counter() - started,
                    worker=os.getpid(),
                )
            sleep(policy.backoff_s(attempts))
