"""Closed-loop stepping execution: one mapping run, advanced in windows.

:class:`SteppingSession` is the stateful counterpart of
:meth:`ChipRunner.execute <repro.machine.runner.ChipRunner.execute>`:
it builds the same :class:`~repro.machine.runner.StimulusBatch` once,
then advances the transient solve in fixed-size sample windows.  After
each window it emits a :class:`WindowObservation` (per-core voltage
min/mean/max, utilization, droop events) and accepts an
:class:`Actuation` (supply-bias change, ΔI throttle) that takes effect
from the *next* window on — the observe/actuate cycle a closed-loop
controller (:mod:`repro.control`) runs.

**Exact continuation invariant.**  Stepping is not an approximation:
the windowed solve carries the full LTI state between steps (see
:class:`~repro.pdn.kernels.SteppingSolver`), so stitching the emitted
windows back together is *bit-identical* to the monolithic solve, on
both the ``reference`` and ``batched`` backends — and
:meth:`SteppingSession.result` reproduces
:meth:`ChipRunner.execute <repro.machine.runner.ChipRunner.execute>`
byte for byte (measurements, waveforms, exports) when no actuation was
applied.  Both facts are pinned at tolerance **zero** by the control
test suite and the ``control-smoke`` CI job.

**Actuation model.**  The PDN is linear, so a supply-bias change is a
pure offset: observed absolute voltages shift by ``(bias − 1)·Vnom``
while the deviation waveforms — and therefore the carried solver state
— are untouched.  That is what makes a controller gain sweep cheap:
:meth:`rewind` restarts the loop on the same solved waveforms.  A
*throttle* actuation instead rewrites future ΔI edges (scales their
deltas); samples before the first rewritten edge are unaffected (a
ramp response is zero before its edge), so emitted windows remain the
truth of the actuated history and the solver merely starts a new train
epoch.

Fault injection: passing a :class:`~repro.faults.FaultPlan` routes
every *cold* window solve (one per segment per train epoch) through
the plan with bounded retry, so the determinism suite can prove the
partition invariant holds under injected crashes/exceptions too.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..errors import ConfigError, ControlError, ExecutionError, SolverError
from ..machine.chip import Chip
from ..machine.runner import (
    ChipRunner,
    CoreMeasurement,
    RunOptions,
    RunResult,
    WAVEFORM_EXTRA_NODES,
)
from ..machine.system import ServiceElement, VOLTAGE_STEP
from ..machine.workload import CurrentProgram
from ..obs import Telemetry, get_telemetry
from ..pdn.kernels import SteppingSolver
from ..pdn.superposition import EdgeTrain, assemble_voltage
from .resilience import RetryPolicy, guarded_call
from .session import resolve_backend_name

__all__ = ["Actuation", "WindowObservation", "SteppingSession"]

Mapping = Sequence[CurrentProgram | None]

#: Default droop-event threshold, as a fraction of nominal below which
#: an excursion counts as a droop event (3 % ≈ the static guard-band
#: headroom the paper's Figure 15 argues about).
DROOP_EVENT_FRAC = 0.03


@dataclass(frozen=True)
class Actuation:
    """One control decision, applied before the next window is solved.

    ``bias_steps`` sets the supply bias in whole 0.5 % steps of nominal
    (negative = undervolt), through the same quantized
    :class:`~repro.machine.system.ServiceElement` surface the Vmin
    protocol drives.  ``throttle`` scales the ΔI of *future* edges —
    a scalar applies to every core, a ``{core: factor}`` dict to
    specific ones.  ``None`` fields leave the corresponding knob alone.
    """

    bias_steps: int | None = None
    throttle: float | dict[int, float] | None = None
    note: str = ""

    @property
    def is_noop(self) -> bool:
        return self.bias_steps is None and self.throttle is None


@dataclass(frozen=True)
class WindowObservation:
    """What a controller sees after one window of the transient solve.

    Voltages are **observed** absolute values: the bias offset
    ``(bias − 1)·Vnom`` is already applied.  ``worst_vmin`` includes the
    per-core simultaneous-switching deepening, i.e. it is the voltage
    the R-Unit's critical paths experience in this window.
    """

    index: int                      # global window number
    segment: int                    # observation window (phase draw)
    window: int                     # window number within the segment
    t_start: float                  # first sample instant (s)
    t_end: float                    # last sample instant (s)
    n_samples: int
    supply_bias: float              # multiplicative bias in effect
    v_min: tuple[float, ...]        # per-core observed minimum (V)
    v_mean: tuple[float, ...]       # per-core observed mean (V)
    v_max: tuple[float, ...]        # per-core observed maximum (V)
    worst_vmin: float               # min over cores incl. SSN deepening
    active_cores: tuple[int, ...]   # cores with activity in the window
    utilization: float              # len(active_cores) / n_cores
    droop_events: int               # below-threshold excursions, all cores
    coherent: tuple[float, ...]     # per-core coherent ΔI of the segment

    @property
    def n_active(self) -> int:
        return len(self.active_cores)

    @property
    def worst_core(self) -> int:
        """Core with the deepest observed minimum this window."""
        return int(np.argmin(self.v_min))


class _ReferenceSteppingSolver:
    """Reference-backend twin of
    :class:`~repro.pdn.kernels.SteppingSolver`: the same windowed
    interface over per-edge table superposition, memoizing the full
    per-node rows per train epoch so window slices stitch bit-identically
    to :meth:`ChipRunner._solve`'s reference path."""

    def __init__(self, library, grid, nodes: list[str]):
        self.library = library
        self.grid = grid
        self.nodes = list(nodes)
        self._epoch_key: tuple | None = None
        self._rows: list[np.ndarray] | None = None

    @property
    def n_samples(self) -> int:
        return int(self.grid.times.size)

    def is_warm(self, trains: list[EdgeTrain]) -> bool:
        return (
            self._rows is not None
            and self._epoch_key == SteppingSolver._train_key(trains)
        )

    def solve_window(
        self, trains: list[EdgeTrain], lo: int, hi: int
    ) -> list[np.ndarray]:
        key = SteppingSolver._train_key(trains)
        if self._rows is None or self._epoch_key != key:
            self._rows = [
                assemble_voltage(self.library, node, trains, self.grid.times)
                for node in self.nodes
            ]
            self._epoch_key = key
        return [row[lo:hi] for row in self._rows]


class SteppingSession:
    """Windowed, actuated execution of one mapping run on one chip.

    Parameters
    ----------
    chip:
        The chip the run executes on.
    mapping:
        One :class:`~repro.machine.workload.CurrentProgram` (or
        ``None`` = idle) per core — same contract as
        :meth:`ChipRunner.run`.
    options:
        Run options (fresh defaults when omitted).
    run_tag:
        Differentiates the random phase draws, exactly as in the
        monolithic path — the same ``(mapping, options, run_tag)``
        triple produces the same stimulus on both paths.
    windows_per_segment:
        Windows each observation segment is divided into (clamped per
        segment so no window is empty).
    backend:
        ``auto`` / ``reference`` / ``batched``; environment default
        (``$REPRO_BACKEND``) when omitted, with the session-layer
        fallback semantics (explicit ``batched`` propagates compile
        failures, ``auto`` falls back to reference).
    faults / retry:
        Optional :class:`~repro.faults.FaultPlan` injected into every
        cold window solve, absorbed by *retry* (default
        :class:`~repro.engine.resilience.RetryPolicy`).
    droop_threshold_frac:
        Fraction of nominal below which an excursion counts as a droop
        event in window observations.
    """

    def __init__(
        self,
        chip: Chip,
        mapping: Mapping,
        options: RunOptions | None = None,
        *,
        run_tag: object = "control",
        windows_per_segment: int = 8,
        backend: str | None = None,
        telemetry: Telemetry | None = None,
        faults=None,
        retry: RetryPolicy | None = None,
        droop_threshold_frac: float = DROOP_EVENT_FRAC,
    ):
        if windows_per_segment < 1:
            raise ConfigError(
                f"windows_per_segment must be >= 1 (got {windows_per_segment})"
            )
        self.chip = chip
        self.telemetry = telemetry or get_telemetry()
        self.backend = resolve_backend_name(backend)
        self.runner = ChipRunner(chip)
        self.options = options or RunOptions()
        self.run_tag = run_tag
        self.windows_per_segment = int(windows_per_segment)
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.droop_threshold_v = (1.0 - droop_threshold_frac) * chip.vnom

        self.batch = self.runner.build_stimulus(mapping, self.options, run_tag)
        self._core_nodes = chip.core_nodes
        self._service = ServiceElement(chip)
        self._kernel = None
        if self.backend != "reference":
            try:
                with self.telemetry.time("engine.kernel.compile_seconds"):
                    self._kernel = chip.compiled_kernel
            except SolverError as error:
                if self.backend == "batched":
                    raise
                self.telemetry.increment("engine.kernel.fallbacks")
                self.telemetry.emit(
                    "kernel.fallback",
                    chip=chip.chip_id,
                    error=f"{type(error).__name__}: {error}",
                )
        self.resolved_backend = (
            "batched" if self._kernel is not None else "reference"
        )

        # Window partition: near-equal sample slices per segment, never
        # empty (clamped when a segment has fewer samples than windows).
        self._bounds: list[np.ndarray] = []
        for segment in self.batch.segments:
            n = int(segment.times.size)
            w = max(1, min(self.windows_per_segment, n))
            self._bounds.append(np.linspace(0, n, w + 1).astype(int))
        self._schedule = [
            (s, w)
            for s in range(len(self._bounds))
            for w in range(len(self._bounds[s]) - 1)
        ]

        # Per-segment activity index: each core's edge instants (stable
        # under throttle, which rescales deltas only).
        port_to_core = {port: i for i, port in enumerate(chip.core_ports)}
        self._core_edges: list[dict[int, np.ndarray]] = [
            {
                port_to_core[train.port]: np.sort(train.times)
                for train in segment.trains
            }
            for segment in self.batch.segments
        ]

        self._solvers: list = [None] * len(self.batch.segments)
        self._original_trains = [
            list(segment.trains) for segment in self.batch.segments
        ]
        self._original_coherent = [
            list(segment.coherent) for segment in self.batch.segments
        ]
        self._reset_loop_state()

    # -- loop state -----------------------------------------------------
    def _reset_loop_state(self) -> None:
        self._cursor = 0
        self._trains = [list(trains) for trains in self._original_trains]
        self._coherent = [list(c) for c in self._original_coherent]
        self._sticky = [
            {"v_min": np.inf, "v_max": -np.inf, "coherent": 0.0}
            for _ in range(self.chip.n_cores)
        ]
        self._service.reset_voltage()
        self._observations: list[WindowObservation] = []

    def rewind(self) -> None:
        """Restart the loop: cursor, sticky state, bias and edge trains
        return to their initial values.  Solver state survives — an
        un-throttled replay (e.g. the next gain of a controller sweep)
        re-steps the already-solved waveforms at slice cost."""
        self._reset_loop_state()
        self.telemetry.increment("control.rewinds")

    # -- introspection --------------------------------------------------
    @property
    def n_windows(self) -> int:
        """Total windows across all segments."""
        return len(self._schedule)

    @property
    def position(self) -> int:
        """Windows already stepped."""
        return self._cursor

    @property
    def done(self) -> bool:
        return self._cursor >= len(self._schedule)

    @property
    def bias(self) -> float:
        """Supply bias currently in effect (1.0 = nominal)."""
        return self._service.bias

    @property
    def bias_steps(self) -> int:
        return self._service._bias_steps

    @property
    def observations(self) -> list[WindowObservation]:
        """Observations emitted since construction / the last rewind."""
        return list(self._observations)

    # -- solve plumbing -------------------------------------------------
    def _solver(self, seg: int):
        if self._solvers[seg] is None:
            grid = self.batch.segments[seg].samples
            if self._kernel is not None:
                self._solvers[seg] = SteppingSolver(
                    self._kernel, grid, self._core_nodes
                )
            else:
                self._solvers[seg] = _ReferenceSteppingSolver(
                    self.chip.response_library, grid, self._core_nodes
                )
        return self._solvers[seg]

    def _is_warm(self, solver, trains: list[EdgeTrain]) -> bool:
        if isinstance(solver, SteppingSolver):
            return (
                solver._block is not None
                and solver._epoch_key == SteppingSolver._train_key(trains)
            )
        return solver.is_warm(trains)

    def _window_rows(self, seg: int, lo: int, hi: int):
        """Per-core deviation rows of ``samples[lo:hi]`` of *seg*,
        routed through the fault plan (with retry) on cold epochs."""
        solver = self._solver(seg)
        trains = self._trains[seg]
        if self.faults is None or self._is_warm(solver, trains):
            return solver.solve_window(trains, lo, hi)
        from ..faults.harness import _FaultyFn, fault_key

        token = f"control.solve:{self.run_tag}:{seg}"
        faulty = _FaultyFn(
            self.faults,
            lambda item: solver.solve_window(trains, lo, hi),
            fault_key,
        )
        outcome = guarded_call(
            faulty, (token,), self.retry, label=("control.solve", seg)
        )
        if outcome.failure is not None:
            raise ExecutionError(
                f"window solve for segment {seg} failed after "
                f"{outcome.attempts} attempts",
                [outcome.failure],
            )
        if outcome.attempts > 1:
            self.telemetry.increment(
                "control.solve.retries", outcome.attempts - 1
            )
        return outcome.value

    # -- actuation ------------------------------------------------------
    def _apply(self, actuation: Actuation) -> None:
        if actuation.bias_steps is not None:
            self._service.set_bias_steps(int(actuation.bias_steps))
        if actuation.throttle is not None:
            self._apply_throttle(actuation.throttle)
        if not actuation.is_noop:
            self.telemetry.increment("control.actuations")

    def _apply_throttle(self, throttle: float | dict[int, float]) -> None:
        """Scale the ΔI of future edges: the upcoming window's start
        onward in the current segment, everything in later segments."""
        if isinstance(throttle, dict):
            factors = {int(core): float(f) for core, f in throttle.items()}
        else:
            factors = {
                core: float(throttle) for core in range(self.chip.n_cores)
            }
        for core, factor in factors.items():
            if not 0.0 <= factor:
                raise ControlError(
                    f"throttle factor must be >= 0 (core {core}: {factor})"
                )
        port_factor = {
            self.chip.core_ports[core]: factor
            for core, factor in factors.items()
        }
        seg0, win0 = (
            self._schedule[self._cursor]
            if not self.done
            else (len(self._trains), 0)
        )
        for seg in range(seg0, len(self._trains)):
            if seg == seg0:
                lo = int(self._bounds[seg][win0])
                t_cut = float(self.batch.segments[seg].times[lo])
            else:
                t_cut = -np.inf
            changed = False
            rewritten: list[EdgeTrain] = []
            for train in self._trains[seg]:
                factor = port_factor.get(train.port, 1.0)
                mask = train.times >= t_cut
                if factor == 1.0 or not mask.any():
                    rewritten.append(train)
                    continue
                deltas = train.deltas.copy()
                deltas[mask] = deltas[mask] * factor
                rewritten.append(EdgeTrain(train.port, train.times, deltas))
                changed = True
            if changed:
                self._trains[seg] = rewritten
                self._coherent[seg] = self.runner._coherent_delta_i(
                    self.batch.mapping, rewritten, self.options
                )

    # -- the loop -------------------------------------------------------
    def step(self, actuation: Actuation | None = None) -> WindowObservation:
        """Apply *actuation* (if any), solve the next window, fold it
        into the sticky measurement state and return its observation."""
        if self.done:
            raise ControlError(
                f"stepping past the end of the run "
                f"({self.n_windows} windows)"
            )
        if actuation is not None:
            self._apply(actuation)

        seg, win = self._schedule[self._cursor]
        lo, hi = int(self._bounds[seg][win]), int(self._bounds[seg][win + 1])
        rows = self._window_rows(seg, lo, hi)
        segment = self.batch.segments[seg]
        times = segment.times
        dc_levels = self.batch.dc_levels
        chip = self.chip
        bias = self._service.bias
        offset = (bias - 1.0) * chip.vnom

        v_min: list[float] = []
        v_mean: list[float] = []
        v_max: list[float] = []
        worst = np.inf
        droop_events = 0
        t_start = float(times[lo])
        t_end = float(times[hi - 1])
        for core in range(chip.n_cores):
            node = self._core_nodes[core]
            volts = dc_levels[node] + rows[core]
            # Sticky accumulation on nominal-supply volts: min-of-window
            # minima equals the monolithic segment minimum bit for bit,
            # which is what makes result() ≡ ChipRunner.execute().
            state = self._sticky[core]
            raw_min = float(volts.min())
            raw_max = float(volts.max())
            state["v_min"] = min(state["v_min"], raw_min)
            state["v_max"] = max(state["v_max"], raw_max)
            state["coherent"] = max(state["coherent"], self._coherent[seg][core])

            observed = volts + offset if offset else volts
            v_min.append(raw_min + offset)
            v_max.append(raw_max + offset)
            v_mean.append(float(volts.mean()) + offset)
            ssn = (
                chip.skitters[core].config.ssn_gain * self._coherent[seg][core]
                if self.options.include_ssn
                else 0.0
            )
            worst = min(worst, raw_min + offset - ssn)
            below = observed < self.droop_threshold_v
            if below.any():
                droop_events += int(below[0]) + int(
                    np.count_nonzero(below[1:] & ~below[:-1])
                )

        active = []
        for core, program in enumerate(self.batch.mapping):
            if program is None:
                continue
            if program.is_steady:
                active.append(core)
                continue
            edges = self._core_edges[seg].get(core)
            if edges is None:
                continue
            first = int(np.searchsorted(edges, t_start, side="left"))
            if first < edges.size and edges[first] <= t_end:
                active.append(core)

        observation = WindowObservation(
            index=self._cursor,
            segment=seg,
            window=win,
            t_start=t_start,
            t_end=t_end,
            n_samples=hi - lo,
            supply_bias=bias,
            v_min=tuple(v_min),
            v_mean=tuple(v_mean),
            v_max=tuple(v_max),
            worst_vmin=float(worst),
            active_cores=tuple(active),
            utilization=len(active) / chip.n_cores,
            droop_events=droop_events,
            coherent=tuple(self._coherent[seg]),
        )
        self._cursor += 1
        self._observations.append(observation)
        self.telemetry.increment("control.steps")
        return observation

    def run_to_completion(self) -> list[WindowObservation]:
        """Step every remaining window without actuation."""
        emitted = []
        while not self.done:
            emitted.append(self.step())
        return emitted

    # -- terminal measurement -------------------------------------------
    def result(self) -> RunResult:
        """The run's :class:`~repro.machine.runner.RunResult`, from the
        accumulated sticky state (remaining windows are stepped
        un-actuated first).

        Without actuation this is byte-identical to
        :meth:`ChipRunner.execute` of the same batch; with throttling it
        is the result of the actuated edge history (bias never enters —
        like the monolithic path, measurements are relative to the
        nominal supply)."""
        self.run_to_completion()
        chip = self.chip
        options = self.options
        chip.reset_skitters()

        waveforms: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        if options.collect_waveforms and self.batch.segments:
            segment = self.batch.segments[0]
            times = segment.times
            rows = self._solver(0).solve_window(
                self._trains[0], 0, int(times.size)
            )
            dc_levels = self.batch.dc_levels
            for core in range(chip.n_cores):
                node = self._core_nodes[core]
                waveforms[node] = (times.copy(), dc_levels[node] + rows[core])
            extra = self.runner._solve_extra(
                replace(segment, trains=self._trains[0]), self._kernel
            )
            for node, deviation in zip(WAVEFORM_EXTRA_NODES, extra):
                waveforms[node] = (times.copy(), dc_levels[node] + deviation)

        measurements: list[CoreMeasurement] = []
        for core in range(chip.n_cores):
            state = self._sticky[core]
            coherent_amps = state["coherent"] if options.include_ssn else 0.0
            macro = chip.skitters[core]
            macro.observe(state["v_min"], state["v_max"], coherent_amps)
            reading = macro.read()
            ssn_droop = macro.config.ssn_gain * coherent_amps
            measurements.append(
                CoreMeasurement(
                    core=core,
                    p2p_pct=reading.p2p_pct,
                    v_min=state["v_min"] - ssn_droop,
                    v_max=state["v_max"],
                    coherent_delta_i=coherent_amps,
                )
            )
        return RunResult(
            measurements=measurements,
            mapping=list(self.batch.mapping),
            waveforms=waveforms,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SteppingSession(chip={self.chip.chip_id!r}, "
            f"backend={self.resolved_backend}, "
            f"windows={self.position}/{self.n_windows}, "
            f"bias={self.bias:.3f})"
        )
