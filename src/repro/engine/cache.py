"""Content-addressed result cache: in-memory LRU plus optional disk tier.

Keys are content fingerprints (:mod:`repro.engine.fingerprint`), values
are arbitrary picklable results (:class:`RunResult`s, GA fitness
readings).  The in-memory tier is a bounded LRU shared process-wide by
default, so every consumer layer — experiment drivers, sweep functions,
the scheduler, the GA — transparently reuses each other's runs.  The
optional disk tier (``--cache-dir`` / ``$REPRO_CACHE_DIR``, defaulting
to ``~/.cache/repro-noise`` when enabled without a path) persists
results across processes: a second CLI invocation of the same
experiment replays from disk instead of re-solving the PDN.

This replaces the three ad-hoc caches the consumer layers used to keep
(the experiment context's ΔI-dataset memo, the scheduler's per-count
study dict, the GA's fitness dict) with one instrumented, bounded,
shareable store.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import OrderedDict
from pathlib import Path

from ..ioutil import atomic_write_bytes
from ..obs import Telemetry, get_telemetry

__all__ = [
    "ResultCache",
    "global_cache",
    "configure_cache",
    "default_cache_dir",
    "merge_cache_dirs",
    "QUARANTINE_MAX_ENTRIES",
    "QUARANTINE_MAX_AGE_S",
]

_SENTINEL = object()

#: Bounds on the quarantine parking lot: corrupt entries are kept for
#: post-mortems but aged out on cache open so a long-lived cache
#: directory cannot accumulate junk without bound.
QUARANTINE_MAX_ENTRIES = 64
QUARANTINE_MAX_AGE_S = 7 * 86400.0


def default_cache_dir() -> Path:
    """The conventional on-disk cache location."""
    return Path(os.path.expanduser("~")) / ".cache" / "repro-noise"


class ResultCache:
    """Two-tier content-addressed cache.

    Parameters
    ----------
    max_entries:
        Bound of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent tier; ``None`` keeps the
        cache memory-only.
    telemetry:
        Telemetry sink for hit/miss counters.  When omitted, the
        *current* process default is looked up per operation — the
        cache outlives ``set_telemetry`` swaps, so a long-lived global
        cache reports into whichever sink is active.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        cache_dir: str | Path | None = None,
        telemetry: Telemetry | None = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._telemetry = telemetry
        self._memory: OrderedDict[str, object] = OrderedDict()
        if self.cache_dir is not None:
            # Created eagerly: anything else that keys off the cache
            # directory (a CampaignManifest handed the same path, a
            # shard merge) must see a directory, not a missing path.
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self.prune_quarantine()

    @property
    def telemetry(self) -> Telemetry:
        return self._telemetry or get_telemetry()

    # -- lookup ---------------------------------------------------------
    def get(self, key: str, default: object = None) -> object:
        """The cached value for *key*, or *default*.

        Memory hits refresh LRU recency; disk hits are promoted into
        the memory tier.  Every lookup's latency feeds the
        ``engine.cache.lookup_seconds`` histogram, so a campaign's
        profile distinguishes memory replays from disk unpickles.
        """
        start = time.perf_counter()
        try:
            value = self._memory.get(key, _SENTINEL)
            if value is not _SENTINEL:
                self._memory.move_to_end(key)
                self.telemetry.increment("engine.cache.hits")
                return value
            value = self._disk_get(key)
            if value is not _SENTINEL:
                self._memory_put(key, value)
                self.telemetry.increment("engine.cache.hits")
                self.telemetry.increment("engine.cache.disk_hits")
                return value
            self.telemetry.increment("engine.cache.misses")
            return default
        finally:
            self.telemetry.observe(
                "engine.cache.lookup_seconds", time.perf_counter() - start
            )

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def __len__(self) -> int:
        return len(self._memory)

    # -- store ----------------------------------------------------------
    def put(self, key: str, value: object) -> None:
        """Store *value* under *key* in both tiers."""
        self._memory_put(key, value)
        self._disk_put(key, value)

    def peek_bytes(self, key: str) -> bytes | None:
        """The raw pickled disk-tier payload for *key*, or ``None``.

        A pure read: no LRU mutation, no unpickling, no quarantine —
        safe to call from any thread (the serve layer answers ``fetch``
        requests with it from handler threads while the executor thread
        owns the live cache object).  The receiver unpickles, so a torn
        payload fails on *their* side and their own corruption
        quarantine handles it.
        """
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            return path.read_bytes()
        except OSError:
            return None

    def clear(self) -> None:
        """Drop the memory tier (the disk tier, being a durable
        artifact store, is left alone)."""
        self._memory.clear()

    # -- internals ------------------------------------------------------
    def _memory_put(self, key: str, value: object) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.telemetry.increment("engine.cache.evictions")

    def _disk_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def quarantine_dir(self) -> Path | None:
        """Where corrupt entries are parked for post-mortem inspection
        (``None`` when the disk tier is disabled)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / "quarantine"

    def prune_quarantine(
        self,
        max_entries: int = QUARANTINE_MAX_ENTRIES,
        max_age_s: float = QUARANTINE_MAX_AGE_S,
        now: float | None = None,
    ) -> int:
        """Age out quarantined entries: drop everything older than
        *max_age_s*, then the oldest beyond *max_entries*.

        Runs automatically when a disk-tier cache is opened (the only
        moment a long-lived cache directory is guaranteed a visitor).
        Returns the number of files removed; removal is best-effort —
        a concurrent campaign pruning the same directory must never
        wedge this one.
        """
        quarantine = self.quarantine_dir()
        if quarantine is None or not quarantine.is_dir():
            return 0
        now = time.time() if now is None else now
        aged: list[tuple[float, Path]] = []
        for path in quarantine.iterdir():
            if not path.is_file():
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:  # pruned by a concurrent opener
                continue
            aged.append((mtime, path))
        aged.sort()  # oldest first
        victims = [p for mtime, p in aged if now - mtime > max_age_s]
        survivors = len(aged) - len(victims)
        if survivors > max_entries:
            fresh = [p for mtime, p in aged if now - mtime <= max_age_s]
            victims.extend(fresh[: survivors - max_entries])
        pruned = 0
        for path in victims:
            try:
                path.unlink()
                pruned += 1
            except OSError:
                pass
        if pruned:
            self.telemetry.increment("engine.cache.quarantine_pruned", pruned)
        return pruned

    def _disk_get(self, key: str) -> object:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return _SENTINEL
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Corrupt/truncated entry (torn write from a killed
            # process, disk fault, version skew): quarantine it and
            # report a miss, so the engine recomputes and republishes
            # the entry instead of aborting the campaign.
            self._quarantine(key, path)
            return _SENTINEL

    def _quarantine(self, key: str, path: Path) -> None:
        self.telemetry.increment("engine.cache.quarantined")
        quarantine = self.quarantine_dir()
        try:
            if quarantine is not None:
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, quarantine / path.name)
            else:  # pragma: no cover - disk tier disabled mid-flight
                path.unlink()
        except OSError:  # racy cleanup: a reader beat us to it
            try:
                path.unlink()
            except OSError:
                pass

    def _disk_put(self, key: str, value: object) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            # Atomic publish (write + rename) so a concurrent reader or
            # an interrupted process never sees a half-written pickle.
            atomic_write_bytes(
                path, pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            )
            self.telemetry.increment("engine.cache.disk_writes")
        except OSError:  # disk tier is best-effort
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tier = f", disk={self.cache_dir}" if self.cache_dir else ""
        return f"ResultCache({len(self._memory)}/{self.max_entries}{tier})"


#: Process-wide shared cache (lazily built so env configuration can
#: happen first).
_GLOBAL: ResultCache | None = None


def global_cache() -> ResultCache:
    """The process-wide shared :class:`ResultCache`.

    On first use, the disk tier is enabled if ``$REPRO_CACHE_DIR`` is
    set (an empty value selects :func:`default_cache_dir`).
    """
    global _GLOBAL
    if _GLOBAL is None:
        env_dir = os.environ.get("REPRO_CACHE_DIR")
        cache_dir: Path | None = None
        if env_dir is not None:
            cache_dir = Path(env_dir) if env_dir else default_cache_dir()
        _GLOBAL = ResultCache(cache_dir=cache_dir)
    return _GLOBAL


def configure_cache(
    max_entries: int | None = None,
    cache_dir: str | Path | None | object = _SENTINEL,
) -> ResultCache:
    """Rebuild the process-wide cache with new settings (CLI flags).

    ``cache_dir=None`` explicitly disables the disk tier; omitting it
    keeps the current directory setting.
    """
    global _GLOBAL
    current = global_cache()
    new_dir = current.cache_dir if cache_dir is _SENTINEL else cache_dir
    _GLOBAL = ResultCache(
        max_entries=max_entries or current.max_entries,
        cache_dir=new_dir,
        telemetry=current._telemetry,
    )
    return _GLOBAL


def merge_cache_dirs(
    dest: str | Path, *sources: str | Path
) -> tuple[int, int]:
    """Fold shard disk caches into *dest*; returns ``(copied, skipped)``.

    Entries are content-addressed, so two shards can never disagree
    about a key — an entry already present in *dest* is simply skipped.
    Copies go through the atomic publish path, so a merge racing a
    reader (or another merge) never exposes a torn pickle.  Quarantine
    parking lots are deliberately not merged: a corrupt entry is a
    per-host post-mortem artifact, not campaign state.
    """
    dest = Path(dest)
    copied = skipped = 0
    for source in sources:
        source = Path(source)
        if not source.is_dir():
            continue
        for path in sorted(source.glob("??/*.pkl")):
            target = dest / path.parent.name / path.name
            if target.exists():
                skipped += 1
                continue
            try:
                atomic_write_bytes(target, path.read_bytes())
                copied += 1
            except OSError:  # unreadable source entry: recomputable
                skipped += 1
    get_telemetry().increment("engine.cache.merged_entries", copied)
    return copied, skipped
