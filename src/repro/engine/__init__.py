"""``repro.engine`` — the unified simulation-execution layer.

All sweeps in the library run through a :class:`SimulationSession`:
it wraps the raw :class:`~repro.machine.runner.ChipRunner` with
content-addressed result caching (:mod:`repro.engine.cache`), optional
process-pool fan-out of independent runs (:mod:`repro.engine.executor`)
and telemetry (:mod:`repro.obs`, the structured observability layer).
See DESIGN.md §5 and the module docstrings for the layering.
"""

from .cache import ResultCache, configure_cache, default_cache_dir, global_cache
from .campaign import CampaignManifest
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from .fingerprint import (
    canonical,
    chip_fingerprint,
    content_key,
    is_deterministic_mapping,
    run_fingerprint,
)
from .resilience import (
    GuardedOutcome,
    RetryPolicy,
    RunFailure,
    call_with_timeout,
    guarded_call,
)
from .session import BACKENDS, SimulationSession, resolve_backend_name
from .stepping import Actuation, SteppingSession, WindowObservation

__all__ = [
    "SimulationSession",
    "SteppingSession",
    "Actuation",
    "WindowObservation",
    "BACKENDS",
    "resolve_backend_name",
    "ResultCache",
    "global_cache",
    "configure_cache",
    "default_cache_dir",
    "CampaignManifest",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_jobs",
    "RetryPolicy",
    "RunFailure",
    "GuardedOutcome",
    "guarded_call",
    "call_with_timeout",
    "canonical",
    "chip_fingerprint",
    "content_key",
    "run_fingerprint",
    "is_deterministic_mapping",
]
