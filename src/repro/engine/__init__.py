"""``repro.engine`` — the unified simulation-execution layer.

All sweeps in the library run through a :class:`SimulationSession`:
it wraps the raw :class:`~repro.machine.runner.ChipRunner` with
content-addressed result caching (:mod:`repro.engine.cache`), optional
process-pool fan-out of independent runs (:mod:`repro.engine.executor`)
and telemetry (:mod:`repro.telemetry`).  See DESIGN.md §5 and the
module docstrings for the layering.
"""

from .cache import ResultCache, configure_cache, default_cache_dir, global_cache
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from .fingerprint import (
    canonical,
    chip_fingerprint,
    content_key,
    is_deterministic_mapping,
    run_fingerprint,
)
from .session import SimulationSession

__all__ = [
    "SimulationSession",
    "ResultCache",
    "global_cache",
    "configure_cache",
    "default_cache_dir",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_jobs",
    "canonical",
    "chip_fingerprint",
    "content_key",
    "run_fingerprint",
    "is_deterministic_mapping",
]
