"""Deterministic campaign sharding: hash-of-fingerprint partitioning.

A shard is declared as ``i/N`` (shard *i* of *N*): every unique run of
a campaign plan belongs to exactly one shard, decided by its content
fingerprint alone — ``int(fingerprint[:16], 16) % N == i``.  Because
the fingerprint is a SHA-256 digest of the run's *content* (chip,
mapping, options, phase identity), the partition is

* **deterministic** — the same campaign shards identically on every
  host, every platform, every process;
* **stable under plan composition** — adding a figure to the campaign
  never moves an existing run to a different shard (only its dedup
  attribution changes); and
* **balanced** — digest prefixes are uniform, so shards are equal-sized
  to within statistical noise.

Any host can therefore execute any slice with no coordination beyond
agreeing on ``N``, and the union of all shards is exactly the deduped
campaign — the property the merge step (separate shard caches and
manifests folded into one) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ShardSpec"]

#: Hex digits of the fingerprint used for partitioning (64 bits: far
#: more entropy than any realistic shard count needs).
_PARTITION_DIGITS = 16


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sharded campaign: shard ``index`` of ``count``."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(f"shard count must be >= 1 (got {self.count})")
        if not 0 <= self.index < self.count:
            raise ConfigError(
                f"shard index must be in [0, {self.count}) "
                f"(got {self.index})"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``i/N`` (e.g. ``0/2``, ``3/8``)."""
        parts = str(text).strip().split("/")
        if len(parts) != 2:
            raise ConfigError(
                f"shard must look like 'i/N' (e.g. 0/2); got {text!r}"
            )
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ConfigError(
                f"shard must be two integers 'i/N'; got {text!r}"
            ) from None
        return cls(index=index, count=count)

    def owns(self, fingerprint: str) -> bool:
        """True when the run with this content *fingerprint* belongs to
        this shard."""
        return self.partition(fingerprint, self.count) == self.index

    @staticmethod
    def partition(fingerprint: str, count: int) -> int:
        """The shard index (of *count*) that owns *fingerprint*."""
        if count < 1:
            raise ConfigError(f"shard count must be >= 1 (got {count})")
        return int(fingerprint[:_PARTITION_DIGITS], 16) % count

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"
