"""Family campaigns: one figure planned across a whole chip family.

A :class:`FamilyCampaign` is the plan-layer form of a
:class:`~repro.chips.ChipFamily` sweep: one deduplicated
:class:`~repro.plan.planner.CampaignPlan` **per member**, bound
together under the family name with aggregate accounting and a stable
family fingerprint.

Dedup semantics: run fingerprints embed the chip identity, so two
members can never share a run — dedup happens *within* each member
(cross-figure sharing still collapses there), and the family totals are
honest sums.  Sharding, by contrast, is **global**: a
:class:`~repro.plan.shard.ShardSpec` partitions runs by content
fingerprint alone, so shard ``i/N`` of the family is the union of shard
``i/N`` of every member — any host can execute any slice of any member
with no coordination beyond agreeing on ``N``, exactly as in the
single-chip case.

Execution (:func:`execute_family`) visits members in family order and
drives each member's slice through :func:`~repro.plan.execute.
execute_plan` on that member's chip — sessions are grouped by chip
fingerprint by construction, and the default member's execution is
byte-identical to a standalone single-chip run (same cache keys, same
manifest points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..chips import ChipFamily, ChipSpec, build_chip
from ..engine.cache import ResultCache, global_cache
from ..engine.campaign import CampaignManifest
from ..engine.executor import Executor, make_executor
from ..engine.fingerprint import content_key
from ..engine.resilience import RetryPolicy
from ..errors import ConfigError
from ..obs import Telemetry, get_telemetry
from .execute import ExecutionReport, execute_plan
from .planner import CampaignPlan
from .shard import ShardSpec

__all__ = ["FamilyMember", "FamilyCampaign", "FamilyReport", "execute_family"]


@dataclass
class FamilyMember:
    """One family member's slice of a family campaign."""

    spec: ChipSpec
    #: Stable chip fingerprint digest (what serve rosters and session
    #: grouping key on).
    chip_digest: str
    plan: CampaignPlan

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class FamilyCampaign:
    """The merged plan of one experiment set across a chip family."""

    family: str
    members: list[FamilyMember] = field(default_factory=list)

    # -- construction ---------------------------------------------------
    @classmethod
    def compile(
        cls,
        family: ChipFamily,
        plan_for: Callable[[ChipSpec], CampaignPlan],
        members: Sequence[ChipSpec] | None = None,
    ) -> "FamilyCampaign":
        """Compile *plan_for* over every member of *family* (or the
        explicit *members* subset).  Refuses duplicate chip identities:
        two members naming the same silicon would double-execute it.
        """
        specs = tuple(members) if members is not None else family.members()
        if not specs:
            raise ConfigError(f"family {family.name!r} has no members")
        campaign = cls(family=family.name)
        seen: dict[str, str] = {}
        for spec in specs:
            digest = spec.fingerprint()
            if digest in seen:
                raise ConfigError(
                    f"family {family.name!r}: members {seen[digest]!r} and "
                    f"{spec.name!r} compile to the same chip"
                )
            seen[digest] = spec.name
            plan = plan_for(spec)
            if content_key(plan.chip_fp) != digest:
                raise ConfigError(
                    f"family {family.name!r}: plan for member {spec.name!r} "
                    "is bound to a different chip identity"
                )
            campaign.members.append(
                FamilyMember(spec=spec, chip_digest=digest, plan=plan)
            )
        return campaign

    # -- lookup ---------------------------------------------------------
    def member(self, name: str) -> FamilyMember:
        """The member a spec name (full or label-only) or chip digest
        addresses."""
        for entry in self.members:
            if name in (entry.name, entry.chip_digest):
                return entry
            if "/" in entry.name and entry.name.split("/", 1)[1] == name:
                return entry
        raise ConfigError(
            f"family campaign {self.family!r} has no member {name!r}; "
            f"members are {[entry.name for entry in self.members]}"
        )

    # -- accounting -----------------------------------------------------
    @property
    def total_requested(self) -> int:
        return sum(entry.plan.total_requested for entry in self.members)

    @property
    def total_unique(self) -> int:
        return sum(entry.plan.total_unique for entry in self.members)

    @property
    def dedup_savings(self) -> int:
        """Runs removed before execution.  All savings are *within*
        members: fingerprints embed chip identity, so cross-member
        sharing is impossible by construction."""
        return self.total_requested - self.total_unique

    def fingerprint(self) -> str:
        """Content address of the family campaign: the sorted
        ``(chip digest, member plan fingerprint)`` pairs — stable
        across processes, platforms and member order."""
        return content_key(
            sorted(
                (entry.chip_digest, entry.plan.fingerprint())
                for entry in self.members
            )
        )

    # -- sharding -------------------------------------------------------
    def shard_sizes(self, count: int) -> list[int]:
        """Aggregate run counts per shard of an ``N``-way global split
        (the union over members of each member's shard)."""
        sizes = [0] * count
        for entry in self.members:
            for index, size in enumerate(entry.plan.shard_sizes(count)):
                sizes[index] += size
        return sizes

    def shard_runs(self, spec: ShardSpec | None) -> int:
        """Unique runs the global shard *spec* owns across the family."""
        return sum(len(entry.plan.shard(spec)) for entry in self.members)

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """JSON-friendly digest (what ``repro-noise family plan``
        renders and the family export records)."""
        return {
            "family": self.family,
            "fingerprint": self.fingerprint(),
            "members": [
                {
                    "name": entry.name,
                    "chip": entry.chip_digest,
                    "spec": entry.spec.to_dict(),
                    "plan": entry.plan.summary(),
                }
                for entry in self.members
            ],
            "requested": self.total_requested,
            "unique": self.total_unique,
            "dedup_savings": self.dedup_savings,
        }

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class FamilyReport:
    """What executing (a shard of) a family campaign did, per member."""

    family: str
    fingerprint: str
    shard: str | None
    reports: dict[str, ExecutionReport] = field(default_factory=dict)

    @property
    def runs(self) -> int:
        return sum(report.runs for report in self.reports.values())

    @property
    def executed(self) -> int:
        return sum(report.executed for report in self.reports.values())

    @property
    def replayed(self) -> int:
        return sum(report.replayed for report in self.reports.values())

    @property
    def failed(self) -> int:
        return sum(report.failed for report in self.reports.values())

    def summary(self) -> dict:
        return {
            "family": self.family,
            "fingerprint": self.fingerprint,
            "shard": self.shard,
            "runs": self.runs,
            "executed": self.executed,
            "replayed": self.replayed,
            "failed": self.failed,
            "members": {
                name: report.summary()
                for name, report in sorted(self.reports.items())
            },
        }


def execute_family(
    campaign: FamilyCampaign,
    *,
    shard: ShardSpec | None = None,
    cache: ResultCache | None = None,
    executor: Executor | str | None = None,
    jobs: int | None = None,
    retry: RetryPolicy | None = None,
    on_failure: str = "raise",
    manifest_for: Callable[[FamilyMember], CampaignManifest | None]
    | None = None,
    telemetry: Telemetry | None = None,
    backend: str | None = None,
) -> FamilyReport:
    """Execute the global *shard* of *campaign* across every member.

    Members run in family order, one :func:`execute_plan` call each, on
    the member's memoized chip — execution sessions are therefore
    grouped by chip fingerprint, and all members share one result cache
    and one executor (run fingerprints embed the chip, so the shared
    cache cannot cross-contaminate).  *manifest_for* (optional) maps a
    member to its own :class:`CampaignManifest`; manifests are
    per-member because a manifest binds one campaign identity.
    """
    telemetry = telemetry or get_telemetry()
    cache = cache if cache is not None else global_cache()
    if isinstance(executor, (str, type(None))):
        executor = make_executor(executor, jobs)

    family_fp = campaign.fingerprint()
    shard_label = str(shard) if shard is not None else None
    report = FamilyReport(
        family=campaign.family, fingerprint=family_fp, shard=shard_label
    )
    with telemetry.span(
        "family.execute",
        family=campaign.family,
        fingerprint=family_fp,
        shard=shard_label or "full",
        members=len(campaign.members),
    ):
        for entry in campaign.members:
            chip = build_chip(entry.spec)
            report.reports[entry.name] = execute_plan(
                entry.plan,
                chip,
                shard=shard,
                cache=cache,
                executor=executor,
                retry=retry,
                on_failure=on_failure,
                manifest=manifest_for(entry) if manifest_for else None,
                telemetry=telemetry,
                backend=backend,
            )
    telemetry.emit("family.completed", **report.summary())
    return report
