"""The campaign planner: merge figure plans, dedup before execution.

The paper's characterization is one giant campaign — thousands of chip
runs shared across Figures 7–15.  The engine cache already deduplicates
those runs *after* fingerprinting at lookup time; the planner makes the
sharing explicit and inspectable **before** execution: merge the
:class:`~repro.plan.spec.RunPlan` of every requested figure, key the
union by content fingerprint, and the Fig. 7a/9 frequency-sweep sharing
and the Fig. 11/13a ΔI-dataset sharing fall out as countable dedup
savings instead of cache accidents.

The merged :class:`CampaignPlan` is what the sharder slices and the
executor runs; its summary is what ``repro-noise plan`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..engine.fingerprint import content_key
from ..errors import ConfigError
from .shard import ShardSpec
from .spec import PlannedRun, RunPlan

__all__ = ["UniqueRun", "CampaignPlan"]


@dataclass
class UniqueRun:
    """One deduplicated run of a campaign: the first-seen spec, the
    set of figures consuming it, and how many planned runs collapsed
    into it."""

    fingerprint: str
    run: PlannedRun
    figures: set[str] = field(default_factory=set)
    requests: int = 0


@dataclass
class CampaignPlan:
    """The merged, deduplicated plan of a multi-figure campaign.

    ``unique`` preserves first-request order, so executing a campaign
    plan visits runs in the order the figures would have issued them —
    cache warm-up locality is preserved.
    """

    chip_fp: str
    unique: dict[str, UniqueRun] = field(default_factory=dict)
    requested_by_figure: dict[str, int] = field(default_factory=dict)

    # -- construction ---------------------------------------------------
    @classmethod
    def compile(cls, plans: Sequence[RunPlan]) -> "CampaignPlan":
        """Merge per-figure plans into one deduplicated campaign."""
        if not plans:
            raise ConfigError("cannot compile an empty campaign plan")
        chip_fps = {plan.chip_fp for plan in plans}
        if len(chip_fps) > 1:
            raise ConfigError(
                "campaign plans must share one chip identity "
                f"(got {len(chip_fps)} distinct chips)"
            )
        campaign = cls(chip_fp=plans[0].chip_fp)
        for plan in plans:
            campaign.merge(plan)
        return campaign

    def merge(self, plan: RunPlan) -> None:
        """Fold one figure plan into the campaign."""
        if plan.chip_fp != self.chip_fp:
            raise ConfigError("cannot merge a plan for a different chip")
        for run in plan.runs:
            for figure in run.figures or ("",):
                if figure:
                    self.requested_by_figure[figure] = (
                        self.requested_by_figure.get(figure, 0) + 1
                    )
            key = run.fingerprint(self.chip_fp)
            entry = self.unique.get(key)
            if entry is None:
                entry = self.unique[key] = UniqueRun(
                    fingerprint=key, run=run
                )
            entry.figures.update(run.figures)
            entry.requests += 1

    # -- accounting -----------------------------------------------------
    @property
    def total_requested(self) -> int:
        """Planned runs before dedup (what the figures would issue)."""
        return sum(entry.requests for entry in self.unique.values())

    @property
    def total_unique(self) -> int:
        """Runs the campaign actually has to execute."""
        return len(self.unique)

    @property
    def dedup_savings(self) -> int:
        """Runs the planner removed before execution."""
        return self.total_requested - self.total_unique

    def fingerprint(self) -> str:
        """Content address of the deduplicated campaign (sorted run
        fingerprints over the chip identity) — the identity recorded in
        shard manifests so merges can refuse mixed campaigns, stable
        across processes and platforms."""
        return content_key(self.chip_fp, sorted(self.unique))

    def remaining(self, completed: Iterable[str]) -> list[UniqueRun]:
        """The unique runs *not* yet in *completed*, in first-request
        order (``repro-noise plan --since <manifest>``).

        *completed* holds finished point ids as a campaign manifest
        records them — either the bare run fingerprint or the
        ``run:<fingerprint>`` form the executor checkpoints — so a
        manifest's ``completed`` set can be passed straight in.
        """
        done = set()
        for point in completed:
            done.add(point)
            if isinstance(point, str) and point.startswith("run:"):
                done.add(point[len("run:"):])
        return [
            entry
            for entry in self.unique.values()
            if entry.fingerprint not in done
            and f"run:{entry.fingerprint}" not in done
        ]

    # -- sharding -------------------------------------------------------
    def shard(self, spec: ShardSpec | None) -> list[UniqueRun]:
        """The unique runs shard *spec* owns (everything when ``None``),
        in first-request order."""
        runs = list(self.unique.values())
        if spec is None:
            return runs
        return [run for run in runs if spec.owns(run.fingerprint)]

    def shard_sizes(self, count: int) -> list[int]:
        """Run counts per shard for an ``N``-way split."""
        sizes = [0] * count
        for fingerprint in self.unique:
            sizes[ShardSpec.partition(fingerprint, count)] += 1
        return sizes

    # -- reporting ------------------------------------------------------
    def estimate_seconds(
        self,
        mean_run_s: float | None,
        jobs: int = 1,
        shard: ShardSpec | None = None,
        workers: int = 1,
    ) -> float | None:
        """Estimated cold wall-clock of (a shard of) this campaign,
        from a measured mean per-run latency (the ``engine.run.seconds``
        histogram of a previous campaign); ``None`` without a baseline.
        *jobs* is intra-process parallelism, *workers* the fleet size —
        a fleet of W workers at J jobs each divides the serial wall
        clock by ``W * J`` (leases are cheap next to a run, so the
        ideal-speedup model stays honest enough for an ETA).
        """
        if mean_run_s is None:
            return None
        parallelism = max(jobs, 1) * max(workers, 1)
        return len(self.shard(shard)) * mean_run_s / parallelism

    def summary(self) -> dict:
        """JSON-friendly digest (what ``repro-noise plan`` renders and
        the event log records as ``plan.compiled``)."""
        unique_by_figure: dict[str, int] = {}
        exclusive_by_figure: dict[str, int] = {}
        for entry in self.unique.values():
            for figure in sorted(entry.figures):
                unique_by_figure[figure] = unique_by_figure.get(figure, 0) + 1
            if len(entry.figures) == 1:
                (figure,) = entry.figures
                exclusive_by_figure[figure] = (
                    exclusive_by_figure.get(figure, 0) + 1
                )
        return {
            "plan": self.fingerprint(),
            "figures": sorted(self.requested_by_figure),
            "requested_by_figure": dict(
                sorted(self.requested_by_figure.items())
            ),
            "unique_by_figure": dict(sorted(unique_by_figure.items())),
            "exclusive_by_figure": dict(sorted(exclusive_by_figure.items())),
            "requested": self.total_requested,
            "unique": self.total_unique,
            "dedup_savings": self.dedup_savings,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CampaignPlan(unique={self.total_unique}, "
            f"requested={self.total_requested})"
        )


def merge_plans(plans: Iterable[RunPlan]) -> CampaignPlan:
    """Convenience alias for :meth:`CampaignPlan.compile`."""
    return CampaignPlan.compile(list(plans))
