"""``repro.plan`` — the declarative run-plan layer.

The paper's characterization is one giant campaign: thousands of chip
runs shared across Figures 7–15.  This package turns the repo's
per-figure scripts into a schedulable campaign system by splitting the
pipeline into **plan → dedup → shard → execute**:

* :mod:`repro.plan.spec` — :class:`PlannedRun` / :class:`RunPlan`:
  declarative, content-fingerprintable run specifications (what a
  figure *would* execute);
* :mod:`repro.plan.planner` — :class:`CampaignPlan`: merge the plans
  of a multi-figure campaign and deduplicate identical runs *before*
  execution, so cross-figure sharing (Fig. 7a/9's frequency sweep,
  Fig. 11/13a's ΔI dataset) is explicit and countable;
* :mod:`repro.plan.shard` — :class:`ShardSpec`: deterministic
  hash-of-fingerprint partitioning (``--shard i/N``), so any host can
  execute any slice with no coordination;
* :mod:`repro.plan.execute` — :func:`execute_plan`: run a slice
  through the engine (same cache, same fingerprints), checkpointing
  through :class:`~repro.engine.campaign.CampaignManifest` so shard
  caches/manifests merge into a bit-identical unsharded result;
* :mod:`repro.plan.family` — :class:`FamilyCampaign` /
  :func:`execute_family`: the same pipeline fanned across a declarative
  chip family (one member plan per chip fingerprint, global sharding,
  per-chip execution sessions).

See DESIGN.md §9 for the plan model, the shard partitioning function
and the merge semantics.
"""

from .execute import ExecutionReport, execute_plan, run_point_id
from .family import FamilyCampaign, FamilyMember, FamilyReport, execute_family
from .planner import CampaignPlan, UniqueRun, merge_plans
from .shard import ShardSpec
from .spec import PlannedRun, RunPlan, chip_identity

__all__ = [
    "PlannedRun",
    "RunPlan",
    "chip_identity",
    "CampaignPlan",
    "UniqueRun",
    "merge_plans",
    "ShardSpec",
    "ExecutionReport",
    "execute_plan",
    "run_point_id",
    "FamilyCampaign",
    "FamilyMember",
    "FamilyReport",
    "execute_family",
]
