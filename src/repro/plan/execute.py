"""Plan execution: run a (shard of a) compiled campaign plan.

This is the "execute" stage of plan → dedup → shard → execute.  It
takes the deduplicated :class:`~repro.plan.planner.CampaignPlan`, slices
it with an optional :class:`~repro.plan.shard.ShardSpec`, and drives the
remaining unique runs through :class:`SimulationSession` — same cache,
same fingerprints, same retry policy as the imperative path, so a shard
execution is purely a cache-warming transformation: once every shard's
disk cache and manifest are merged, re-running the unsharded campaign
replays 100% from cache and produces bit-identical exports.

Runs are grouped by their (canonicalized) :class:`RunOptions` — one
session per distinct options set, all sharing one cache/executor — so a
plan mixing, say, Fig. 8's waveform-collecting runs with ordinary sweep
runs executes each under the options it was planned with.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

from ..engine.campaign import CampaignManifest
from ..engine.cache import ResultCache, global_cache
from ..engine.executor import Executor, make_executor
from ..engine.fingerprint import canonical
from ..engine.resilience import RetryPolicy, RunFailure
from ..engine.session import SimulationSession
from ..errors import ConfigError
from ..machine.chip import Chip
from ..obs import Telemetry, get_telemetry
from .planner import CampaignPlan, UniqueRun
from .shard import ShardSpec
from .spec import chip_identity

__all__ = ["ExecutionReport", "execute_plan", "run_point_id"]


def run_point_id(fingerprint: str) -> str:
    """Manifest point id of one planned run (run-level checkpoints live
    in the same namespace as experiment-level points, prefixed apart)."""
    return f"run:{fingerprint}"


@dataclass
class ExecutionReport:
    """What executing a plan slice actually did."""

    plan: str                      # campaign plan fingerprint
    shard: str | None              # "i/N", or None for the full plan
    runs: int                      # unique runs this slice owns
    executed: int = 0              # solved now (cache misses)
    replayed: int = 0              # served from cache
    failed: int = 0                # exhausted their retry budget
    results: dict = field(default_factory=dict)  # fingerprint -> result
    #: Per-worker accounting for fleet executions: worker id →
    #: {"completed", "stolen", "failed"} (see
    #: :meth:`CampaignManifest.fleet_accounting`).  Empty for
    #: single-process executions.
    by_worker: dict = field(default_factory=dict)

    def summary(self) -> dict:
        summary = {
            "plan": self.plan,
            "shard": self.shard,
            "runs": self.runs,
            "executed": self.executed,
            "replayed": self.replayed,
            "failed": self.failed,
        }
        if self.by_worker:
            summary["by_worker"] = {
                worker: dict(tally)
                for worker, tally in sorted(self.by_worker.items())
            }
            summary["stolen"] = sum(
                tally.get("stolen", 0) for tally in self.by_worker.values()
            )
        return summary


def execute_plan(
    campaign: CampaignPlan,
    chip: Chip,
    *,
    shard: ShardSpec | None = None,
    cache: ResultCache | None = None,
    executor: Executor | str | None = None,
    jobs: int | None = None,
    retry: RetryPolicy | None = None,
    on_failure: str = "raise",
    manifest: CampaignManifest | None = None,
    telemetry: Telemetry | None = None,
    backend: str | None = None,
) -> ExecutionReport:
    """Execute the slice of *campaign* owned by *shard* (the whole plan
    when ``shard`` is ``None``) on *chip*.

    With a *manifest*, execution runs under the manifest writer lock
    (a second live writer to the same path is refused), binds the
    campaign identity into the manifest, and checkpoints run-level
    completion points batch-wise — the durable record the shard-merge
    step folds together.

    ``backend`` selects the solve path of every execution session
    (``auto``/``reference``/``batched``; environment default when
    omitted).  It never enters run fingerprints, so shards executed
    under different backends still merge into one coherent cache.
    """
    if chip_identity(chip.config, chip.chip_id) != campaign.chip_fp:
        raise ConfigError(
            "chip does not match the campaign plan's chip identity"
        )
    telemetry = telemetry or get_telemetry()
    cache = cache if cache is not None else global_cache()
    if isinstance(executor, (str, type(None))):
        executor = make_executor(executor, jobs)

    slice_runs = campaign.shard(shard)
    plan_fp = campaign.fingerprint()
    shard_label = str(shard) if shard is not None else None
    report = ExecutionReport(
        plan=plan_fp, shard=shard_label, runs=len(slice_runs)
    )

    telemetry.emit("plan.compiled", **campaign.summary())
    telemetry.emit(
        "shard.started",
        plan=plan_fp,
        shard=shard_label,
        runs=len(slice_runs),
    )
    with ExitStack() as stack:
        if manifest is not None:
            stack.enter_context(manifest.writer_lock())
            manifest.bind_campaign({"plan": plan_fp, "shard": shard_label})
        stack.enter_context(
            telemetry.span(
                "plan.execute",
                plan=plan_fp,
                shard=shard_label or "full",
                runs=len(slice_runs),
            )
        )
        executed_before = telemetry.counter("engine.runs_executed")
        for group in _group_by_options(slice_runs).values():
            session = SimulationSession(
                chip,
                group[0].run.options,
                cache=cache,
                executor=executor,
                retry=retry,
                on_failure=on_failure,
                telemetry=telemetry,
                backend=backend,
            )
            results = session.run_many(
                [list(entry.run.mapping) for entry in group],
                [entry.run.tag for entry in group],
            )
            finished = []
            for entry, result in zip(group, results):
                report.results[entry.fingerprint] = result
                if isinstance(result, RunFailure):
                    report.failed += 1
                else:
                    finished.append(run_point_id(entry.fingerprint))
            if manifest is not None:
                manifest.mark_many_complete(finished)
        report.executed = (
            telemetry.counter("engine.runs_executed") - executed_before
        )
        report.replayed = report.runs - report.executed - report.failed
        if manifest is not None:
            manifest.mark_complete(
                f"shard:{shard_label or 'full'}", meta=report.summary()
            )
    telemetry.emit("shard.completed", **report.summary())
    return report


def _group_by_options(runs: list[UniqueRun]) -> dict[str, list[UniqueRun]]:
    """Group plan entries by canonicalized options, preserving
    first-occurrence order (both across and within groups)."""
    groups: dict[str, list[UniqueRun]] = {}
    for entry in runs:
        groups.setdefault(canonical(entry.run.options), []).append(entry)
    return groups
