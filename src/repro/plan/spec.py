"""Declarative run specifications: what a figure *would* execute.

A :class:`PlannedRun` names one chip run — the per-core mapping, the
run tag, the fully-resolved :class:`~repro.machine.runner.RunOptions`
and the figures that consume its result — without executing anything.
A :class:`RunPlan` is an ordered list of planned runs over one chip:
the declarative form of a sweep or an experiment driver's workload.

Plans are *fingerprintable*: every planned run has the same content
address (:func:`repro.engine.fingerprint.run_fingerprint`) the engine
cache uses at execution time, so the planner can count, deduplicate,
shard and cost a campaign **before** a single PDN solve happens — and
the executed campaign provably runs exactly the planned set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..engine.fingerprint import canonical, content_key, run_fingerprint
from ..machine.chip import Chip, ChipConfig
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram

__all__ = ["PlannedRun", "RunPlan", "chip_identity"]


def chip_identity(config: ChipConfig, chip_id: int = 0) -> str:
    """The chip fingerprint a plan binds to, computed from the
    configuration alone — identical to
    :func:`~repro.engine.fingerprint.chip_fingerprint` of the built
    chip, but available without paying for the modal decomposition
    (planning must stay cheap)."""
    return canonical((Chip.__name__, config, chip_id))


@dataclass(frozen=True)
class PlannedRun:
    """One declarative run: mapping + options + tag + consumers.

    Attributes
    ----------
    mapping:
        The per-core current programs (``None`` = unloaded core).
    tag:
        The run tag the executing sweep will use.  Part of the content
        address only for phase-randomized mappings, exactly as at
        execution time.
    options:
        The fully-resolved run options this run executes under
        (sweep-level overrides already applied).
    figures:
        Ids of the figures/experiments that consume this run's result.
    """

    mapping: tuple[CurrentProgram | None, ...]
    tag: object
    options: RunOptions
    figures: frozenset[str] = frozenset()

    def fingerprint(self, chip_fp: str) -> str:
        """The content address this run will have under a session on a
        chip with fingerprint *chip_fp* — byte-identical to what
        :meth:`SimulationSession.fingerprint` computes at execution
        time, which is what makes pre-execution dedup honest."""
        return run_fingerprint(chip_fp, list(self.mapping), self.options, self.tag)

    def with_figures(self, figures: Iterable[str]) -> "PlannedRun":
        """A copy tagged with the union of consumers."""
        return PlannedRun(
            mapping=self.mapping,
            tag=self.tag,
            options=self.options,
            figures=self.figures | frozenset(figures),
        )


@dataclass
class RunPlan:
    """The declarative workload of one figure (or one sweep): an
    ordered list of :class:`PlannedRun` bound to one chip identity."""

    chip_fp: str
    runs: list[PlannedRun] = field(default_factory=list)

    @classmethod
    def for_chip(cls, chip: Chip) -> "RunPlan":
        return cls(chip_fp=chip_identity(chip.config, chip.chip_id))

    @classmethod
    def from_batch(
        cls,
        chip: Chip,
        mappings: Sequence[Sequence[CurrentProgram | None]],
        tags: Sequence[object],
        options: RunOptions,
        figure: str | None = None,
    ) -> "RunPlan":
        """A plan from the ``(mappings, tags)`` pair a sweep compiler
        produced — the batched shape :meth:`SimulationSession.run_many`
        takes, made declarative."""
        if len(mappings) != len(tags):
            raise ValueError("mappings and tags must have equal length")
        figures = frozenset({figure} if figure else ())
        plan = cls.for_chip(chip)
        for mapping, tag in zip(mappings, tags):
            plan.runs.append(
                PlannedRun(
                    mapping=tuple(mapping),
                    tag=tag,
                    options=options,
                    figures=figures,
                )
            )
        return plan

    def add(
        self,
        mapping: Sequence[CurrentProgram | None],
        tag: object,
        options: RunOptions,
        figure: str | None = None,
    ) -> None:
        self.runs.append(
            PlannedRun(
                mapping=tuple(mapping),
                tag=tag,
                options=options,
                figures=frozenset({figure} if figure else ()),
            )
        )

    def extend(self, other: "RunPlan") -> None:
        """Append *other*'s runs (same chip identity required)."""
        if other.chip_fp != self.chip_fp:
            raise ValueError("cannot extend a plan across chip identities")
        self.runs.extend(other.runs)

    def tagged(self, figure: str) -> "RunPlan":
        """A copy whose every run is attributed to *figure*."""
        return RunPlan(
            chip_fp=self.chip_fp,
            runs=[run.with_figures({figure}) for run in self.runs],
        )

    def fingerprints(self) -> list[str]:
        """Per-run content addresses, in plan order."""
        return [run.fingerprint(self.chip_fp) for run in self.runs]

    def fingerprint(self) -> str:
        """Content address of the whole plan: the chip identity plus
        the *sorted set* of run fingerprints, so two plans requesting
        the same work in different orders (or with internal duplicates)
        address identically — stable across processes and platforms."""
        return content_key(self.chip_fp, sorted(set(self.fingerprints())))

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[PlannedRun]:
        return iter(self.runs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunPlan({len(self.runs)} runs)"
