"""Command-line interface: ``repro-noise`` (or ``python -m repro``).

Subcommands:

* ``list`` — show the available experiments;
* ``run <id> [...]`` — run experiments and print their rows/series
  (``run all`` runs the whole suite);
* ``table1 .. fig15`` — shorthand for ``run <id>``.

``--quick`` swaps in the reduced-cost context (shorter EPI loops, fewer
sweep points) for smoke runs.  The engine knobs: ``--jobs N`` /
``--executor process`` fan cache misses out over worker processes,
``--cache-dir DIR`` persists the result cache across invocations, and
``run --profile`` prints the engine telemetry (run counts, cache
hits/misses, solver calls, per-experiment wall clock) after the run.

Fault tolerance: ``--max-retries`` / ``--run-timeout`` set the engine
retry policy for every session the drivers build; a multi-experiment
invocation records per-experiment completion in a campaign manifest
(next to ``--output`` or the cache dir), so a killed campaign can be
re-invoked with ``run --resume`` and only the unfinished experiments —
and, thanks to the disk cache's incremental checkpoints, only their
unfinished runs — are recomputed.  ``telemetry.json`` is exported even
when the campaign fails partway.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .errors import ReproError
from .experiments import (
    all_experiments,
    default_context,
    get_experiment,
    quick_context,
)
from .telemetry import get_telemetry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noise",
        description=(
            "Reproduction of 'Voltage Noise in Multi-core Processors' "
            "(MICRO 2014): run the paper's experiments on the simulated "
            "platform."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced-cost context (smoke runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for sweep fan-out (default: $REPRO_JOBS "
        "or the CPU count; implies --executor process when N > 1)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="sweep execution backend (default: $REPRO_EXECUTOR or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="enable the on-disk result-cache tier in DIR (an empty "
        "string selects ~/.cache/repro-noise)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        default=None,
        help="re-executions granted to a failing run before it is "
        "reported as a permanent failure (default: $REPRO_MAX_RETRIES "
        "or 2)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-run wall-clock budget; a run exceeding it fails and "
        "is retried (default: $REPRO_RUN_TIMEOUT or unlimited)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table1 fig7a), or 'all'",
    )
    run.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also export text+JSON artifacts per experiment into DIR",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments the campaign manifest (in --output or "
        "--cache-dir) records as finished; combined with the disk "
        "cache, only unfinished runs are recomputed",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print engine telemetry (runs, cache hits, wall clock) "
        "after the run",
    )
    return parser


def _configure_engine(args: argparse.Namespace) -> None:
    """Point the engine defaults at the CLI's choices.

    Sessions read ``$REPRO_JOBS``/``$REPRO_EXECUTOR`` at construction
    time, so the flags are exported for every session the experiment
    drivers build (and for their worker processes).
    """
    from .engine import configure_cache

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.executor is None and args.jobs > 1:
            args.executor = "process"
    if args.executor is not None:
        os.environ["REPRO_EXECUTOR"] = args.executor
    if args.max_retries is not None:
        os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)
    if args.run_timeout is not None:
        os.environ["REPRO_RUN_TIMEOUT"] = str(args.run_timeout)
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        configure_cache(cache_dir=args.cache_dir or default_cache_dir())


def _campaign_dir(args: argparse.Namespace) -> Path | None:
    """Where this campaign keeps durable state (manifest): the export
    directory when given, else the disk-cache directory."""
    if getattr(args, "output", None):
        return Path(args.output)
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        return Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return None


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_engine(args)

    if args.command == "list":
        for experiment_id, title in all_experiments().items():
            print(f"{experiment_id:<8} {title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list(all_experiments())
    try:
        drivers = [(eid, get_experiment(eid)) for eid in requested]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    campaign_dir = _campaign_dir(args)
    if args.resume and campaign_dir is None:
        print(
            "error: --resume needs --output or --cache-dir (somewhere "
            "for the campaign manifest to live)",
            file=sys.stderr,
        )
        return 2
    manifest = None
    if campaign_dir is not None:
        from .engine import CampaignManifest

        manifest = CampaignManifest(campaign_dir / "campaign-manifest.json")
    telemetry = get_telemetry()
    if args.resume:
        finished = manifest.completed
        skipped = [eid for eid, _ in drivers if eid in finished]
        if skipped:
            drivers = [(e, d) for e, d in drivers if e not in finished]
            telemetry.increment("campaign.points_skipped", len(skipped))
            print(
                f"resume: skipping {len(skipped)} finished "
                f"experiment(s): {', '.join(skipped)}"
            )

    context = quick_context() if args.quick else default_context()
    status = 0
    results = []
    try:
        for experiment_id, driver in drivers:
            if manifest is not None:
                manifest.mark_started(experiment_id)
            try:
                result = driver(context)
            except ReproError as error:
                print(f"error in {experiment_id}: {error}", file=sys.stderr)
                if manifest is not None:
                    manifest.mark_failed(experiment_id, str(error))
                telemetry.increment("campaign.points_failed")
                status = 1
                continue
            results.append(result)
            telemetry.increment("campaign.points_completed")
            if manifest is not None:
                manifest.mark_complete(experiment_id)
            print(result)
            print()
    except KeyboardInterrupt:
        # Completed runs are already checkpointed (disk cache) and
        # completed experiments recorded (manifest): resumable.
        status = 130
        print(
            "interrupted: campaign state is checkpointed; re-invoke "
            "with 'run --resume' to continue",
            file=sys.stderr,
        )
    finally:
        if args.output and results:
            from .experiments.exporter import export_results

            index = export_results(results, args.output, telemetry)
            print(
                f"exported {len(results)} experiment artifact(s); "
                f"index: {index}"
            )
        elif args.output:
            # No finished result — still flush the telemetry snapshot
            # so the failed/interrupted campaign is diagnosable.
            from .experiments.exporter import export_telemetry

            export_telemetry(args.output, telemetry)
        if status != 0 and telemetry.resilience_summary():
            summary = ", ".join(
                f"{name}={count}"
                for name, count in telemetry.resilience_summary().items()
            )
            print(f"resilience counters: {summary}", file=sys.stderr)
        if args.profile:
            print(telemetry.report())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
