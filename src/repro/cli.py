"""Command-line interface: ``repro-noise`` (or ``python -m repro``).

Subcommands:

* ``list`` — show the available experiments;
* ``run <id> [...]`` — run experiments and print their rows/series
  (``run all`` runs the whole suite);
* ``table1 .. fig15`` — shorthand for ``run <id>``.

``--quick`` swaps in the reduced-cost context (shorter EPI loops, fewer
sweep points) for smoke runs.  The engine knobs: ``--jobs N`` /
``--executor process`` fan cache misses out over worker processes,
``--cache-dir DIR`` persists the result cache across invocations, and
``run --profile`` prints the engine telemetry (run counts, cache
hits/misses, solver calls, per-experiment wall clock) after the run.
"""

from __future__ import annotations

import argparse
import os
import sys

from .errors import ReproError
from .experiments import (
    all_experiments,
    default_context,
    get_experiment,
    quick_context,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noise",
        description=(
            "Reproduction of 'Voltage Noise in Multi-core Processors' "
            "(MICRO 2014): run the paper's experiments on the simulated "
            "platform."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced-cost context (smoke runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for sweep fan-out (default: $REPRO_JOBS "
        "or the CPU count; implies --executor process when N > 1)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="sweep execution backend (default: $REPRO_EXECUTOR or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="enable the on-disk result-cache tier in DIR (an empty "
        "string selects ~/.cache/repro-noise)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table1 fig7a), or 'all'",
    )
    run.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also export text+JSON artifacts per experiment into DIR",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print engine telemetry (runs, cache hits, wall clock) "
        "after the run",
    )
    return parser


def _configure_engine(args: argparse.Namespace) -> None:
    """Point the engine defaults at the CLI's choices.

    Sessions read ``$REPRO_JOBS``/``$REPRO_EXECUTOR`` at construction
    time, so the flags are exported for every session the experiment
    drivers build (and for their worker processes).
    """
    from .engine import configure_cache

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.executor is None and args.jobs > 1:
            args.executor = "process"
    if args.executor is not None:
        os.environ["REPRO_EXECUTOR"] = args.executor
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        configure_cache(cache_dir=args.cache_dir or default_cache_dir())


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_engine(args)

    if args.command == "list":
        for experiment_id, title in all_experiments().items():
            print(f"{experiment_id:<8} {title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list(all_experiments())
    try:
        drivers = [(eid, get_experiment(eid)) for eid in requested]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    context = quick_context() if args.quick else default_context()
    status = 0
    results = []
    for experiment_id, driver in drivers:
        try:
            result = driver(context)
        except ReproError as error:
            print(f"error in {experiment_id}: {error}", file=sys.stderr)
            status = 1
            continue
        results.append(result)
        print(result)
        print()
    if args.output and results:
        from .experiments.exporter import export_results

        index = export_results(results, args.output)
        print(f"exported {len(results)} experiment artifact(s); index: {index}")
    if args.profile:
        from .telemetry import get_telemetry

        print(get_telemetry().report())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
