"""Command-line interface: ``repro-noise`` (or ``python -m repro``).

Subcommands:

* ``list`` — show the available experiments;
* ``run <id> [...]`` — run experiments and print their rows/series
  (``run all`` runs the whole suite);
* ``table1 .. fig15`` — shorthand for ``run <id>``.

``--quick`` swaps in the reduced-cost context (shorter EPI loops, fewer
sweep points) for smoke runs.
"""

from __future__ import annotations

import argparse
import sys

from .errors import ReproError
from .experiments import (
    all_experiments,
    default_context,
    get_experiment,
    quick_context,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noise",
        description=(
            "Reproduction of 'Voltage Noise in Multi-core Processors' "
            "(MICRO 2014): run the paper's experiments on the simulated "
            "platform."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced-cost context (smoke runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table1 fig7a), or 'all'",
    )
    run.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also export text+JSON artifacts per experiment into DIR",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id, title in all_experiments().items():
            print(f"{experiment_id:<8} {title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list(all_experiments())
    try:
        drivers = [(eid, get_experiment(eid)) for eid in requested]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    context = quick_context() if args.quick else default_context()
    status = 0
    results = []
    for experiment_id, driver in drivers:
        try:
            result = driver(context)
        except ReproError as error:
            print(f"error in {experiment_id}: {error}", file=sys.stderr)
            status = 1
            continue
        results.append(result)
        print(result)
        print()
    if args.output and results:
        from .experiments.exporter import export_results

        index = export_results(results, args.output)
        print(f"exported {len(results)} experiment artifact(s); index: {index}")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
