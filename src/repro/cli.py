"""Command-line interface: ``repro-noise`` (or ``python -m repro``).

Subcommands:

* ``list`` — show the available experiments;
* ``run <id> [...]`` — run experiments and print their rows/series
  (``run all`` runs the whole suite);
* ``profile <events.jsonl>`` — render a campaign post-mortem (latency
  percentiles, slowest runs, retry hot spots, span tree) from the
  event log a ``--trace`` campaign wrote; ``--chrome-trace OUT.json``
  additionally exports a Perfetto/``chrome://tracing`` timeline;
* ``table1 .. fig15`` — shorthand for ``run <id>``.

``--quick`` swaps in the reduced-cost context (shorter EPI loops, fewer
sweep points) for smoke runs.  The engine knobs: ``--jobs N`` /
``--executor process`` fan cache misses out over worker processes,
``--cache-dir DIR`` persists the result cache across invocations, and
``run --profile`` prints the engine telemetry (run counts, cache
hits/misses, latency histograms, solver calls, per-experiment wall
clock) after the run.

Observability: ``--trace`` records hierarchical spans (campaign →
experiment → session phases) and appends every run lifecycle event
(scheduled, started, retried, failed, cached, completed) to an
incremental JSONL log — ``events.jsonl`` in the campaign directory, or
``--trace-file PATH`` — which stays readable even if the campaign is
killed midway.

Fault tolerance: ``--max-retries`` / ``--run-timeout`` set the engine
retry policy for every session the drivers build; ``--on-failure
collect`` keeps the points of a sweep that solved instead of aborting
on the first permanent failure (dropped points are counted in the
exported results and detailed in the event log).  A multi-experiment
invocation records per-experiment completion in a campaign manifest
(next to ``--output`` or the cache dir), so a killed campaign can be
re-invoked with ``run --resume`` and only the unfinished experiments —
and, thanks to the disk cache's incremental checkpoints, only their
unfinished runs — are recomputed.  ``telemetry.json`` is exported even
when the campaign fails partway.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .errors import ReproError
from .experiments import (
    all_experiments,
    default_context,
    get_experiment,
    quick_context,
)
from .telemetry import get_telemetry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noise",
        description=(
            "Reproduction of 'Voltage Noise in Multi-core Processors' "
            "(MICRO 2014): run the paper's experiments on the simulated "
            "platform."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced-cost context (smoke runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for sweep fan-out (default: $REPRO_JOBS "
        "or the CPU count; implies --executor process when N > 1)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="sweep execution backend (default: $REPRO_EXECUTOR or serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="enable the on-disk result-cache tier in DIR (an empty "
        "string selects ~/.cache/repro-noise)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        default=None,
        help="re-executions granted to a failing run before it is "
        "reported as a permanent failure (default: $REPRO_MAX_RETRIES "
        "or 2)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-run wall-clock budget; a run exceeding it fails and "
        "is retried (default: $REPRO_RUN_TIMEOUT or unlimited)",
    )
    parser.add_argument(
        "--on-failure",
        choices=("raise", "collect"),
        default=None,
        help="what a permanently failed run does to its sweep: abort "
        "it ('raise', the default) or drop the point and keep the "
        "rest ('collect'); dropped points are marked in the exported "
        "results and detailed in the event log",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans and run lifecycle events to an incremental "
        "JSONL log (events.jsonl in the campaign directory; see "
        "--trace-file); inspect it with 'repro-noise profile'",
    )
    parser.add_argument(
        "--trace-file",
        metavar="FILE",
        default=None,
        help="where --trace writes the event log (implies --trace)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    profile = sub.add_parser(
        "profile",
        help="render a campaign post-mortem from a --trace event log",
    )
    profile.add_argument(
        "events",
        metavar="EVENTS_JSONL",
        help="the events.jsonl a --trace campaign wrote",
    )
    profile.add_argument(
        "--chrome-trace",
        metavar="OUT_JSON",
        default=None,
        help="also export a Chrome trace-event (Perfetto) timeline",
    )
    profile.add_argument(
        "--top",
        type=int,
        metavar="N",
        default=5,
        help="how many slowest runs / retry hot spots to list",
    )
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table1 fig7a), or 'all'",
    )
    run.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also export text+JSON artifacts per experiment into DIR",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments the campaign manifest (in --output or "
        "--cache-dir) records as finished; combined with the disk "
        "cache, only unfinished runs are recomputed",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print engine telemetry (runs, cache hits, wall clock) "
        "after the run",
    )
    return parser


def _configure_engine(args: argparse.Namespace) -> None:
    """Point the engine defaults at the CLI's choices.

    Sessions read ``$REPRO_JOBS``/``$REPRO_EXECUTOR`` at construction
    time, so the flags are exported for every session the experiment
    drivers build (and for their worker processes).
    """
    from .engine import configure_cache

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.executor is None and args.jobs > 1:
            args.executor = "process"
    if args.executor is not None:
        os.environ["REPRO_EXECUTOR"] = args.executor
    if args.max_retries is not None:
        os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)
    if args.run_timeout is not None:
        os.environ["REPRO_RUN_TIMEOUT"] = str(args.run_timeout)
    if args.on_failure is not None:
        os.environ["REPRO_ON_FAILURE"] = args.on_failure
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        configure_cache(cache_dir=args.cache_dir or default_cache_dir())


def _campaign_dir(args: argparse.Namespace) -> Path | None:
    """Where this campaign keeps durable state (manifest): the export
    directory when given, else the disk-cache directory."""
    if getattr(args, "output", None):
        return Path(args.output)
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        return Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return None


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: post-mortem of a --trace event log."""
    from .obs import export_chrome_trace, load_profile, render_profile

    path = Path(args.events)
    if not path.exists():
        print(f"error: no such event log: {path}", file=sys.stderr)
        return 2
    profile = load_profile(path)
    if not profile.events:
        print(f"error: {path} holds no events", file=sys.stderr)
        return 2
    print(render_profile(profile, top=max(args.top, 1)))
    if args.chrome_trace:
        out = export_chrome_trace(profile.events, args.chrome_trace)
        print(f"\nchrome trace written to {out} "
              f"(load in Perfetto or chrome://tracing)")
    return 0


def _trace_log(args: argparse.Namespace, campaign_dir: Path | None):
    """Open the JSONL event log when tracing is requested (``--trace``
    / ``--trace-file``); returns None otherwise."""
    if not (args.trace or args.trace_file):
        return None
    from .obs import EventLog

    path = (
        Path(args.trace_file)
        if args.trace_file
        else (campaign_dir or Path(".")) / "events.jsonl"
    )
    return EventLog(path)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "profile":
        return _run_profile(args)

    _configure_engine(args)

    if args.command == "list":
        for experiment_id, title in all_experiments().items():
            print(f"{experiment_id:<8} {title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list(all_experiments())
    try:
        drivers = [(eid, get_experiment(eid)) for eid in requested]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    campaign_dir = _campaign_dir(args)
    if args.resume and campaign_dir is None:
        print(
            "error: --resume needs --output or --cache-dir (somewhere "
            "for the campaign manifest to live)",
            file=sys.stderr,
        )
        return 2
    manifest = None
    if campaign_dir is not None:
        from .engine import CampaignManifest

        manifest = CampaignManifest(campaign_dir / "campaign-manifest.json")
    telemetry = get_telemetry()
    if args.resume:
        finished = manifest.completed
        skipped = [eid for eid, _ in drivers if eid in finished]
        if skipped:
            drivers = [(e, d) for e, d in drivers if e not in finished]
            telemetry.increment("campaign.points_skipped", len(skipped))
            print(
                f"resume: skipping {len(skipped)} finished "
                f"experiment(s): {', '.join(skipped)}"
            )

    event_log = _trace_log(args, campaign_dir)
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
        telemetry.emit(
            "campaign.started", experiments=[eid for eid, _ in drivers]
        )

    context = quick_context() if args.quick else default_context()
    status = 0
    results = []
    try:
        with telemetry.span("campaign", experiments=len(drivers)):
            for experiment_id, driver in drivers:
                if manifest is not None:
                    manifest.mark_started(experiment_id)
                telemetry.emit("experiment.started", experiment=experiment_id)
                try:
                    result = driver(context)
                except ReproError as error:
                    print(
                        f"error in {experiment_id}: {error}", file=sys.stderr
                    )
                    if manifest is not None:
                        manifest.mark_failed(experiment_id, str(error))
                    telemetry.increment("campaign.points_failed")
                    telemetry.emit(
                        "experiment.failed",
                        experiment=experiment_id,
                        error=str(error),
                    )
                    status = 1
                    continue
                results.append(result)
                telemetry.increment("campaign.points_completed")
                if manifest is not None:
                    manifest.mark_complete(experiment_id)
                telemetry.emit(
                    "experiment.completed", experiment=experiment_id
                )
                print(result)
                print()
    except KeyboardInterrupt:
        # Completed runs are already checkpointed (disk cache) and
        # completed experiments recorded (manifest): resumable.
        status = 130
        print(
            "interrupted: campaign state is checkpointed; re-invoke "
            "with 'run --resume' to continue",
            file=sys.stderr,
        )
    finally:
        if event_log is not None:
            telemetry.emit(
                "campaign.completed",
                status=status,
                snapshot=telemetry.snapshot(),
            )
            event_log.close()
            print(
                f"event log: {event_log.path} "
                f"(inspect with 'repro-noise profile')",
                file=sys.stderr,
            )
        if args.output and results:
            from .experiments.exporter import export_results

            index = export_results(results, args.output, telemetry)
            print(
                f"exported {len(results)} experiment artifact(s); "
                f"index: {index}"
            )
        elif args.output:
            # No finished result — still flush the telemetry snapshot
            # so the failed/interrupted campaign is diagnosable.
            from .experiments.exporter import export_telemetry

            export_telemetry(args.output, telemetry)
        if status != 0 and telemetry.resilience_summary():
            summary = ", ".join(
                f"{name}={count}"
                for name, count in telemetry.resilience_summary().items()
            )
            print(f"resilience counters: {summary}", file=sys.stderr)
        if args.profile:
            print(telemetry.report())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
