"""Command-line interface: ``repro-noise`` (or ``python -m repro``).

Subcommands:

* ``list`` — show the available experiments;
* ``run <id> [...]`` — run experiments and print their rows/series
  (``run all`` runs the whole suite);
* ``plan <id> [...]`` — compile the requested figures into one
  deduplicated campaign plan and report it without running anything:
  runs requested per figure, unique runs after cross-figure dedup
  (Fig. 7a/9 share a frequency sweep, Fig. 11/13a share the ΔI
  dataset), shard-size preview (``--shards N``), and an estimated
  cold wall clock when a previous campaign's ``telemetry.json``
  provides a per-run latency baseline (``--telemetry PATH``);
  ``--since MANIFEST`` diffs the plan against a campaign manifest and
  reports only the runs not yet checkpointed as complete;
* ``profile <events.jsonl>`` — render a campaign post-mortem (latency
  percentiles, slowest runs, retry hot spots, span tree) from the
  event log a ``--trace`` campaign wrote; ``--chrome-trace OUT.json``
  additionally exports a Perfetto/``chrome://tracing`` timeline;
  ``--follow`` tails the log of a *live* campaign instead, refreshing
  the summary as events land (torn tail tolerated) until the campaign
  completes or Ctrl-C;
* ``serve`` — start the always-on simulation service: a TCP/JSON-lines
  endpoint that keeps the chip and a warm session pool resident and
  answers simulation requests through a hot in-memory tier, the
  engine's disk cache, and batched execution, with single-flight
  coalescing of identical concurrent requests and bounded-queue
  backpressure (``busy`` replies carry a ``retry_after_s`` hint);
* ``query`` — the matching client: submit simulate requests (optionally
  ``--repeat``/``--concurrency`` for load), or ``--health`` /
  ``--metrics`` / ``--shutdown`` the running server;
* ``merge-shards DEST SRC [SRC ...]`` — fold the disk caches and
  campaign manifests of shard runs into DEST, after which an
  unsharded ``run`` over DEST replays entirely from cache;
* ``family`` — chip-family sweeps over declarative
  :mod:`repro.chips` specs: ``family list`` / ``family expand NAME``
  show the named families and their member fingerprints, ``family
  plan NAME ID...`` compiles the per-member campaign report, and
  ``family run NAME ID... --output DIR`` executes the experiments
  across every member (global ``--shard i/N`` slices supported),
  exporting per-member artifacts plus a ``family-results.json``
  result set (resonance frequency, worst Vmin and peak noise vs.
  core count);
* ``control`` — closed-loop studies on the stepping engine: an
  integral-regulator gain sweep (droop/overshoot/settling vs Ki) or an
  adversarial undervolting attack surface, both post-processing one
  cached baseline solve and both asserting the stepping ≡ monolithic
  bit-identity on every invocation;
* ``table1 .. fig15`` — shorthand for ``run <id>``.

Sharding: ``run --shard i/N --cache-dir DIR`` executes only the i-th
of N deterministic slices of the compiled campaign plan (partitioned
by run fingerprint, so every host computes the same split without
coordination), checkpointing run-level completion into DIR's manifest
under a writer lock.  Shards run on any mix of hosts; merge their
cache directories with ``merge-shards`` and re-run unsharded to export
bit-identical results.

``--quick`` swaps in the reduced-cost context (shorter EPI loops, fewer
sweep points) for smoke runs.  The engine knobs: ``--jobs N`` /
``--executor process`` fan cache misses out over worker processes,
``--backend batched`` routes every solve through the precompiled
per-chip kernel (``reference`` keeps the per-run transient solver;
the default ``auto`` compiles and falls back on failure — the choice
never enters run fingerprints, so caches written under one backend
replay under any other),
``--cache-dir DIR`` persists the result cache across invocations, and
``run --profile`` prints the engine telemetry (run counts, cache
hits/misses, latency histograms, solver calls, per-experiment wall
clock) after the run.

Observability: ``--trace`` records hierarchical spans (campaign →
experiment → session phases) and appends every run lifecycle event
(scheduled, started, retried, failed, cached, completed) to an
incremental JSONL log — ``events.jsonl`` in the campaign directory, or
``--trace-file PATH`` — which stays readable even if the campaign is
killed midway.

Fault tolerance: ``--max-retries`` / ``--run-timeout`` set the engine
retry policy for every session the drivers build; ``--on-failure
collect`` keeps the points of a sweep that solved instead of aborting
on the first permanent failure (dropped points are counted in the
exported results and detailed in the event log).  A multi-experiment
invocation records per-experiment completion in a campaign manifest
(next to ``--output`` or the cache dir), so a killed campaign can be
re-invoked with ``run --resume`` and only the unfinished experiments —
and, thanks to the disk cache's incremental checkpoints, only their
unfinished runs — are recomputed.  ``telemetry.json`` is exported even
when the campaign fails partway.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .errors import ReproError
from .experiments import (
    all_experiments,
    default_context,
    get_experiment,
    quick_context,
)
from .obs import get_telemetry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-noise",
        description=(
            "Reproduction of 'Voltage Noise in Multi-core Processors' "
            "(MICRO 2014): run the paper's experiments on the simulated "
            "platform."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced-cost context (smoke runs)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for sweep fan-out (default: $REPRO_JOBS "
        "or the CPU count; implies --executor process when N > 1)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "process"),
        default=None,
        help="sweep execution backend (default: $REPRO_EXECUTOR or serial)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "reference", "batched"),
        default=None,
        help="solve path for every session: 'batched' dispatches runs "
        "through the precompiled per-chip kernel, 'reference' keeps the "
        "per-run transient solver, 'auto' compiles the kernel and falls "
        "back to the reference path if compilation fails (default: "
        "$REPRO_BACKEND or auto); never part of run fingerprints, so "
        "caches stay interchangeable across backends",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="enable the on-disk result-cache tier in DIR (an empty "
        "string selects ~/.cache/repro-noise)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        default=None,
        help="re-executions granted to a failing run before it is "
        "reported as a permanent failure (default: $REPRO_MAX_RETRIES "
        "or 2)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-run wall-clock budget; a run exceeding it fails and "
        "is retried (default: $REPRO_RUN_TIMEOUT or unlimited)",
    )
    parser.add_argument(
        "--on-failure",
        choices=("raise", "collect"),
        default=None,
        help="what a permanently failed run does to its sweep: abort "
        "it ('raise', the default) or drop the point and keep the "
        "rest ('collect'); dropped points are marked in the exported "
        "results and detailed in the event log",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans and run lifecycle events to an incremental "
        "JSONL log (events.jsonl in the campaign directory; see "
        "--trace-file); inspect it with 'repro-noise profile'",
    )
    parser.add_argument(
        "--trace-file",
        metavar="FILE",
        default=None,
        help="where --trace writes the event log (implies --trace)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    plan = sub.add_parser(
        "plan",
        help="compile a campaign plan and report it (dry run: dedup "
        "savings, shard preview, wall-clock estimate)",
    )
    plan.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids to plan (e.g. fig7a fig9), or 'all'",
    )
    plan.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help="preview the run counts of an N-way shard split",
    )
    plan.add_argument(
        "--telemetry",
        metavar="JSON",
        default=None,
        help="telemetry.json of a previous campaign, used as the "
        "per-run latency baseline for the wall-clock estimate "
        "(default: telemetry.json in the cache dir, if any)",
    )
    plan.add_argument(
        "--since",
        metavar="MANIFEST",
        default=None,
        help="diff the plan against a campaign manifest (a "
        "campaign-manifest.json or the directory holding one) and "
        "list only the runs not yet checkpointed as complete",
    )
    plan.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="scale the wall-clock estimate to an N-worker fleet "
        "(default: auto-detect from the live-status.json next to "
        "--since, else 1)",
    )
    merge = sub.add_parser(
        "merge-shards",
        help="fold shard cache dirs + manifests into one campaign dir",
    )
    merge.add_argument(
        "dest",
        metavar="DEST",
        help="destination campaign directory (cache + manifest)",
    )
    merge.add_argument(
        "sources",
        metavar="SRC",
        nargs="+",
        help="shard campaign directories (each a --cache-dir a "
        "'run --shard' wrote)",
    )
    profile = sub.add_parser(
        "profile",
        help="render a campaign post-mortem from a --trace event log",
    )
    profile.add_argument(
        "events",
        metavar="EVENTS_JSONL",
        help="the events.jsonl a --trace campaign wrote",
    )
    profile.add_argument(
        "--chrome-trace",
        metavar="OUT_JSON",
        default=None,
        help="also export a Chrome trace-event (Perfetto) timeline",
    )
    profile.add_argument(
        "--top",
        type=int,
        metavar="N",
        default=5,
        help="how many slowest runs / retry hot spots to list",
    )
    profile.add_argument(
        "--follow",
        action="store_true",
        help="tail a live campaign's event log, refreshing the "
        "summary as events arrive (waits for the file to appear; "
        "stops when the campaign completes or on Ctrl-C)",
    )
    profile.add_argument(
        "--interval",
        type=float,
        metavar="SECONDS",
        default=2.0,
        help="poll interval for --follow (default: 2.0)",
    )
    top = sub.add_parser(
        "top",
        help="live terminal dashboard over the metrics plane: tail a "
        "fleet campaign's live-status.json and/or a serve endpoint's "
        "metrics, refreshed in place",
    )
    top.add_argument(
        "--campaign",
        metavar="DIR",
        default=None,
        help="fleet campaign directory to tail (its live-status.json)",
    )
    top.add_argument(
        "--serve",
        metavar="HOST:PORT",
        default=None,
        help="running 'repro-noise serve' endpoint to poll for "
        "metrics (tiers, latency percentiles, SLO burn)",
    )
    top.add_argument(
        "--interval",
        type=float,
        metavar="SECONDS",
        default=2.0,
        help="refresh period (default: 2.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    serve = sub.add_parser(
        "serve",
        help="start the always-on simulation service (TCP/JSON-lines: "
        "hot tier + result cache + warm session pool, with request "
        "coalescing and backpressure)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=4650,
        help="bind port; 0 picks an ephemeral port, printed on start "
        "(default: 4650)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        metavar="N",
        default=32,
        help="admission-queue bound; requests beyond it get a busy "
        "reply with a retry_after_s hint (default: 32)",
    )
    serve.add_argument(
        "--hot-entries",
        type=int,
        metavar="N",
        default=256,
        help="hot-tier LRU capacity, in encoded replies (default: 256)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        metavar="N",
        default=8,
        help="queued requests drained into one engine batch "
        "(default: 8)",
    )
    serve.add_argument(
        "--metrics-window",
        type=float,
        metavar="SECONDS",
        default=5.0,
        help="windowed-telemetry tick period driving rolling rates, "
        "percentiles and SLO burn; 0 disables the ticker "
        "(default: 5.0)",
    )
    serve.add_argument(
        "--slo",
        metavar="JSON",
        default=None,
        help="SLO policy file evaluated each metrics window "
        "(default: built-in per-tier latency + error-rate SLOs)",
    )
    serve.add_argument(
        "--http-metrics",
        type=int,
        metavar="PORT",
        default=None,
        help="also expose Prometheus text metrics over plain HTTP on "
        "this port (GET /metrics; 0 picks an ephemeral port, printed "
        "on start; default: off)",
    )
    serve.add_argument(
        "--chips",
        metavar="FAMILY[,MEMBER,...]",
        default=None,
        help="additionally host these chip identities: a family name "
        "('quick' hosts every member) and/or comma-separated member "
        "names ('cores/cores8'); requests select one with their "
        "'chip' field ('query --chip'), requests without it hit the "
        "default chip exactly as before (default: default chip only)",
    )
    serve.add_argument(
        "--max-resident-chips",
        type=int,
        metavar="N",
        default=2,
        help="non-default chips kept built at once; building one more "
        "evicts the least-recently-used cold chip (its hot tier "
        "survives; default: 2)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        metavar="N",
        default=8,
        help="stateful control sessions (session.open) kept open at "
        "once; each pins a solved stimulus in memory, extra opens get "
        "a busy reply (default: 8)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        metavar="SECONDS",
        default=900.0,
        help="idle lifetime of an open control session before it is "
        "pruned (default: 900)",
    )
    control = sub.add_parser(
        "control",
        help="closed-loop control studies on the stepping engine: "
        "integral-regulator gain sweeps and adversarial undervolting "
        "attack surfaces (every invocation re-checks stepping ≡ "
        "monolithic bit-identity)",
    )
    control.add_argument(
        "study",
        choices=("gain-sweep", "attack"),
        help="'gain-sweep' regulates the worst-case mapping with the "
        "integral power controller across --gains; 'attack' searches "
        "(depth × duration × alignment) for R-Unit Vmin violations",
    )
    control.add_argument(
        "--gains",
        metavar="G1,G2,...",
        default=None,
        help="integral gains to sweep (default: "
        "0.02,0.05,0.1,0.2,0.5,1.0)",
    )
    control.add_argument(
        "--setpoint",
        type=float,
        metavar="FRAC",
        default=0.85,
        help="power setpoint of the integral regulator, as a fraction "
        "of nominal full-load power (default: 0.85)",
    )
    control.add_argument(
        "--depths",
        metavar="D1,D2,...",
        default=None,
        help="undervolt depths in 0.5%% steps for the attack grid "
        "(default: 5,10,15,20,25,30)",
    )
    control.add_argument(
        "--durations",
        metavar="W1,W2,...",
        default=None,
        help="attack pulse durations in windows (default: 1,2,4)",
    )
    control.add_argument(
        "--windows",
        type=int,
        metavar="N",
        default=8,
        help="stepping windows per observation segment (default: 8)",
    )
    control.add_argument(
        "--json",
        action="store_true",
        help="emit the full study data as JSON instead of a table",
    )
    query = sub.add_parser(
        "query",
        help="query a running simulation service (simulate / health / "
        "metrics / shutdown)",
    )
    query.add_argument("--host", default="127.0.0.1",
                       help="server address (default: 127.0.0.1)")
    query.add_argument("--port", type=int, default=4650,
                       help="server port (default: 4650)")
    query.add_argument("--health", action="store_true",
                       help="print the server's health reply and exit")
    query.add_argument("--metrics", action="store_true",
                       help="print the server's metrics reply and exit")
    query.add_argument("--metrics-text", action="store_true",
                       help="print the server's Prometheus text "
                       "exposition and exit")
    query.add_argument("--shutdown", action="store_true",
                       help="ask the server to stop and exit")
    query.add_argument("--i-low", type=float, default=5.0, metavar="A",
                       help="per-core low current (default: 5.0)")
    query.add_argument("--i-high", type=float, default=25.0, metavar="A",
                       help="per-core high current (default: 25.0)")
    query.add_argument("--freq", type=float, default=90e6, metavar="HZ",
                       help="stimulus frequency (default: 90e6)")
    query.add_argument("--cores", type=int, default=1, metavar="N",
                       help="cores running the program (default: 1)")
    query.add_argument("--chip", metavar="NAME", default=None,
                       help="chip identity to simulate on, when the "
                       "server hosts several (--chips): a spec name, "
                       "family member label or fingerprint digest "
                       "(default: the server's default chip)")
    query.add_argument("--tag", default=None,
                       help="request tag (part of the run fingerprint)")
    query.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="submit the request N times (default: 1)")
    query.add_argument(
        "--concurrency", type=int, default=1, metavar="K",
        help="client connections submitting in parallel (default: 1)",
    )
    query.add_argument(
        "--distinct", type=int, default=1, metavar="D",
        help="spread --repeat over D distinct request variants "
        "(default: 1 — all identical, exercising coalescing)",
    )
    query.add_argument(
        "--retry-busy", type=int, default=0, metavar="N",
        help="re-submit up to N times after a busy reply, honouring "
        "the server's retry_after_s hint (default: 0)",
    )
    query.add_argument("--json", action="store_true",
                       help="print raw JSON replies instead of a summary")
    fleet = sub.add_parser(
        "fleet",
        help="run a campaign on an elastic worker fleet: N workers "
        "claim runs under heartbeat-renewed leases from one shared "
        "manifest, steal expired leases from dead workers, and fold "
        "their caches at the end (crash-tolerant alternative to "
        "static 'run --shard')",
    )
    fleet.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids to campaign over (e.g. fig7a fig9), or 'all'",
    )
    fleet.add_argument(
        "--output",
        metavar="DIR",
        required=True,
        help="campaign directory: shared claim manifest, per-worker "
        "state under workers/, and the folded cache + event log",
    )
    fleet.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="fleet size (default: 4)",
    )
    fleet.add_argument(
        "--batch", type=int, default=4, metavar="N",
        help="runs claimed per batch (default: 4)",
    )
    fleet.add_argument(
        "--lease", type=float, default=20.0, metavar="SECONDS",
        help="claim lease duration; a lease not renewed within it is "
        "stolen by a surviving worker (default: 20)",
    )
    fleet.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease renewal period (default: lease/4)",
    )
    fleet.add_argument(
        "--poison-after", type=int, default=3, metavar="K",
        help="bench a run after its lease expired under K distinct "
        "workers (default: 3)",
    )
    fleet.add_argument(
        "--respawn", type=int, default=8, metavar="N",
        help="total crashed-worker respawns granted (default: 8)",
    )
    fleet.add_argument(
        "--fleet-timeout", type=float, default=None, metavar="SECONDS",
        help="hard wall-clock ceiling; workers are drained and the "
        "partial state folded (default: unlimited)",
    )
    fleet.add_argument(
        "--serve", metavar="HOST:PORT", default=None,
        help="probe a running 'repro-noise serve' endpoint's cache "
        "tier before executing each claimed run",
    )
    fleet.add_argument(
        "--ssh-template", metavar="TEMPLATE", default=None,
        help="remote transport: wrap each worker command through this "
        "template, e.g. 'ssh {host} {command}' ({command} is the "
        "shell-quoted local invocation; default: local subprocesses)",
    )
    fleet.add_argument(
        "--hosts", metavar="H1,H2,...", default=None,
        help="comma-separated hosts workers round-robin over "
        "(requires --ssh-template)",
    )
    fleet.add_argument(
        "--slurm-template", metavar="TEMPLATE", default=None,
        help="cluster transport: launch each worker through this "
        "foreground scheduler command, e.g. 'srun --ntasks=1 "
        "--job-name={job} {command}' ({command} is the shell-quoted "
        "worker invocation, {job} a per-worker job name; mutually "
        "exclusive with --ssh-template; default: local subprocesses)",
    )
    fleet.add_argument(
        "--profile",
        action="store_true",
        help="print the fleet-merged engine telemetry after the fold",
    )
    worker = sub.add_parser(
        "fleet-worker",
        help="(internal) one fleet worker process; spawned by "
        "'fleet', not meant to be invoked by hand",
    )
    worker.add_argument("experiments", nargs="+")
    worker.add_argument("--campaign-dir", required=True, metavar="DIR",
                        help="shared campaign directory (claim manifest)")
    worker.add_argument("--worker-id", required=True, metavar="ID")
    worker.add_argument("--workdir", required=True, metavar="DIR",
                        help="private directory (cache, manifest, events)")
    worker.add_argument("--batch", type=int, default=4)
    worker.add_argument("--lease", type=float, default=20.0)
    worker.add_argument("--heartbeat", type=float, default=None)
    worker.add_argument("--poison-after", type=int, default=3)
    worker.add_argument("--serve", metavar="HOST:PORT", default=None)
    worker.add_argument("--flush-s", type=float, default=2.0,
                        metavar="SECONDS",
                        help="live-telemetry sidecar flush period; "
                        "0 disables the sidecar (default: 2.0)")
    family = sub.add_parser(
        "family",
        help="chip-family sweeps: list the named families, expand one "
        "into its member specs, or run experiments across every "
        "member (per-member exports plus a family-indexed result set)",
    )
    family.add_argument(
        "action",
        choices=("list", "expand", "plan", "run"),
        help="'list' the named families; 'expand' one into member "
        "specs and fingerprints; 'plan' a per-member campaign report "
        "(dry run); 'run' experiments across every member",
    )
    family.add_argument(
        "name",
        nargs="?",
        default=None,
        metavar="FAMILY",
        help="family name (see 'family list'); required for every "
        "action but 'list'",
    )
    family.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run across the family (e.g. fig7a "
        "fig11a), or 'all'; required for 'plan' and 'run'",
    )
    family.add_argument(
        "--members",
        metavar="M1,M2,...",
        default=None,
        help="restrict to these members (labels like 'cores4' or full "
        "names; default: the whole family)",
    )
    family.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="export per-member artifacts into DIR/<member>/ (the "
        "exact files a standalone run over that chip exports) plus a "
        "family-results.json index: per member, the resonance "
        "frequency, worst Vmin and peak noise vs. core count",
    )
    family.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="execute only the i-th of N global slices of the family "
        "campaign (the union of every member's shard i/N; requires "
        "--cache-dir, no drivers or exports run — merge and re-run "
        "as with 'run --shard')",
    )
    family.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON ('expand' and 'plan')",
    )
    family.add_argument(
        "--profile",
        action="store_true",
        help="print engine telemetry after the family run",
    )
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table1 fig7a), or 'all'",
    )
    run.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also export text+JSON artifacts per experiment into DIR",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments the campaign manifest (in --output or "
        "--cache-dir) records as finished; combined with the disk "
        "cache, only unfinished runs are recomputed",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print engine telemetry (runs, cache hits, wall clock) "
        "after the run",
    )
    run.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="execute only the i-th of N deterministic slices of the "
        "compiled campaign plan (requires --cache-dir; no drivers or "
        "exports run — merge the shards' cache dirs afterwards with "
        "'merge-shards' and re-run unsharded to export)",
    )
    return parser


def _configure_engine(args: argparse.Namespace) -> None:
    """Point the engine defaults at the CLI's choices.

    Sessions read ``$REPRO_JOBS``/``$REPRO_EXECUTOR`` at construction
    time, so the flags are exported for every session the experiment
    drivers build (and for their worker processes).
    """
    from .engine import configure_cache

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
        if args.executor is None and args.jobs > 1:
            args.executor = "process"
    if args.executor is not None:
        os.environ["REPRO_EXECUTOR"] = args.executor
    if args.backend is not None:
        os.environ["REPRO_BACKEND"] = args.backend
    if args.max_retries is not None:
        os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)
    if args.run_timeout is not None:
        os.environ["REPRO_RUN_TIMEOUT"] = str(args.run_timeout)
    if args.on_failure is not None:
        os.environ["REPRO_ON_FAILURE"] = args.on_failure
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        configure_cache(cache_dir=args.cache_dir or default_cache_dir())


def _campaign_dir(args: argparse.Namespace) -> Path | None:
    """Where this campaign keeps durable state (manifest): the export
    directory when given, else the disk-cache directory."""
    if getattr(args, "output", None):
        return Path(args.output)
    if args.cache_dir is not None:
        from .engine.cache import default_cache_dir

        return Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return None


def _follow_profile(args: argparse.Namespace) -> int:
    """``profile --follow``: live-tail a campaign's event log."""
    import time

    from .obs import follow_profile, render_profile

    path = Path(args.events)
    if not path.exists():
        print(f"waiting for {path} to appear... (Ctrl-C to stop)",
              file=sys.stderr)
    try:
        for profile in follow_profile(path, interval=max(args.interval, 0.1)):
            stamp = time.strftime("%H:%M:%S")
            print(f"\n== follow {path} @ {stamp} "
                  f"({len(profile.events)} events) ==")
            if profile.events:
                print(render_profile(profile, top=max(args.top, 1)))
            else:
                print("(no events yet)")
    except KeyboardInterrupt:
        print("\nfollow stopped", file=sys.stderr)
        return 0
    print("\ncampaign completed — follow finished", file=sys.stderr)
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: post-mortem of a --trace event log."""
    from .obs import export_chrome_trace, load_profile, render_profile

    if args.follow:
        return _follow_profile(args)
    path = Path(args.events)
    if not path.exists():
        print(f"error: no such event log: {path}", file=sys.stderr)
        return 2
    profile = load_profile(path)
    if not profile.events:
        print(f"error: {path} holds no events", file=sys.stderr)
        return 2
    print(render_profile(profile, top=max(args.top, 1)))
    if args.chrome_trace:
        out = export_chrome_trace(profile.events, args.chrome_trace)
        print(f"\nchrome trace written to {out} "
              f"(load in Perfetto or chrome://tracing)")
    return 0


def _format_seconds(seconds: float) -> str:
    """Human wall clock: seconds under 2 min, h/m above."""
    if seconds < 120:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


def _mean_run_seconds(
    path: Path, backend: str = "auto"
) -> tuple[float | None, int, str]:
    """Per-run latency baseline from a ``telemetry.json`` snapshot:
    the mean, sample count and histogram name used.  With an explicit
    *backend*, that backend's per-run histogram
    (``engine.run.<backend>.seconds``) is preferred — a reference-era
    baseline would wildly overestimate a batched campaign and vice
    versa — falling back to the aggregate ``engine.run.seconds``.
    Returns ``(None, 0, name)`` when the file is missing, unreadable or
    holds no samples."""
    import json

    names = ["engine.run.seconds"]
    if backend in ("reference", "batched"):
        names.insert(0, f"engine.run.{backend}.seconds")
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, ValueError):
        return None, 0, names[-1]
    for name in names:
        summary = snapshot.get("histograms", {}).get(name)
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        try:
            return float(summary["mean"]), int(summary["count"]), name
        except (KeyError, TypeError, ValueError):
            continue
    return None, 0, names[-1]


def _requested_ids(args: argparse.Namespace) -> list[str]:
    """The experiment ids a ``run``/``plan`` invocation names
    (``all`` expanded)."""
    requested = args.experiments
    if requested == ["all"]:
        return list(all_experiments())
    return requested


#: Worker states that still contribute execution capacity to an ETA.
_ACTIVE_WORKER_STATES = frozenset(
    {"starting", "claiming", "executing", "idle"}
)


def _plan_workers(args: argparse.Namespace) -> tuple[int, str]:
    """Fleet size for the ``plan`` wall-clock estimate: the explicit
    ``--workers`` when given, else the count of live (non-draining)
    workers in the ``live-status.json`` next to ``--since`` — so an
    estimate against a running fleet campaign reflects its actual
    capacity — else 1.  Returns ``(workers, provenance suffix)``."""
    if args.workers is not None:
        return max(args.workers, 1), ""
    if args.since:
        from .fleet import load_live_status

        since = Path(args.since)
        campaign_dir = since if since.is_dir() else since.parent
        status = load_live_status(campaign_dir)
        if status and isinstance(status.get("workers"), dict):
            live = sum(
                1
                for record in status["workers"].values()
                if isinstance(record, dict)
                and record.get("state") in _ACTIVE_WORKER_STATES
            )
            if live:
                return live, " [live fleet]"
    return 1, ""


def _run_plan(args: argparse.Namespace) -> int:
    """The ``plan`` subcommand: compile → dedup → report, run nothing."""
    from .experiments import compile_campaign

    context = quick_context() if args.quick else default_context()
    try:
        campaign = compile_campaign(_requested_ids(args), context)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    summary = campaign.summary()
    figures = summary["figures"]
    print(
        f"campaign plan {summary['plan'][:16]}…  "
        f"({len(figures)} figure(s): {', '.join(figures)})"
    )
    if figures:
        print()
        print(f"  {'figure':<8} {'requested':>9} {'unique':>7} {'exclusive':>9}")
        for figure in figures:
            print(
                f"  {figure:<8} "
                f"{summary['requested_by_figure'].get(figure, 0):>9} "
                f"{summary['unique_by_figure'].get(figure, 0):>7} "
                f"{summary['exclusive_by_figure'].get(figure, 0):>9}"
            )
    print()
    requested = summary["requested"]
    savings = summary["dedup_savings"]
    pct = 100.0 * savings / requested if requested else 0.0
    print(f"requested runs : {requested}")
    print(f"unique runs    : {summary['unique']}")
    print(f"dedup savings  : {savings} ({pct:.0f}% of requested)")
    if args.since:
        from .engine import CampaignManifest

        since = Path(args.since)
        if not since.exists():
            print(f"error: no such manifest: {since}", file=sys.stderr)
            return 2
        manifest = CampaignManifest(since)
        remaining = campaign.remaining(manifest.completed)
        done = campaign.total_unique - len(remaining)
        print()
        print(f"-- plan diff vs {manifest.path} --")
        print(
            f"complete       : {done} of {campaign.total_unique} "
            f"unique run(s) already checkpointed"
        )
        print(f"remaining      : {len(remaining)} run(s)")
        shown = remaining[:20]
        for entry in shown:
            figures = ",".join(sorted(entry.figures)) or "-"
            print(f"  {entry.fingerprint[:16]}…  figures={figures}  "
                  f"tag={entry.run.tag}")
        if len(remaining) > len(shown):
            print(f"  ... and {len(remaining) - len(shown)} more")
    if args.shards:
        sizes = campaign.shard_sizes(args.shards)
        split = " + ".join(str(size) for size in sizes)
        print(f"shard split    : {args.shards}-way → {split} runs")
    baseline = Path(args.telemetry) if args.telemetry else None
    if baseline is None:
        campaign_dir = _campaign_dir(args)
        if campaign_dir is not None and (campaign_dir / "telemetry.json").exists():
            baseline = campaign_dir / "telemetry.json"
    from .engine import resolve_backend_name

    backend = resolve_backend_name(args.backend)
    mean_run_s, samples, source = (
        _mean_run_seconds(baseline, backend)
        if baseline is not None
        else (None, 0, "engine.run.seconds")
    )
    jobs = args.jobs or int(os.environ.get("REPRO_JOBS") or 1)
    workers, workers_source = _plan_workers(args)
    estimate = campaign.estimate_seconds(mean_run_s, jobs=jobs,
                                         workers=workers)
    if estimate is not None:
        fleet = (
            f" x {workers} worker(s){workers_source}" if workers > 1 else ""
        )
        print(
            f"est. cold wall clock: ~{_format_seconds(estimate)} at "
            f"{jobs} job(s){fleet} (mean {source} {mean_run_s:.3g}s over "
            f"n={samples}, from {baseline})"
        )
    else:
        print(
            f"est. cold wall clock: n/a — no {source} baseline "
            "(point --telemetry at a previous campaign's telemetry.json)"
        )
    return 0


def _run_shard(args: argparse.Namespace) -> int:
    """``run --shard i/N``: execute one deterministic slice of the
    compiled campaign plan (no drivers, no exports — results land in
    the disk cache, completion in the manifest)."""
    from .engine import CampaignManifest
    from .engine.cache import default_cache_dir
    from .experiments import compile_campaign
    from .plan import ShardSpec, execute_plan

    if args.cache_dir is None:
        print(
            "error: run --shard needs --cache-dir (the slice's results "
            "and manifest must be durable to be merged)",
            file=sys.stderr,
        )
        return 2
    try:
        spec = ShardSpec.parse(args.shard)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    context = quick_context() if args.quick else default_context()
    campaign_dir = (
        Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    )
    manifest = CampaignManifest(campaign_dir / "campaign-manifest.json")
    telemetry = get_telemetry()
    event_log = _trace_log(args, campaign_dir)
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
    try:
        campaign = compile_campaign(_requested_ids(args), context)
        report = execute_plan(
            campaign,
            context.chip,
            shard=spec,
            on_failure=args.on_failure
            or os.environ.get("REPRO_ON_FAILURE")
            or "raise",
            manifest=manifest,
            telemetry=telemetry,
            backend=args.backend,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if event_log is not None:
            event_log.close()
    print(
        f"shard {spec} of plan {report.plan[:16]}…: {report.runs} run(s) "
        f"— {report.executed} executed, {report.replayed} replayed from "
        f"cache, {report.failed} failed"
    )
    print(f"manifest: {manifest.path}")
    if args.profile:
        print(telemetry.report())
    return 1 if report.failed else 0


def _member_label(name: str) -> str:
    """Short member label (``quick/cores4`` → ``cores4``) — used for
    per-member export directories and compact tables."""
    return name.split("/", 1)[1] if "/" in name else name


def _family_members(args: argparse.Namespace, family):
    """The member specs a ``--members`` restriction selects (``None``
    for the whole family)."""
    if args.members is None:
        return None
    return [
        family.member(label.strip())
        for label in args.members.split(",")
        if label.strip()
    ]


def _family_member_metrics(context, results: dict) -> dict:
    """Per-member headline metrics for ``family-results.json``: the
    resonance frequency, peak noise and worst Vmin the member's own
    Fig. 7a sweep measured (its peak run replays from the session
    cache, so the Vmin probe costs no extra solve), plus the ΔI
    ceiling when Fig. 11a ran."""
    metrics: dict = {
        "resonance_freq_hz": None,
        "peak_p2p_pct": None,
        "worst_vmin_v": None,
        "max_noise_pct": None,
    }
    fig7a = results.get("fig7a")
    if fig7a is not None:
        peak_freq = fig7a.data["peak_freq_hz"]
        metrics["resonance_freq_hz"] = peak_freq
        metrics["peak_p2p_pct"] = fig7a.data["peak_p2p"]
        mapping = [
            context.generator.max_didt(
                freq_hz=peak_freq, synchronize=False
            ).current_program()
        ] * context.chip.n_cores
        replay = context.session.run_many(
            [mapping], [("fsweep", False, peak_freq)]
        )[0]
        metrics["worst_vmin_v"] = float(replay.worst_vmin)
    fig11a = results.get("fig11a")
    if fig11a is not None:
        metrics["max_noise_pct"] = fig11a.data["max_noise"]
    return metrics


def _run_family(args: argparse.Namespace) -> int:
    """The ``family`` subcommand: list/expand the named chip families,
    or plan/run experiments across every member of one."""
    import json

    from .chips import get_family, list_families
    from .experiments import compile_family_campaign, context_for_spec
    from .ioutil import atomic_write_json
    from .plan import ShardSpec, execute_family

    if args.action == "list":
        for family in list_families():
            print(
                f"{family.name:<12} {len(family)} member(s) — "
                f"{family.description}"
            )
        return 0

    if args.name is None:
        print(f"error: family {args.action} needs a family name",
              file=sys.stderr)
        return 2
    try:
        family = get_family(args.name)
        members = _family_members(args, family)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.action == "expand":
        specs = members if members is not None else family.members()
        if args.json:
            print(json.dumps(
                [
                    {
                        "name": spec.name,
                        "chip": spec.fingerprint(),
                        "spec": spec.to_dict(),
                    }
                    for spec in specs
                ],
                indent=2, sort_keys=True,
            ))
            return 0
        print(f"family {family.name!r} — {family.description}")
        print(f"  {'member':<16} {'cores':>5} {'node':>4} "
              f"{'decap':>5} chip")
        for spec in specs:
            print(
                f"  {_member_label(spec.name):<16} {spec.n_cores:>5} "
                f"{spec.tech_node:>4} {spec.decap_scale:>5g} "
                f"{spec.fingerprint()[:16]}…"
            )
        return 0

    if not args.experiments:
        print(f"error: family {args.action} needs experiment ids",
              file=sys.stderr)
        return 2
    telemetry = get_telemetry()
    try:
        campaign = compile_family_campaign(
            _requested_ids(args), family, quick=args.quick, members=members
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    summary = campaign.summary()
    if args.action == "plan" and args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"family campaign {summary['fingerprint'][:16]}…  "
        f"({family.name}: {len(campaign)} member(s))"
    )
    print(f"  {'member':<16} {'cores':>5} {'requested':>9} {'unique':>7}")
    for entry in summary["members"]:
        plan = entry["plan"]
        print(
            f"  {_member_label(entry['name']):<16} "
            f"{entry['spec']['n_cores']:>5} {plan['requested']:>9} "
            f"{plan['unique']:>7}"
        )
    print(f"requested runs : {summary['requested']}")
    print(f"unique runs    : {summary['unique']}")
    print(f"dedup savings  : {summary['dedup_savings']} (within members; "
          "fingerprints embed the chip identity)")
    if args.action == "plan":
        if args.shard:
            try:
                count = ShardSpec.parse(args.shard).count
            except ReproError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            sizes = campaign.shard_sizes(count)
            split = " + ".join(str(size) for size in sizes)
            print(f"shard split    : {count}-way → {split} runs")
        return 0

    # -- run ------------------------------------------------------------
    if args.shard:
        from .engine import CampaignManifest

        if args.cache_dir is None:
            print(
                "error: family run --shard needs --cache-dir (the "
                "slice's results must be durable to be merged)",
                file=sys.stderr,
            )
            return 2
        try:
            spec = ShardSpec.parse(args.shard)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        campaign_dir = Path(args.cache_dir)

        def manifest_for(member):
            manifest = CampaignManifest(
                campaign_dir
                / f"manifest-{_member_label(member.name)}.json"
            )
            return manifest

        event_log = _trace_log(args, campaign_dir)
        if event_log is not None:
            telemetry.enable_tracing(events=event_log)
        try:
            report = execute_family(
                campaign,
                shard=spec,
                on_failure=args.on_failure
                or os.environ.get("REPRO_ON_FAILURE")
                or "raise",
                manifest_for=manifest_for,
                telemetry=telemetry,
                backend=args.backend,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        finally:
            if event_log is not None:
                event_log.close()
        print(
            f"shard {spec} of family {report.fingerprint[:16]}…: "
            f"{report.runs} run(s) — {report.executed} executed, "
            f"{report.replayed} replayed, {report.failed} failed"
        )
        for name, member_report in sorted(report.reports.items()):
            print(
                f"  {_member_label(name):<16} {member_report.runs:>5} "
                f"run(s), {member_report.failed} failed"
            )
        if args.profile:
            print(telemetry.report())
        return 1 if report.failed else 0

    output = Path(args.output) if args.output else None
    event_log = _trace_log(args, output)
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
    status = 0
    family_index: list[dict] = []
    try:
        # Execute the compiled campaign first — sessions grouped by
        # chip, every unique run solved exactly once — then let the
        # drivers replay from cache to build their figures.
        report = execute_family(
            campaign,
            on_failure=args.on_failure
            or os.environ.get("REPRO_ON_FAILURE")
            or "raise",
            telemetry=telemetry,
            backend=args.backend,
        )
        print(
            f"executed {report.runs} run(s) across {len(campaign)} "
            f"member(s) — {report.executed} solved, {report.replayed} "
            f"replayed from cache"
        )
        print()
        for entry in campaign.members:
            label = _member_label(entry.name)
            context = context_for_spec(entry.spec, quick=args.quick)
            print(
                f"== {entry.name} (chip {entry.chip_digest[:16]}…, "
                f"{entry.spec.n_cores} cores) =="
            )
            results: dict = {}
            for experiment_id in _requested_ids(args):
                driver = get_experiment(experiment_id)
                try:
                    with telemetry.span(
                        "family.member",
                        member=entry.name,
                        experiment=experiment_id,
                    ):
                        results[experiment_id] = driver(context)
                except ReproError as error:
                    print(
                        f"error in {experiment_id} on {entry.name}: "
                        f"{error}",
                        file=sys.stderr,
                    )
                    status = 1
            for result in results.values():
                print(result)
                print()
            record = {
                "name": entry.name,
                "label": label,
                "chip": entry.chip_digest,
                "n_cores": entry.spec.n_cores,
                "tech_node": entry.spec.tech_node,
                "spec": entry.spec.to_dict(),
                **_family_member_metrics(context, results),
            }
            if output is not None and results:
                from .experiments.exporter import export_results

                member_dir = output / label
                export_results(
                    list(results.values()), member_dir, telemetry
                )
                record["export_dir"] = label
            family_index.append(record)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if event_log is not None:
            event_log.close()

    header = f"  {'member':<16} {'cores':>5} {'resonance':>10} " \
             f"{'worst Vmin':>10} {'peak %p2p':>9}"
    print(f"-- family result set ({family.name}) --")
    print(header)
    for record in family_index:
        resonance = record["resonance_freq_hz"]
        vmin = record["worst_vmin_v"]
        peak = record["peak_p2p_pct"]
        print(
            f"  {record['label']:<16} {record['n_cores']:>5} "
            f"{(f'{resonance:.3g}Hz' if resonance else '-'):>10} "
            f"{(f'{vmin:.4g}V' if vmin else '-'):>10} "
            f"{(f'{peak:.1f}' if peak is not None else '-'):>9}"
        )
    if output is not None:
        payload = {
            "family": family.name,
            "fingerprint": campaign.fingerprint(),
            "experiments": _requested_ids(args),
            "members": family_index,
        }
        path = atomic_write_json(output / "family-results.json", payload)
        print(f"family result set: {path}")
    if args.profile:
        print(telemetry.report())
    return status


def _run_merge_shards(args: argparse.Namespace) -> int:
    """``merge-shards``: union shard disk caches and manifests into one
    campaign directory."""
    from .engine import CampaignManifest
    from .engine.cache import merge_cache_dirs

    dest = Path(args.dest)
    sources = [Path(source) for source in args.sources]
    missing = [str(source) for source in sources if not source.is_dir()]
    if missing:
        print(
            f"error: no such shard dir(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    telemetry = get_telemetry()
    event_log = _trace_log(args, dest)
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
    try:
        copied, skipped = merge_cache_dirs(dest, *sources)
        shard_manifests = [
            CampaignManifest(source / "campaign-manifest.json")
            for source in sources
            if (source / "campaign-manifest.json").exists()
        ]
        absorbed = 0
        if shard_manifests:
            absorbed = CampaignManifest(
                dest / "campaign-manifest.json"
            ).merge_from(*shard_manifests)
        telemetry.emit(
            "shard.merged",
            dest=str(dest),
            sources=[str(source) for source in sources],
            cache_copied=copied,
            cache_skipped=skipped,
            manifest_points=absorbed,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if event_log is not None:
            event_log.close()
    print(
        f"merged {len(sources)} shard dir(s) into {dest}: "
        f"{copied} cache entries copied, {skipped} already present, "
        f"{absorbed} manifest point(s) absorbed"
    )
    return 0


def _parse_endpoint(spec: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)`` (host defaults to loopback for
    a bare ``:port`` or plain port)."""
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ReproError(f"bad endpoint {spec!r}; expected host:port")


def _fleet_worker_command(args: argparse.Namespace) -> list[str]:
    """The ``fleet-worker`` invocation every worker is spawned with
    (the dispatcher appends ``--worker-id``/``--workdir``): the user's
    context/engine flags are re-spelled so the workers see exactly the
    configuration the ``fleet`` command was given."""
    command = [sys.executable, "-m", "repro"]
    if args.quick:
        command.append("--quick")
    if args.backend is not None:
        command += ["--backend", args.backend]
    if args.max_retries is not None:
        command += ["--max-retries", str(args.max_retries)]
    if args.run_timeout is not None:
        command += ["--run-timeout", str(args.run_timeout)]
    command += [
        "fleet-worker",
        "--campaign-dir", str(Path(args.output)),
        "--batch", str(args.batch),
        "--lease", str(args.lease),
        "--poison-after", str(args.poison_after),
    ]
    if args.heartbeat is not None:
        command += ["--heartbeat", str(args.heartbeat)]
    if args.serve is not None:
        command += ["--serve", args.serve]
    command += _requested_ids(args)
    return command


def _run_fleet(args: argparse.Namespace) -> int:
    """The ``fleet`` subcommand: dispatch an elastic worker fleet over
    one campaign and fold the results."""
    from .experiments import compile_campaign
    from .fleet import FleetDispatcher

    context = quick_context() if args.quick else default_context()
    campaign_dir = Path(args.output)
    telemetry = get_telemetry()
    event_log = _trace_log(args, campaign_dir)
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
    try:
        campaign = compile_campaign(_requested_ids(args), context)
        hosts = [h for h in (args.hosts or "").split(",") if h] or None
        dispatcher = FleetDispatcher(
            campaign,
            context.chip,
            campaign_dir,
            _fleet_worker_command(args),
            workers=args.workers,
            hosts=hosts,
            ssh_template=args.ssh_template,
            slurm_template=args.slurm_template,
            respawn=args.respawn,
            timeout_s=args.fleet_timeout,
            telemetry=telemetry,
        )
        report = dispatcher.run()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if event_log is not None:
            event_log.close()
    summary = report.summary()
    print(
        f"fleet campaign {report.plan[:16]}…: {report.runs} run(s) — "
        f"{report.executed} executed, {report.replayed} replayed, "
        f"{report.failed} failed, {summary.get('stolen', 0)} stolen"
    )
    for worker, tally in summary.get("by_worker", {}).items():
        print(
            f"  {worker:<8} completed={tally['completed']:<4} "
            f"stolen={tally['stolen']:<3} failed={tally['failed']}"
        )
    counters = telemetry.snapshot().get("counters", {})
    fleet_counters = ", ".join(
        f"{name.removeprefix('fleet.')}={count}"
        for name, count in sorted(counters.items())
        if name.startswith("fleet.")
    )
    if fleet_counters:
        print(f"fleet counters: {fleet_counters}")
    print(f"campaign dir: {campaign_dir} (folded cache in cache/)")
    if args.profile:
        print(telemetry.report())
    if dispatcher.unfinished:
        benched = (
            f" ({len(dispatcher.poisoned)} poisoned)"
            if dispatcher.poisoned
            else ""
        )
        print(
            f"error: {len(dispatcher.unfinished)} run(s) did not "
            f"complete{benched}",
            file=sys.stderr,
        )
        return 1
    return 1 if report.failed else 0


def _run_fleet_worker(args: argparse.Namespace) -> int:
    """The (internal) ``fleet-worker`` subcommand: one claim/execute/
    renew loop over the shared campaign manifest."""
    import json
    import signal

    from .engine import CampaignManifest
    from .engine.cache import ResultCache
    from .experiments import compile_campaign
    from .fleet import LIVE_SIDECAR_NAME, FleetWorker
    from .ioutil import atomic_write_json
    from .obs import EventLog

    context = quick_context() if args.quick else default_context()
    workdir = Path(args.workdir)
    (workdir / "cache").mkdir(parents=True, exist_ok=True)
    telemetry = get_telemetry()
    event_log = EventLog(workdir / "events.jsonl")
    telemetry.enable_tracing(events=event_log)
    try:
        campaign = compile_campaign(_requested_ids(args), context)
        private = CampaignManifest(workdir / "campaign-manifest.json")
        private.bind_campaign({
            "plan": campaign.fingerprint(),
            "shard": f"fleet:{args.worker_id}",
        })
        worker = FleetWorker(
            campaign,
            context.chip,
            CampaignManifest(Path(args.campaign_dir)),
            worker_id=args.worker_id,
            cache=ResultCache(cache_dir=workdir / "cache"),
            private_manifest=private,
            batch=args.batch,
            lease_s=args.lease,
            heartbeat_s=args.heartbeat,
            poison_after=args.poison_after,
            serve=_parse_endpoint(args.serve) if args.serve else None,
            backend=args.backend,
            telemetry=telemetry,
            live_path=(
                workdir / LIVE_SIDECAR_NAME if args.flush_s > 0 else None
            ),
            flush_s=args.flush_s,
        )
        signal.signal(signal.SIGTERM, lambda *_: worker.drain())
        summary = worker.run()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        event_log.close()
        # The merge-payload snapshot the dispatcher folds fleet-wide.
        atomic_write_json(
            workdir / "fleet-telemetry.json", telemetry.merge_payload()
        )
    print(json.dumps(summary, sort_keys=True))
    return 0


def _trace_log(args: argparse.Namespace, campaign_dir: Path | None):
    """Open the JSONL event log when tracing is requested (``--trace``
    / ``--trace-file``); returns None otherwise."""
    if not (args.trace or args.trace_file):
        return None
    from .obs import EventLog

    path = (
        Path(args.trace_file)
        if args.trace_file
        else (campaign_dir or Path(".")) / "events.jsonl"
    )
    return EventLog(path)


def _hosted_chip_specs(selector: str | None) -> list:
    """The extra :class:`~repro.chips.ChipSpec` identities a ``serve
    --chips`` selector names: comma-separated family names (hosting
    every member) and/or ``family/member`` references."""
    if not selector:
        return []
    from .chips import get_family

    specs = []
    for part in selector.split(","):
        part = part.strip()
        if not part:
            continue
        if "/" in part:
            family_name, _ = part.split("/", 1)
            specs.append(get_family(family_name).member(part))
        else:
            specs.extend(get_family(part).members())
    return specs


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the simulation service in the
    foreground until Ctrl-C or a client's ``shutdown`` request."""
    from .obs import SloPolicy
    from .serve import NoiseServer, SimulationService, start_metrics_http

    context = quick_context() if args.quick else default_context()
    telemetry = get_telemetry()
    event_log = _trace_log(args, _campaign_dir(args))
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
    slo_policy = None
    if args.slo:
        try:
            slo_policy = SloPolicy.from_file(args.slo)
        except (OSError, ValueError, ReproError) as error:
            print(f"error: bad --slo file: {error}", file=sys.stderr)
            return 2
    try:
        chips = _hosted_chip_specs(args.chips)
        service = SimulationService(
            context.chip,
            context.options,
            queue_limit=args.queue_limit,
            hot_entries=args.hot_entries,
            max_batch=args.max_batch,
            telemetry=telemetry,
            backend=args.backend,
            window_s=args.metrics_window,
            slo=slo_policy,
            chips=chips,
            max_resident_chips=args.max_resident_chips,
            max_sessions=args.max_sessions,
            session_ttl_s=args.session_ttl,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service.start()
    server = NoiseServer((args.host, args.port), service)
    scrape_server = scrape_thread = None
    if args.http_metrics is not None:
        scrape_server, scrape_thread = start_metrics_http(
            service, host=args.host, port=args.http_metrics
        )
    telemetry.emit(
        "serve.started",
        host=args.host,
        port=server.port,
        chip=service.chip_fp,
    )
    print(
        f"serving on {args.host}:{server.port} "
        f"(chip {service.chip_fp[:16]}…, queue={args.queue_limit}, "
        f"hot={args.hot_entries}, executor={service.executor.name})",
        flush=True,
    )
    if len(service.roster) > 1:
        hosted = ", ".join(
            entry.name for entry in service.roster.entries()
        )
        print(
            f"hosting {len(service.roster)} chip identities "
            f"(max resident {args.max_resident_chips} + default): "
            f"{hosted}",
            flush=True,
        )
    if scrape_server is not None:
        print(
            f"metrics on http://{args.host}:{scrape_server.port}/metrics "
            f"(Prometheus text, window {args.metrics_window:g}s)",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ninterrupted — shutting down", file=sys.stderr)
    finally:
        if scrape_server is not None:
            scrape_server.shutdown()
            scrape_server.server_close()
            scrape_thread.join(timeout=2.0)
        server.server_close()
        service.stop()
        snapshot = service.metrics()["metrics"].get("counters", {})
        served = {
            name.split(".", 2)[-1]: count
            for name, count in sorted(snapshot.items())
            if name.startswith("serve.tier.")
        }
        print(
            f"served {snapshot.get('serve.requests', 0)} request(s): "
            + (", ".join(f"{k}={v}" for k, v in served.items()) or "none")
            + f"; coalesced={snapshot.get('serve.coalesced', 0)}"
            f" busy={snapshot.get('serve.busy', 0)}"
        )
        if event_log is not None:
            event_log.close()
        if getattr(args, "profile", False):  # pragma: no cover
            print(telemetry.report())
    return 0


def _parse_number_list(text: str, kind, flag: str):
    """A comma-separated ``--gains``/``--depths`` list as a tuple."""
    try:
        values = tuple(kind(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ReproError(f"bad {flag} list {text!r}")
    if not values:
        raise ReproError(f"{flag} names no values")
    return values


def _run_control(args: argparse.Namespace) -> int:
    """The ``control`` subcommand: closed-loop studies on the stepping
    engine, outside the experiment registry (parameterized gains /
    attack grids).  The nominal baseline solve goes through the normal
    engine session — cached, fingerprint-shared with the ``ctrl-*``
    experiments and the plan/serve paths."""
    import json

    from .control.study import (
        CONTROL_RUN_TAG,
        DEFAULT_DEPTHS,
        DEFAULT_DURATIONS,
        DEFAULT_GAINS,
        attack_surface,
        gain_sweep,
    )
    from .experiments.ctrl import attack_table, control_mapping, gain_table

    context = quick_context() if args.quick else default_context()
    mapping = control_mapping(context)
    try:
        baseline = context.session.run(mapping, run_tag=CONTROL_RUN_TAG)
        if args.study == "gain-sweep":
            gains = (
                _parse_number_list(args.gains, float, "--gains")
                if args.gains
                else DEFAULT_GAINS
            )
            data = gain_sweep(
                context.chip,
                mapping,
                context.options,
                gains=gains,
                setpoint=args.setpoint,
                windows_per_segment=args.windows,
                baseline=baseline,
            )
            text = gain_table(data)
        else:
            depths = (
                _parse_number_list(args.depths, int, "--depths")
                if args.depths
                else DEFAULT_DEPTHS
            )
            durations = (
                _parse_number_list(args.durations, int, "--durations")
                if args.durations
                else DEFAULT_DURATIONS
            )
            data = attack_surface(
                context.chip,
                mapping,
                context.options,
                depths=depths,
                durations=durations,
                windows_per_segment=args.windows,
                baseline=baseline,
            )
            text = attack_table(data)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(json.dumps(data, indent=2) if args.json else text)
    if not data["stepping_equivalent"]:
        print(
            "error: stepping diverged from the monolithic solve",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_query(args: argparse.Namespace) -> int:
    """The ``query`` subcommand: client of a running service."""
    import json
    from concurrent.futures import ThreadPoolExecutor

    from .serve import ServeClient

    try:
        if args.metrics_text:
            with ServeClient(args.host, args.port) as client:
                print(client.metrics_text(), end="")
            return 0
        if args.health or args.metrics or args.shutdown:
            with ServeClient(args.host, args.port) as client:
                if args.health:
                    reply = client.health()
                elif args.metrics:
                    reply = client.metrics()
                else:
                    reply = client.shutdown()
            print(json.dumps(reply, indent=2, sort_keys=True))
            return 0 if reply.get("ok") else 1

        program = {
            "i_low": args.i_low,
            "i_high": args.i_high,
            "freq_hz": args.freq,
            "name": "query",
        }
        distinct = max(args.distinct, 1)
        requests = []
        for index in range(max(args.repeat, 1)):
            variant = dict(program)
            # Distinct variants perturb the load step so they resolve
            # to distinct fingerprints (and thus distinct executions).
            variant["i_high"] = args.i_high + 0.5 * (index % distinct)
            requests.append([variant] * max(args.cores, 1))

        def submit(mapping):
            with ServeClient(args.host, args.port) as client:
                return client.simulate(
                    mapping,
                    tag=args.tag,
                    chip=args.chip,
                    retry_busy=args.retry_busy,
                )

        if args.concurrency > 1:
            with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
                replies = list(pool.map(submit, requests))
        else:
            replies = [submit(mapping) for mapping in requests]
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.json:
        for reply in replies:
            print(json.dumps(reply, sort_keys=True))
    tiers: dict[str, int] = {}
    failures = 0
    slowest = 0.0
    for reply in replies:
        if reply.get("ok"):
            tiers[reply["tier"]] = tiers.get(reply["tier"], 0) + 1
            slowest = max(slowest, float(reply.get("elapsed_ms", 0.0)))
        else:
            failures += 1
            status = reply.get("status", "error")
            tiers[status] = tiers.get(status, 0) + 1
            if not args.json:
                print(f"  {status}: {reply.get('error', '?')}",
                      file=sys.stderr)
    summary = ", ".join(f"{k}={v}" for k, v in sorted(tiers.items()))
    print(
        f"{len(replies)} repl{'y' if len(replies) == 1 else 'ies'}: "
        f"{summary or 'none'}  (slowest server-side "
        f"{slowest:.2f} ms)"
    )
    if failures == 0 and replies and replies[0].get("ok"):
        body = replies[0]["result"]
        print(
            f"first result: max_p2p={body['max_p2p']:.4g}%  "
            f"worst_vmin={body['worst_vmin']:.4g}V  "
            f"tier={replies[0]['tier']}"
        )
    return 1 if failures else 0


def _run_top(args: argparse.Namespace) -> int:
    """The ``top`` subcommand: clear-and-reprint dashboard loop over
    the live aggregates (:func:`repro.obs.top.render_top` frames)."""
    import time

    from .obs.top import render_top

    if not args.campaign and not args.serve:
        print("error: top needs --campaign and/or --serve",
              file=sys.stderr)
        return 2
    endpoint = None
    if args.serve:
        try:
            endpoint = _parse_endpoint(args.serve)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    interval = max(args.interval, 0.1)
    try:
        while True:
            errors: list[str] = []
            fleet_status = None
            if args.campaign:
                from .fleet import load_live_status

                fleet_status = load_live_status(args.campaign)
                if fleet_status is None:
                    errors.append(
                        f"campaign {args.campaign}: no live-status.json "
                        "yet (is a fleet running there?)"
                    )
            serve_metrics = None
            if endpoint is not None:
                from .serve import ServeClient

                try:
                    with ServeClient(*endpoint) as client:
                        serve_metrics = client.metrics()
                except (ReproError, OSError) as error:
                    errors.append(f"serve {args.serve}: {error}")
            frame = render_top(fleet_status, serve_metrics, errors=errors)
            if args.once:
                print(frame, end="")
                return 0
            sys.stdout.write("\x1b[H\x1b[2J" + frame)
            sys.stdout.flush()
            # A folded campaign is finished output; keep polling only
            # when a serve endpoint is also being watched.
            if (
                fleet_status
                and fleet_status.get("phase") == "folded"
                and endpoint is None
            ):
                print("campaign folded — exiting")
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "profile":
        return _run_profile(args)
    if args.command == "plan":
        return _run_plan(args)
    if args.command == "merge-shards":
        return _run_merge_shards(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "top":
        return _run_top(args)

    _configure_engine(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "control":
        return _run_control(args)

    if args.command == "fleet":
        return _run_fleet(args)

    if args.command == "fleet-worker":
        return _run_fleet_worker(args)

    if args.command == "family":
        return _run_family(args)

    if args.command == "run" and args.shard:
        return _run_shard(args)

    if args.command == "list":
        for experiment_id, title in all_experiments().items():
            print(f"{experiment_id:<8} {title}")
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list(all_experiments())
    try:
        drivers = [(eid, get_experiment(eid)) for eid in requested]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    campaign_dir = _campaign_dir(args)
    if args.resume and campaign_dir is None:
        print(
            "error: --resume needs --output or --cache-dir (somewhere "
            "for the campaign manifest to live)",
            file=sys.stderr,
        )
        return 2
    manifest = None
    if campaign_dir is not None:
        from .engine import CampaignManifest

        manifest = CampaignManifest(campaign_dir / "campaign-manifest.json")
    telemetry = get_telemetry()
    if args.resume:
        finished = manifest.completed
        skipped = [eid for eid, _ in drivers if eid in finished]
        if skipped:
            drivers = [(e, d) for e, d in drivers if e not in finished]
            telemetry.increment("campaign.points_skipped", len(skipped))
            print(
                f"resume: skipping {len(skipped)} finished "
                f"experiment(s): {', '.join(skipped)}"
            )

    event_log = _trace_log(args, campaign_dir)
    if event_log is not None:
        telemetry.enable_tracing(events=event_log)
        telemetry.emit(
            "campaign.started", experiments=[eid for eid, _ in drivers]
        )

    context = quick_context() if args.quick else default_context()
    status = 0
    results = []
    try:
        with telemetry.span("campaign", experiments=len(drivers)):
            for experiment_id, driver in drivers:
                if manifest is not None:
                    manifest.mark_started(experiment_id)
                telemetry.emit("experiment.started", experiment=experiment_id)
                try:
                    result = driver(context)
                except ReproError as error:
                    print(
                        f"error in {experiment_id}: {error}", file=sys.stderr
                    )
                    if manifest is not None:
                        manifest.mark_failed(experiment_id, str(error))
                    telemetry.increment("campaign.points_failed")
                    telemetry.emit(
                        "experiment.failed",
                        experiment=experiment_id,
                        error=str(error),
                    )
                    status = 1
                    continue
                results.append(result)
                telemetry.increment("campaign.points_completed")
                if manifest is not None:
                    manifest.mark_complete(experiment_id)
                telemetry.emit(
                    "experiment.completed", experiment=experiment_id
                )
                print(result)
                print()
    except KeyboardInterrupt:
        # Completed runs are already checkpointed (disk cache) and
        # completed experiments recorded (manifest): resumable.
        status = 130
        print(
            "interrupted: campaign state is checkpointed; re-invoke "
            "with 'run --resume' to continue",
            file=sys.stderr,
        )
    finally:
        if event_log is not None:
            telemetry.emit(
                "campaign.completed",
                status=status,
                snapshot=telemetry.snapshot(),
            )
            event_log.close()
            print(
                f"event log: {event_log.path} "
                f"(inspect with 'repro-noise profile')",
                file=sys.stderr,
            )
        if args.output and results:
            from .experiments.exporter import export_results

            index = export_results(results, args.output, telemetry)
            print(
                f"exported {len(results)} experiment artifact(s); "
                f"index: {index}"
            )
        elif args.output:
            # No finished result — still flush the telemetry snapshot
            # so the failed/interrupted campaign is diagnosable.
            from .experiments.exporter import export_telemetry

            export_telemetry(args.output, telemetry)
        if status != 0 and telemetry.resilience_summary():
            summary = ", ".join(
                f"{name}={count}"
                for name, count in telemetry.resilience_summary().items()
            )
            print(f"resilience counters: {summary}", file=sys.stderr)
        if args.profile:
            print(telemetry.report())
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
