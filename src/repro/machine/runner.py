"""Execute workload→core mappings on a chip and read the noise.

This is the simulation counterpart of the paper's measurement loop:
map one stressmark (or idle) to each core, let the chip run, and read
the per-core skitter macros in sticky mode.

A run is divided into *segments*, each standing for one observation
window somewhere in the long physical run:

* synchronized programs start each burst at their programmed TOD
  offset, identically in every segment (that is what the TOD sync
  buys);
* unsynchronized programs get an independent random phase per segment,
  standing for the unknown relative phases of free-running loops; the
  sticky skitter keeps the worst case across segments, exactly like
  sticky mode accumulating across a long run.

Within a segment the per-core voltage waveforms are assembled by LTI
superposition of ramp responses (:mod:`repro.pdn.superposition`), on a
sample grid that is dense around ΔI edges and coarse elsewhere.  The
segment also computes each core's *coherent ΔI* — the largest
weighted sum of rising edges within the chip's coherence window — which
feeds the skitter's simultaneous-switching term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigError, MeasurementError
from ..pdn.kernels import CompiledChipKernel, SampleGrid
from ..pdn.superposition import EdgeTrain, assemble_voltage, edges_from_square_wave
from ..rng import stream
from .chip import Chip
from .workload import CurrentProgram

__all__ = [
    "RunOptions",
    "CoreMeasurement",
    "RunResult",
    "SegmentStimulus",
    "StimulusBatch",
    "ChipRunner",
    "WAVEFORM_EXTRA_NODES",
]

#: Non-core nodes additionally recorded when waveforms are collected.
WAVEFORM_EXTRA_NODES = ("dom_n", "dom_s", "l3")


@dataclass
class RunOptions:
    """Tunables of the run engine.

    The defaults balance fidelity and speed for the full experiment
    suite; tests use lighter settings.
    """

    #: Observation windows per run (phase draws for unsynced programs).
    segments: int = 8
    #: Maximum consecutive ΔI events simulated per burst.  The PDN
    #: settles within a few periods (Q ~ 2), so bursts of 100 or 1000
    #: events measure the same as this cap; bursts shorter than the cap
    #: are simulated exactly.
    events_cap: int = 12
    #: Extra time simulated after the last edge (s).
    tail: float = 3e-6
    #: Periods longer than this are simulated as isolated edges at this
    #: spacing — by then the network has fully settled, so the waveform
    #: is exact while the window stays bounded (the paper's 1 Hz case).
    isolated_edge_spacing: float = 60e-6
    #: Base (coarse) samples per segment window.
    base_samples: int = 3072
    #: Random seed for unsynchronized phase draws.
    seed: int = 0
    #: Record the per-node waveforms of the first segment.
    collect_waveforms: bool = False
    #: Apply the simultaneous-switching jitter term.
    include_ssn: bool = True
    #: Constant nest-unit loads (A): shifts DC levels only.
    nest_currents: dict[str, float] = field(
        default_factory=lambda: {"load_l3": 14.0, "load_mcu": 5.0, "load_gx": 5.0}
    )
    #: VRM remote-sense loop response time (s): bursts longer than this
    #: have their in-burst average current regulated out at the package
    #: sense point; shorter bursts ride on the pre-burst setpoint.
    vrm_response: float = 20e-6

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ConfigError(
                f"segments must be >= 1 (got {self.segments})"
            )
        if self.events_cap < 1:
            raise ConfigError(
                f"events_cap must be >= 1 (got {self.events_cap})"
            )
        if self.base_samples < 64:
            raise ConfigError(
                f"base_samples must be >= 64 for a meaningful p2p "
                f"(got {self.base_samples})"
            )
        if self.tail < 0:
            raise ConfigError(f"tail must be >= 0 (got {self.tail})")
        if self.isolated_edge_spacing <= 0:
            raise ConfigError(
                f"isolated_edge_spacing must be positive "
                f"(got {self.isolated_edge_spacing})"
            )
        if self.vrm_response <= 0:
            raise ConfigError(
                f"vrm_response must be positive (got {self.vrm_response})"
            )


@dataclass
class CoreMeasurement:
    """Per-core outcome of one run."""

    core: int
    p2p_pct: float
    v_min: float
    v_max: float
    coherent_delta_i: float

    @property
    def droop(self) -> float:
        """Worst droop below the observed maximum (V)."""
        return self.v_max - self.v_min


@dataclass
class RunResult:
    """Outcome of one mapping run."""

    measurements: list[CoreMeasurement]
    mapping: list[CurrentProgram | None]
    waveforms: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    @property
    def p2p_by_core(self) -> list[float]:
        return [m.p2p_pct for m in self.measurements]

    @property
    def max_p2p(self) -> float:
        """Worst-case noise across cores — the paper's headline metric."""
        return max(m.p2p_pct for m in self.measurements)

    @property
    def worst_vmin(self) -> float:
        """Deepest instantaneous voltage seen by any core (V), with the
        coherent-switching deepening applied — the quantity the R-Unit's
        critical paths experience."""
        return min(m.v_min for m in self.measurements)

    def measurement(self, core: int) -> CoreMeasurement:
        for m in self.measurements:
            if m.core == core:
                return m
        raise MeasurementError(f"no measurement for core {core}")


@dataclass
class SegmentStimulus:
    """One observation window's worth of stimulus: the edge trains of
    every bursting core, the composite sample grid, and the per-core
    coherent-ΔI figures.  Pure data — both solve paths consume it."""

    index: int
    trains: list[EdgeTrain]
    samples: SampleGrid
    coherent: list[float]

    @property
    def times(self) -> np.ndarray:
        return self.samples.times


@dataclass
class StimulusBatch:
    """Everything a mapping run needs *before* any waveform is solved:
    validated mapping, options, the VRM-regulated DC operating point and
    one :class:`SegmentStimulus` per observation window.

    Built by :meth:`ChipRunner.build_stimulus`; consumed identically by
    the reference superposition path and the compiled-kernel path, which
    is what makes the two backends comparable run-for-run.
    """

    mapping: list[CurrentProgram | None]
    options: RunOptions
    run_tag: object
    dc_levels: dict[str, float]
    segments: list[SegmentStimulus]


class ChipRunner:
    """Runs workload mappings on one :class:`~repro.machine.chip.Chip`.

    The run pipeline is split into three phases — *build stimulus*
    (edge trains, sample grids, coherent ΔI), *solve* (voltage
    deviation waveforms per node) and *measure* (sticky skitter
    accumulation) — so the solve phase is pluggable: the default is the
    reference per-edge superposition; passing a
    :class:`~repro.pdn.kernels.CompiledChipKernel` routes it through the
    batched fast path instead, with identical stimulus and measurement
    phases on both sides.
    """

    def __init__(self, chip: Chip):
        self.chip = chip

    # ------------------------------------------------------------------
    def run(
        self,
        mapping: Sequence[CurrentProgram | None],
        options: RunOptions | None = None,
        run_tag: object = "run",
        *,
        kernel: CompiledChipKernel | None = None,
    ) -> RunResult:
        """Execute *mapping* (one entry per core, ``None`` = idle core).

        ``run_tag`` differentiates the random phase draws of repeated
        runs of the same mapping.  With *kernel*, the solve phase uses
        the chip's compiled batched kernel instead of the reference
        per-edge superposition (equivalent within the kernel's pinned
        tolerance).
        """
        batch = self.build_stimulus(mapping, options, run_tag)
        return self.execute(batch, kernel=kernel)

    def run_batch(
        self,
        mappings: Sequence[Sequence[CurrentProgram | None]],
        options: RunOptions | None = None,
        run_tags: Sequence[object] | None = None,
        *,
        kernel: CompiledChipKernel | None = None,
    ) -> list[RunResult]:
        """Execute several mappings back to back (shared options, one
        stimulus-build + solve + measure cycle per mapping)."""
        if run_tags is None:
            run_tags = [f"run{i}" for i in range(len(mappings))]
        if len(run_tags) != len(mappings):
            raise ConfigError("run_tags and mappings must have equal length")
        return [
            self.run(mapping, options, tag, kernel=kernel)
            for mapping, tag in zip(mappings, run_tags)
        ]

    # -- phase 1: stimulus construction --------------------------------
    def build_stimulus(
        self,
        mapping: Sequence[CurrentProgram | None],
        options: RunOptions | None = None,
        run_tag: object = "run",
    ) -> StimulusBatch:
        """Construct the full stimulus of one run without solving it."""
        options = options or RunOptions()
        chip = self.chip
        if len(mapping) != chip.n_cores:
            raise ConfigError(
                f"mapping must cover all {chip.n_cores} cores"
            )

        idle_amps = chip.config.core.static_power_w / chip.vnom
        baseline = dict(options.nest_currents)
        for core, program in enumerate(mapping):
            port = chip.core_ports[core]
            baseline[port] = program.i_low if program is not None else idle_amps

        dc_levels = self._dc_levels(
            baseline, self._slow_average(mapping, baseline, options)
        )
        segments = []
        for segment in range(options.segments):
            trains = self._build_trains(mapping, options, run_tag, segment)
            samples = self._sample_times(trains, options)
            coherent = self._coherent_delta_i(mapping, trains, options)
            segments.append(
                SegmentStimulus(
                    index=segment,
                    trains=trains,
                    samples=samples,
                    coherent=coherent,
                )
            )
        return StimulusBatch(
            mapping=list(mapping),
            options=options,
            run_tag=run_tag,
            dc_levels=dc_levels,
            segments=segments,
        )

    # -- phase 2 + 3: solve and measure ---------------------------------
    def execute(
        self,
        batch: StimulusBatch,
        *,
        kernel: CompiledChipKernel | None = None,
    ) -> RunResult:
        """Solve a prepared :class:`StimulusBatch` and measure it."""
        chip = self.chip
        options = batch.options
        chip.reset_skitters()
        core_nodes = chip.core_nodes
        deviations = self._solve(batch, core_nodes, kernel)
        collect = bool(options.collect_waveforms and batch.segments)
        extra: list[np.ndarray] = []
        if collect:
            extra = self._solve_extra(batch.segments[0], kernel)

        dc_levels = batch.dc_levels
        waveforms: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        sticky = [
            {"v_min": np.inf, "v_max": -np.inf, "coherent": 0.0}
            for _ in range(chip.n_cores)
        ]
        for segment, rows in zip(batch.segments, deviations):
            times = segment.times
            for core in range(chip.n_cores):
                node = core_nodes[core]
                volts = dc_levels[node] + rows[core]
                state = sticky[core]
                state["v_min"] = min(state["v_min"], float(volts.min()))
                state["v_max"] = max(state["v_max"], float(volts.max()))
                state["coherent"] = max(
                    state["coherent"], segment.coherent[core]
                )
                if collect and segment.index == 0:
                    waveforms[node] = (times.copy(), volts)
            if collect and segment.index == 0:
                for node, deviation in zip(WAVEFORM_EXTRA_NODES, extra):
                    waveforms[node] = (
                        times.copy(), dc_levels[node] + deviation
                    )

        measurements: list[CoreMeasurement] = []
        for core in range(chip.n_cores):
            state = sticky[core]
            if not np.isfinite(state["v_min"]):  # pragma: no cover - defensive
                raise MeasurementError(f"core {core} produced no samples")
            coherent_amps = state["coherent"] if options.include_ssn else 0.0
            macro = chip.skitters[core]
            macro.observe(state["v_min"], state["v_max"], coherent_amps)
            reading = macro.read()
            ssn_droop = macro.config.ssn_gain * coherent_amps
            measurements.append(
                CoreMeasurement(
                    core=core,
                    p2p_pct=reading.p2p_pct,
                    v_min=state["v_min"] - ssn_droop,
                    v_max=state["v_max"],
                    coherent_delta_i=coherent_amps,
                )
            )
        return RunResult(
            measurements=measurements,
            mapping=list(batch.mapping),
            waveforms=waveforms,
        )

    def _solve(
        self,
        batch: StimulusBatch,
        nodes: list[str],
        kernel: CompiledChipKernel | None,
    ) -> list[list[np.ndarray]]:
        """Per-segment deviation waveforms for *nodes*: the pluggable
        solve phase.  The kernel path evaluates every segment of the
        run as one stacked batch; the reference path assembles each
        (segment, node) waveform by per-edge table superposition."""
        if kernel is not None:
            return kernel.solve_batch(
                [(seg.trains, seg.samples) for seg in batch.segments],
                nodes=nodes,
            )
        library = self.chip.response_library
        return [
            [
                assemble_voltage(library, node, seg.trains, seg.times)
                for node in nodes
            ]
            for seg in batch.segments
        ]

    def _solve_extra(
        self, segment: SegmentStimulus, kernel: CompiledChipKernel | None
    ) -> list[np.ndarray]:
        """Waveform-collection extras (nest nodes, first segment only)."""
        if kernel is not None:
            return list(
                kernel.evaluate(
                    segment.trains,
                    segment.samples,
                    nodes=list(WAVEFORM_EXTRA_NODES),
                )
            )
        library = self.chip.response_library
        return [
            assemble_voltage(library, node, segment.trains, segment.times)
            for node in WAVEFORM_EXTRA_NODES
        ]

    # ------------------------------------------------------------------
    def _slow_average(
        self,
        mapping: Sequence[CurrentProgram | None],
        baseline: dict[str, float],
        options: RunOptions,
    ) -> dict[str, float]:
        """Per-port current the VRM remote-sense loop regulates against.

        Bursts longer than the loop's response time are regulated
        in-burst (the loop sees the burst's duty-cycle average); bursts
        shorter than it ride on the pre-burst setpoint, so their
        sustained IR shift is *not* compensated.  Continuous
        (unsynchronized) stressmarks are always regulated.
        """
        average = dict(baseline)
        for core, program in enumerate(mapping):
            if program is None or program.is_steady:
                continue
            port = self.chip.core_ports[core]
            if program.sync is not None:
                burst_seconds = program.sync.events_per_sync / program.freq_hz
                if burst_seconds < options.vrm_response:
                    continue  # burst too short for the loop to react
            average[port] = program.i_low + program.duty * program.delta_i
        return average

    def _dc_levels(
        self,
        baseline: dict[str, float],
        slow_average: dict[str, float],
    ) -> dict[str, float]:
        """Absolute node voltages under the constant baseline loads,
        with the VRM remote-sense loop regulating the package node to
        nominal under the slow-average load."""
        system = self.chip.modal.system
        vrm_col = system.input_column("vrm")
        pkg_row = system.node_index["pkg"]

        u_avg = np.zeros(len(system.input_index))
        for name, amps in slow_average.items():
            u_avg[system.input_column(name)] = amps
        u_avg[vrm_col] = self.chip.vnom
        v_pkg = float(system.dc_voltages(u_avg)[pkg_row])
        setpoint = self.chip.vnom + (self.chip.vnom - v_pkg)

        u = np.zeros(len(system.input_index))
        for name, amps in baseline.items():
            u[system.input_column(name)] = amps
        u[vrm_col] = setpoint
        voltages = system.dc_voltages(u)
        return {node: float(voltages[row]) for node, row in system.node_index.items()}

    def _effective_period(self, program: CurrentProgram, options: RunOptions) -> float:
        period = 1.0 / program.freq_hz
        return min(period, options.isolated_edge_spacing)

    def _build_trains(
        self,
        mapping: Sequence[CurrentProgram | None],
        options: RunOptions,
        run_tag: object,
        segment: int,
    ) -> list[EdgeTrain]:
        """Edge trains of all bursting cores for one segment."""
        trains: list[EdgeTrain] = []
        for core, program in enumerate(mapping):
            if program is None or program.is_steady:
                continue
            period = self._effective_period(program, options)
            freq = 1.0 / period
            if not program.is_phase_randomized:
                start = program.sync.offset
                n_events = min(program.sync.events_per_sync, options.events_cap)
            else:
                rng = stream(
                    self.chip.config.seed, "phase", run_tag, segment, core,
                    options.seed,
                )
                start = float(rng.uniform(0.0, period))
                n_events = options.events_cap
            trains.append(
                edges_from_square_wave(
                    self.chip.core_ports[core],
                    delta_i=program.delta_i,
                    freq_hz=freq,
                    n_events=n_events,
                    start=start,
                    duty=program.duty,
                    rise_time=program.rise_time,
                )
            )
        return trains

    def _sample_times(
        self, trains: list[EdgeTrain], options: RunOptions
    ) -> SampleGrid:
        """Dense-near-edges composite sampling grid for one segment.

        The grid records its own construction (base linspace, per-edge
        probe anchors/offsets, the ``unique`` gather) so the kernel
        backend can build phase matrices multiplicatively; the sample
        *values* are identical to simply uniquing the concatenation.
        """
        if trains:
            t_end = max(train.times.max() for train in trains) + options.tail
            edge_times = np.concatenate([train.times for train in trains])
        else:
            t_end = options.tail
            edge_times = np.empty(0)
        base = np.linspace(0.0, t_end, options.base_samples)
        if edge_times.size == 0:
            return SampleGrid(
                times=base,
                t_end=t_end,
                n_base=options.base_samples,
                first_index=np.arange(base.size),
            )
        probe_offsets = np.concatenate(
            [
                np.linspace(0.0, 30e-9, 13),
                np.geomspace(40e-9, 4e-6, 36),
            ]
        )
        probes = (edge_times[:, None] + probe_offsets[None, :]).ravel()
        keep = (probes >= 0.0) & (probes <= t_end)
        times, first_index = np.unique(
            np.concatenate([base, probes[keep]]), return_index=True
        )
        return SampleGrid(
            times=times,
            t_end=t_end,
            n_base=options.base_samples,
            anchors=edge_times,
            offsets=probe_offsets,
            probe_mask=keep,
            first_index=first_index,
        )

    def _coherent_delta_i(
        self,
        mapping: Sequence[CurrentProgram | None],
        trains: list[EdgeTrain],
        options: RunOptions,
    ) -> list[float]:
        """Per-core maximum weighted rising-ΔI within the coherence
        window, over the whole segment.

        The sliding window is evaluated as dense (event × event)
        matrices — with at most ``n_cores × events_cap`` rising edges
        per segment the quadratic form is small, and it replaces the
        per-window Python scan that used to dominate stimulus
        construction.
        """
        chip = self.chip
        n_cores = chip.n_cores
        window = chip.config.ssn_window
        port_to_core = {port: i for i, port in enumerate(chip.core_ports)}
        t_parts: list[np.ndarray] = []
        c_parts: list[np.ndarray] = []
        a_parts: list[np.ndarray] = []
        for train in trains:
            core = port_to_core[train.port]
            rising = train.deltas > 0
            times = train.times[rising]
            # Simultaneous-switching jitter is a *transition* effect:
            # when a core repeats its events faster than the coherence
            # window, the chip sees quasi-steady ripple (already in the
            # PDN waveform), not discrete switching events — derate the
            # impulsive contribution by the period/window ratio.
            if times.size > 1:
                period = float(np.min(np.diff(np.sort(times))))
                impulsiveness = min(1.0, period / (2.0 * window))
            else:
                impulsiveness = 1.0
            t_parts.append(times.astype(float))
            c_parts.append(np.full(times.size, core, dtype=np.intp))
            a_parts.append(train.deltas[rising] * impulsiveness)
        if not t_parts:
            return [0.0] * n_cores
        t = np.concatenate(t_parts)
        if t.size == 0:
            return [0.0] * n_cores
        order = np.argsort(t, kind="stable")
        t, c, a = t[order], np.concatenate(c_parts)[order], np.concatenate(a_parts)[order]

        # One window per event (ending at it): membership is "no newer
        # than the window end, no older than the coherence span".
        idx = np.arange(t.size)
        in_win = (idx[None, :] <= idx[:, None]) & (
            t[None, :] >= (t[:, None] - window)
        )
        amps = np.where(in_win, a[None, :], 0.0)
        # At most one edge per source core counts within a window: the
        # delay line integrates a single traversal, it does not
        # accumulate a core's repeated events.
        per_core = np.zeros((t.size, n_cores))
        for core in range(n_cores):
            cols = amps[:, c == core]
            if cols.size:
                per_core[:, core] = cols.max(axis=1)
        weights = np.array([
            [chip.coupling_weight(observer, core) for core in range(n_cores)]
            for observer in range(n_cores)
        ])
        totals = per_core @ weights.T           # (windows, observers)
        return [float(v) for v in totals.max(axis=0)]
