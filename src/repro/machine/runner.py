"""Execute workload→core mappings on a chip and read the noise.

This is the simulation counterpart of the paper's measurement loop:
map one stressmark (or idle) to each core, let the chip run, and read
the per-core skitter macros in sticky mode.

A run is divided into *segments*, each standing for one observation
window somewhere in the long physical run:

* synchronized programs start each burst at their programmed TOD
  offset, identically in every segment (that is what the TOD sync
  buys);
* unsynchronized programs get an independent random phase per segment,
  standing for the unknown relative phases of free-running loops; the
  sticky skitter keeps the worst case across segments, exactly like
  sticky mode accumulating across a long run.

Within a segment the per-core voltage waveforms are assembled by LTI
superposition of ramp responses (:mod:`repro.pdn.superposition`), on a
sample grid that is dense around ΔI edges and coarse elsewhere.  The
segment also computes each core's *coherent ΔI* — the largest
weighted sum of rising edges within the chip's coherence window — which
feeds the skitter's simultaneous-switching term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigError, MeasurementError
from ..pdn.superposition import EdgeTrain, assemble_voltage, edges_from_square_wave
from ..rng import stream
from .chip import N_CORES, Chip
from .workload import CurrentProgram

__all__ = ["RunOptions", "CoreMeasurement", "RunResult", "ChipRunner"]


@dataclass
class RunOptions:
    """Tunables of the run engine.

    The defaults balance fidelity and speed for the full experiment
    suite; tests use lighter settings.
    """

    #: Observation windows per run (phase draws for unsynced programs).
    segments: int = 8
    #: Maximum consecutive ΔI events simulated per burst.  The PDN
    #: settles within a few periods (Q ~ 2), so bursts of 100 or 1000
    #: events measure the same as this cap; bursts shorter than the cap
    #: are simulated exactly.
    events_cap: int = 12
    #: Extra time simulated after the last edge (s).
    tail: float = 3e-6
    #: Periods longer than this are simulated as isolated edges at this
    #: spacing — by then the network has fully settled, so the waveform
    #: is exact while the window stays bounded (the paper's 1 Hz case).
    isolated_edge_spacing: float = 60e-6
    #: Base (coarse) samples per segment window.
    base_samples: int = 3072
    #: Random seed for unsynchronized phase draws.
    seed: int = 0
    #: Record the per-node waveforms of the first segment.
    collect_waveforms: bool = False
    #: Apply the simultaneous-switching jitter term.
    include_ssn: bool = True
    #: Constant nest-unit loads (A): shifts DC levels only.
    nest_currents: dict[str, float] = field(
        default_factory=lambda: {"load_l3": 14.0, "load_mcu": 5.0, "load_gx": 5.0}
    )
    #: VRM remote-sense loop response time (s): bursts longer than this
    #: have their in-burst average current regulated out at the package
    #: sense point; shorter bursts ride on the pre-burst setpoint.
    vrm_response: float = 20e-6

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ConfigError(
                f"segments must be >= 1 (got {self.segments})"
            )
        if self.events_cap < 1:
            raise ConfigError(
                f"events_cap must be >= 1 (got {self.events_cap})"
            )
        if self.base_samples < 64:
            raise ConfigError(
                f"base_samples must be >= 64 for a meaningful p2p "
                f"(got {self.base_samples})"
            )
        if self.tail < 0:
            raise ConfigError(f"tail must be >= 0 (got {self.tail})")
        if self.isolated_edge_spacing <= 0:
            raise ConfigError(
                f"isolated_edge_spacing must be positive "
                f"(got {self.isolated_edge_spacing})"
            )
        if self.vrm_response <= 0:
            raise ConfigError(
                f"vrm_response must be positive (got {self.vrm_response})"
            )


@dataclass
class CoreMeasurement:
    """Per-core outcome of one run."""

    core: int
    p2p_pct: float
    v_min: float
    v_max: float
    coherent_delta_i: float

    @property
    def droop(self) -> float:
        """Worst droop below the observed maximum (V)."""
        return self.v_max - self.v_min


@dataclass
class RunResult:
    """Outcome of one mapping run."""

    measurements: list[CoreMeasurement]
    mapping: list[CurrentProgram | None]
    waveforms: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    @property
    def p2p_by_core(self) -> list[float]:
        return [m.p2p_pct for m in self.measurements]

    @property
    def max_p2p(self) -> float:
        """Worst-case noise across cores — the paper's headline metric."""
        return max(m.p2p_pct for m in self.measurements)

    @property
    def worst_vmin(self) -> float:
        """Deepest instantaneous voltage seen by any core (V), with the
        coherent-switching deepening applied — the quantity the R-Unit's
        critical paths experience."""
        return min(m.v_min for m in self.measurements)

    def measurement(self, core: int) -> CoreMeasurement:
        for m in self.measurements:
            if m.core == core:
                return m
        raise MeasurementError(f"no measurement for core {core}")


class ChipRunner:
    """Runs workload mappings on one :class:`~repro.machine.chip.Chip`."""

    def __init__(self, chip: Chip):
        self.chip = chip

    # ------------------------------------------------------------------
    def run(
        self,
        mapping: Sequence[CurrentProgram | None],
        options: RunOptions | None = None,
        run_tag: object = "run",
    ) -> RunResult:
        """Execute *mapping* (one entry per core, ``None`` = idle core).

        ``run_tag`` differentiates the random phase draws of repeated
        runs of the same mapping.
        """
        options = options or RunOptions()
        if len(mapping) != N_CORES:
            raise ConfigError(f"mapping must cover all {N_CORES} cores")
        chip = self.chip
        chip.reset_skitters()
        library = chip.response_library

        idle_amps = chip.config.core.static_power_w / chip.vnom
        baseline = dict(options.nest_currents)
        for core, program in enumerate(mapping):
            port = chip.core_ports[core]
            baseline[port] = program.i_low if program is not None else idle_amps

        dc_levels = self._dc_levels(
            baseline, self._slow_average(mapping, baseline, options)
        )
        waveforms: dict[str, tuple[np.ndarray, np.ndarray]] = {}

        sticky = [
            {"v_min": np.inf, "v_max": -np.inf, "coherent": 0.0}
            for _ in range(N_CORES)
        ]

        for segment in range(options.segments):
            trains = self._build_trains(mapping, options, run_tag, segment)
            times = self._sample_times(trains, options)
            coherent = self._coherent_delta_i(mapping, trains, options)
            for core in range(N_CORES):
                node = chip.core_nodes[core]
                deviation = assemble_voltage(library, node, trains, times)
                volts = dc_levels[node] + deviation
                state = sticky[core]
                state["v_min"] = min(state["v_min"], float(volts.min()))
                state["v_max"] = max(state["v_max"], float(volts.max()))
                state["coherent"] = max(state["coherent"], coherent[core])
                if options.collect_waveforms and segment == 0:
                    waveforms[node] = (times.copy(), volts)
            if options.collect_waveforms and segment == 0:
                for node in ("dom_n", "dom_s", "l3"):
                    deviation = assemble_voltage(library, node, trains, times)
                    waveforms[node] = (times.copy(), dc_levels[node] + deviation)

        measurements: list[CoreMeasurement] = []
        for core in range(N_CORES):
            state = sticky[core]
            if not np.isfinite(state["v_min"]):  # pragma: no cover - defensive
                raise MeasurementError(f"core {core} produced no samples")
            coherent_amps = state["coherent"] if options.include_ssn else 0.0
            macro = chip.skitters[core]
            macro.observe(state["v_min"], state["v_max"], coherent_amps)
            reading = macro.read()
            ssn_droop = macro.config.ssn_gain * coherent_amps
            measurements.append(
                CoreMeasurement(
                    core=core,
                    p2p_pct=reading.p2p_pct,
                    v_min=state["v_min"] - ssn_droop,
                    v_max=state["v_max"],
                    coherent_delta_i=coherent_amps,
                )
            )
        return RunResult(
            measurements=measurements, mapping=list(mapping), waveforms=waveforms
        )

    # ------------------------------------------------------------------
    def _slow_average(
        self,
        mapping: Sequence[CurrentProgram | None],
        baseline: dict[str, float],
        options: RunOptions,
    ) -> dict[str, float]:
        """Per-port current the VRM remote-sense loop regulates against.

        Bursts longer than the loop's response time are regulated
        in-burst (the loop sees the burst's duty-cycle average); bursts
        shorter than it ride on the pre-burst setpoint, so their
        sustained IR shift is *not* compensated.  Continuous
        (unsynchronized) stressmarks are always regulated.
        """
        average = dict(baseline)
        for core, program in enumerate(mapping):
            if program is None or program.is_steady:
                continue
            port = self.chip.core_ports[core]
            if program.sync is not None:
                burst_seconds = program.sync.events_per_sync / program.freq_hz
                if burst_seconds < options.vrm_response:
                    continue  # burst too short for the loop to react
            average[port] = program.i_low + program.duty * program.delta_i
        return average

    def _dc_levels(
        self,
        baseline: dict[str, float],
        slow_average: dict[str, float],
    ) -> dict[str, float]:
        """Absolute node voltages under the constant baseline loads,
        with the VRM remote-sense loop regulating the package node to
        nominal under the slow-average load."""
        system = self.chip.modal.system
        vrm_col = system.input_column("vrm")
        pkg_row = system.node_index["pkg"]

        u_avg = np.zeros(len(system.input_index))
        for name, amps in slow_average.items():
            u_avg[system.input_column(name)] = amps
        u_avg[vrm_col] = self.chip.vnom
        v_pkg = float(system.dc_voltages(u_avg)[pkg_row])
        setpoint = self.chip.vnom + (self.chip.vnom - v_pkg)

        u = np.zeros(len(system.input_index))
        for name, amps in baseline.items():
            u[system.input_column(name)] = amps
        u[vrm_col] = setpoint
        voltages = system.dc_voltages(u)
        return {node: float(voltages[row]) for node, row in system.node_index.items()}

    def _effective_period(self, program: CurrentProgram, options: RunOptions) -> float:
        period = 1.0 / program.freq_hz
        return min(period, options.isolated_edge_spacing)

    def _build_trains(
        self,
        mapping: Sequence[CurrentProgram | None],
        options: RunOptions,
        run_tag: object,
        segment: int,
    ) -> list[EdgeTrain]:
        """Edge trains of all bursting cores for one segment."""
        trains: list[EdgeTrain] = []
        for core, program in enumerate(mapping):
            if program is None or program.is_steady:
                continue
            period = self._effective_period(program, options)
            freq = 1.0 / period
            if not program.is_phase_randomized:
                start = program.sync.offset
                n_events = min(program.sync.events_per_sync, options.events_cap)
            else:
                rng = stream(
                    self.chip.config.seed, "phase", run_tag, segment, core,
                    options.seed,
                )
                start = float(rng.uniform(0.0, period))
                n_events = options.events_cap
            trains.append(
                edges_from_square_wave(
                    self.chip.core_ports[core],
                    delta_i=program.delta_i,
                    freq_hz=freq,
                    n_events=n_events,
                    start=start,
                    duty=program.duty,
                    rise_time=program.rise_time,
                )
            )
        return trains

    def _sample_times(
        self, trains: list[EdgeTrain], options: RunOptions
    ) -> np.ndarray:
        """Dense-near-edges composite sampling grid for one segment."""
        if trains:
            t_end = max(train.times.max() for train in trains) + options.tail
            edge_times = np.concatenate([train.times for train in trains])
        else:
            t_end = options.tail
            edge_times = np.empty(0)
        base = np.linspace(0.0, t_end, options.base_samples)
        if edge_times.size == 0:
            return base
        probe_offsets = np.concatenate(
            [
                np.linspace(0.0, 30e-9, 13),
                np.geomspace(40e-9, 4e-6, 36),
            ]
        )
        probes = (edge_times[:, None] + probe_offsets[None, :]).ravel()
        probes = probes[(probes >= 0.0) & (probes <= t_end)]
        return np.unique(np.concatenate([base, probes]))

    def _coherent_delta_i(
        self,
        mapping: Sequence[CurrentProgram | None],
        trains: list[EdgeTrain],
        options: RunOptions,
    ) -> list[float]:
        """Per-core maximum weighted rising-ΔI within the coherence
        window, over the whole segment."""
        events: list[tuple[float, int, float]] = []  # (time, core, amps)
        port_to_core = {port: i for i, port in enumerate(self.chip.core_ports)}
        window = self.chip.config.ssn_window
        for train in trains:
            core = port_to_core[train.port]
            rising = train.deltas > 0
            times = train.times[rising]
            # Simultaneous-switching jitter is a *transition* effect:
            # when a core repeats its events faster than the coherence
            # window, the chip sees quasi-steady ripple (already in the
            # PDN waveform), not discrete switching events — derate the
            # impulsive contribution by the period/window ratio.
            if times.size > 1:
                period = float(np.min(np.diff(np.sort(times))))
                impulsiveness = min(1.0, period / (2.0 * window))
            else:
                impulsiveness = 1.0
            for t, amps in zip(times, train.deltas[rising]):
                events.append((float(t), core, float(amps) * impulsiveness))
        if not events:
            return [0.0] * N_CORES
        events.sort()
        result = [0.0] * N_CORES
        left = 0
        for right in range(len(events)):
            while events[right][0] - events[left][0] > window:
                left += 1
            # At most one edge per source core counts within a window:
            # the delay line integrates a single traversal, it does not
            # accumulate a core's repeated events.
            per_core: dict[int, float] = {}
            for _, core, amps in events[left : right + 1]:
                if amps > per_core.get(core, 0.0):
                    per_core[core] = amps
            for observer in range(N_CORES):
                total = sum(
                    amps * self.chip.coupling_weight(observer, core)
                    for core, amps in per_core.items()
                )
                if total > result[observer]:
                    result[observer] = total
        return result
