"""The six-core chip model: PDN, skitters, variation.

A :class:`Chip` owns one concrete instance of the evaluation silicon:
the calibrated PDN with this chip's process-variation scales applied,
one skitter macro per core (plus MCU/GX/nest macros for completeness,
as on the real die), and the TOD facility.  The expensive solver
artifacts (state space, modal decomposition, response library) are
built lazily and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from ..errors import ConfigError
from ..measure.skitter import SkitterConfig, SkitterMacro
from ..pdn.kernels import CompiledChipKernel, compile_kernel
from ..pdn.netlist import Netlist
from ..pdn.response import ResponseLibrary
from ..pdn.state_space import ModalSystem, build_state_space
from ..pdn.topology import (
    ChipPdnParameters,
    build_chip_netlist,
    core_node,
    core_port,
    row_cores,
)
from ..pdn.zec12 import reference_chip_parameters
from ..uarch.resources import CoreConfig, default_core_config
from .tod import TodClock
from .variation import CoreVariation, draw_variation

__all__ = ["ChipConfig", "Chip", "reference_chip", "N_CORES"]

#: Core count of the *reference* chip (family variants carry their own
#: count in ``ChipConfig.pdn.n_cores`` / ``Chip.n_cores``).
N_CORES = 6


@dataclass
class ChipConfig:
    """Everything needed to instantiate a chip.

    Attributes
    ----------
    pdn:
        PDN element values (pre-variation).
    core:
        Core microarchitecture configuration.
    skitter:
        Skitter macro configuration.
    seed:
        Root seed for process variation and measurement noise.
    ssn_window:
        Coherence window of the simultaneous-switching jitter term (s).
    ssn_row_weight, ssn_cross_weight:
        Cross-core coupling weights of coherent ΔI within the same core
        row and across rows.
    """

    pdn: ChipPdnParameters = field(default_factory=reference_chip_parameters)
    core: CoreConfig = field(default_factory=default_core_config)
    skitter: SkitterConfig = field(default_factory=SkitterConfig)
    seed: int = 17
    ssn_window: float = 30e-9
    ssn_row_weight: float = 0.85
    ssn_cross_weight: float = 0.75

    def __post_init__(self) -> None:
        if self.ssn_window <= 0:
            raise ConfigError("ssn_window must be positive")
        if not 0 <= self.ssn_cross_weight <= self.ssn_row_weight <= 1:
            raise ConfigError(
                "expected 0 <= cross weight <= row weight <= 1 "
                "(the L3 damps cross-row coupling)"
            )


class Chip:
    """One chip instance with its variation applied."""

    def __init__(self, config: ChipConfig, chip_id: int = 0):
        self.config = config
        self.chip_id = chip_id
        self.n_cores = config.pdn.n_cores
        self.variation: CoreVariation = draw_variation(
            config.seed, chip_id, n_cores=self.n_cores
        )
        self.pdn_params = config.pdn.with_variation(
            self.variation.r_scale, self.variation.c_scale
        )
        self.tod = TodClock()
        self.skitters = [
            SkitterMacro(
                config.skitter,
                location=f"core{i}",
                sensitivity=self.variation.skitter_sensitivity[i],
            )
            for i in range(self.n_cores)
        ]
        self.unit_skitters = {
            name: SkitterMacro(config.skitter, location=name)
            for name in ("mcu", "gx", "l3")
        }

    # -- identity -------------------------------------------------------
    @property
    def vnom(self) -> float:
        """Nominal supply voltage (V)."""
        return self.pdn_params.vnom

    @property
    def core_nodes(self) -> list[str]:
        return [core_node(i) for i in range(self.n_cores)]

    @property
    def core_ports(self) -> list[str]:
        return [core_port(i) for i in range(self.n_cores)]

    def row_of(self, core: int) -> str:
        """'north' or 'south' — which domain row the core sits in."""
        north, south = row_cores(self.n_cores)
        if core in north:
            return "north"
        if core in south:
            return "south"
        raise ConfigError(f"no core {core} on this chip")

    def coupling_weight(self, observer: int, source: int) -> float:
        """SSN coupling weight from *source* core activity to the
        *observer* core's skitter."""
        if observer == source:
            return 1.0
        if self.row_of(observer) == self.row_of(source):
            return self.config.ssn_row_weight
        return self.config.ssn_cross_weight

    # -- cached solver artifacts -----------------------------------------
    @cached_property
    def netlist(self) -> Netlist:
        return build_chip_netlist(self.pdn_params)

    @cached_property
    def modal(self) -> ModalSystem:
        return ModalSystem(build_state_space(self.netlist))

    @cached_property
    def response_library(self) -> ResponseLibrary:
        return ResponseLibrary(
            self.netlist,
            ports=self.core_ports,
            nodes=self.core_nodes + ["dom_n", "dom_s", "l3"],
            rise_time=self.config.core.ramp_time,
            modal=self.modal,
        )

    @cached_property
    def compiled_kernel(self) -> CompiledChipKernel:
        """The chip's batched solve kernel (process-memoized by content
        fingerprint, so identical chips share one compiled artifact).
        Raises :class:`~repro.errors.SolverError` if the chip's spectrum
        does not compile — callers on the ``auto`` backend catch that
        and fall back to the reference solver."""
        return compile_kernel(self.response_library)

    def reset_skitters(self) -> None:
        """Clear all sticky skitter state (between experiments)."""
        for macro in self.skitters:
            macro.reset()
        for macro in self.unit_skitters.values():
            macro.reset()

    def with_pdn(self, pdn: ChipPdnParameters) -> "Chip":
        """A new chip instance with different PDN parameters (same seed,
        same variation draw) — used by the ablation benches."""
        return Chip(replace(self.config, pdn=pdn), self.chip_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Chip(id={self.chip_id}, seed={self.config.seed})"


def reference_chip(chip_id: int = 0, seed: int = 17) -> Chip:
    """The calibrated reference chip instance used by the experiments."""
    return Chip(ChipConfig(seed=seed), chip_id=chip_id)
