"""Time-of-day (TOD) clock facility.

The evaluation platform provides a global 64-bit TOD register shared by
all cores.  The paper's deterministic multi-core synchronization spins
until selected low-order bits of the TOD are zero — which happens every
4 ms — and programs misalignment by requiring a different low-bit
pattern, in steps of 62.5 ns.

The model exposes exactly those affordances: the step size, the sync
interval, tick/time conversion, and the spin-exit computation used by
the stressmark synchronization code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["TOD_STEP", "SYNC_INTERVAL", "TodClock"]

#: Granularity of programmable alignment (s): one low-order TOD step.
TOD_STEP = 62.5e-9

#: Interval at which the sync spin-loop exit condition recurs (s).
SYNC_INTERVAL = 4e-3

#: TOD steps between sync points.
STEPS_PER_SYNC = int(round(SYNC_INTERVAL / TOD_STEP))


@dataclass(frozen=True)
class TodClock:
    """The global TOD facility.

    All cores observe the same register, which is what makes
    cycle-accurate cross-core alignment possible at all — the paper
    notes that "without the right architecture support the perfect
    control of alignment would not be possible".
    """

    step: float = TOD_STEP
    sync_interval: float = SYNC_INTERVAL

    def __post_init__(self) -> None:
        if self.step <= 0 or self.sync_interval <= self.step:
            raise ConfigError("TOD step/interval are inconsistent")
        ratio = self.sync_interval / self.step
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigError("sync interval must be a whole number of TOD steps")

    def ticks(self, time_s: float) -> int:
        """TOD register value (in steps) at *time_s*."""
        if time_s < 0:
            raise ConfigError("TOD time cannot be negative")
        return int(math.floor(time_s / self.step))

    def quantize_offset(self, offset_s: float) -> float:
        """Snap a programmed misalignment to the TOD granularity.

        Raises when the offset is not representable: the paper's
        methodology is explicitly limited to 62.5 ns granularity.
        """
        steps = offset_s / self.step
        if abs(steps - round(steps)) > 1e-6:
            raise ConfigError(
                f"misalignment {offset_s!r}s is not a multiple of the "
                f"{self.step}s TOD step"
            )
        return round(steps) * self.step

    def next_sync(self, after_s: float, offset_s: float = 0.0) -> float:
        """First spin-loop exit time at or after *after_s*.

        ``offset_s`` is the programmed misalignment: the modified exit
        condition fires that much after each base sync point.
        """
        offset = self.quantize_offset(offset_s)
        base = math.ceil(max(after_s - offset, 0.0) / self.sync_interval)
        return base * self.sync_interval + offset
