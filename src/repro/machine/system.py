"""Service element: platform control and monitoring.

The evaluation platform's management console controls chip voltage in
0.5 % steps of nominal and monitors per-device power with milliwatt
granularity.  :class:`ServiceElement` models that control surface; the
Vmin experiment (:mod:`repro.measure.vmin`) drives it.
"""

from __future__ import annotations

from ..errors import ConfigError
from .chip import Chip

__all__ = ["ServiceElement", "VOLTAGE_STEP"]

#: Voltage control granularity: 0.5 % of nominal.
VOLTAGE_STEP = 0.005


class ServiceElement:
    """Control/monitoring console attached to one chip."""

    def __init__(self, chip: Chip):
        self.chip = chip
        self._bias_steps = 0  # signed count of 0.5 % steps from nominal

    # -- voltage control --------------------------------------------------
    @property
    def bias(self) -> float:
        """Current multiplicative voltage bias (1.0 = nominal)."""
        return 1.0 + self._bias_steps * VOLTAGE_STEP

    @property
    def supply_voltage(self) -> float:
        """Current VRM setpoint (V)."""
        return self.chip.vnom * self.bias

    def set_bias_steps(self, steps: int) -> None:
        """Set the bias in whole 0.5 % steps (negative = undervolt)."""
        if not isinstance(steps, int):
            raise ConfigError("bias steps must be a whole number of 0.5% steps")
        if steps < -60 or steps > 20:
            raise ConfigError(f"bias of {steps} steps is outside the safe range")
        self._bias_steps = steps

    def step_down(self) -> float:
        """Lower the voltage by one step; returns the new bias."""
        self.set_bias_steps(self._bias_steps - 1)
        return self.bias

    def reset_voltage(self) -> None:
        """Return to nominal voltage (after a failure/reboot)."""
        self._bias_steps = 0

    # -- power monitoring --------------------------------------------------
    def read_power(self, core_powers_w: list[float], nest_power_w: float = 26.0) -> float:
        """Chip input-rail power reading (W), quantized to milliwatts.

        ``core_powers_w`` are the modeled per-core powers; the service
        element sees their sum plus the nest.
        """
        if len(core_powers_w) != len(self.chip.core_nodes):
            raise ConfigError("need one power value per core")
        total = sum(core_powers_w) + nest_power_w
        return round(total, 3)  # milliwatt granularity
