"""Per-core process variation.

The paper attributes the differences in noise read by the six cores
"mainly to manufacturing process variation", with physical layout a
secondary contributor.  The model draws, per chip:

* a local grid-resistance scale and local decap scale per core
  (electrical variation seen by the PDN);
* a skitter sensitivity scale per core (threshold-voltage variation in
  the delay line).

A fixed layout-sensitivity vector biases the middle/upper cores the way
the paper's reference parts behaved (cores 2 and 4 read the most
noise); the random component rides on top of it, seeded by the chip
serial so every simulated chip is an individual.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..rng import stream

__all__ = [
    "CoreVariation",
    "draw_variation",
    "layout_sensitivity",
    "LAYOUT_SENSITIVITY",
]

#: Deterministic layout component of skitter sensitivity per core.
#: Cores 2 and 4 (middle/right of the north row) read slightly hotter,
#: matching the reference measurements in the paper (max noise "in
#: cores 2 and 4").
LAYOUT_SENSITIVITY = (1.00, 0.97, 1.06, 0.96, 1.04, 0.95)


def layout_sensitivity(n_cores: int) -> tuple[float, ...]:
    """The deterministic layout-sensitivity vector for an *n_cores*
    chip: the reference six-core pattern, tiled — neighbouring cores on
    a bigger die repeat the same local-layout bias pattern."""
    if n_cores < 1:
        raise ConfigError("a chip needs at least one core")
    return tuple(
        LAYOUT_SENSITIVITY[i % len(LAYOUT_SENSITIVITY)]
        for i in range(n_cores)
    )


@dataclass(frozen=True)
class CoreVariation:
    """Per-core variation vectors for one chip instance."""

    r_scale: tuple[float, ...]
    c_scale: tuple[float, ...]
    skitter_sensitivity: tuple[float, ...]

    def __post_init__(self) -> None:
        lengths = {len(self.r_scale), len(self.c_scale), len(self.skitter_sensitivity)}
        if len(lengths) != 1 or not self.r_scale:
            raise ConfigError(
                "variation vectors must agree and cover every core"
            )
        for vec in (self.r_scale, self.c_scale, self.skitter_sensitivity):
            if any(v <= 0 for v in vec):
                raise ConfigError("variation scales must be positive")


def draw_variation(
    chip_seed: int,
    chip_id: int = 0,
    electrical_sigma: float = 0.03,
    skitter_sigma: float = 0.02,
    n_cores: int = 6,
) -> CoreVariation:
    """Draw the variation vectors for chip *chip_id* under *chip_seed*.

    Electrical scales are lognormal-ish around 1 (clipped to ±3σ);
    skitter sensitivity combines the layout vector with a random
    component.  The draw sequence is a pure function of
    ``(chip_seed, chip_id, n_cores)`` — for the reference six-core
    chip it is byte-identical to the historical draw.
    """
    if electrical_sigma < 0 or skitter_sigma < 0:
        raise ConfigError("variation sigmas cannot be negative")
    rng = stream(chip_seed, "variation", chip_id)

    def draw(sigma: float) -> list[float]:
        raw = rng.normal(0.0, sigma, size=n_cores)
        clipped = raw.clip(-3 * sigma, 3 * sigma) if sigma > 0 else raw
        return [float(v) for v in (1.0 + clipped)]

    r_scale = draw(electrical_sigma)
    c_scale = draw(electrical_sigma)
    random_sens = draw(skitter_sigma)
    sensitivity = tuple(
        layout * rand
        for layout, rand in zip(layout_sensitivity(n_cores), random_sens)
    )
    return CoreVariation(
        r_scale=tuple(r_scale),
        c_scale=tuple(c_scale),
        skitter_sensitivity=sensitivity,
    )
