"""The modeled evaluation machine: chip, timing facility, run engine.

This package glues the substrates together into "a system you can run
experiments on":

* :mod:`.tod` — the time-of-day clock facility providing 62.5 ns
  programmable alignment and the 4 ms synchronization points;
* :mod:`.variation` — per-core process-variation draws;
* :mod:`.workload` — the compiled electrical behavior of a workload on
  one core (current levels, stimulus frequency, sync specification);
* :mod:`.chip` — the six-core chip: PDN + per-core skitter macros;
* :mod:`.system` — the service element: voltage control in 0.5 % steps
  and chip-level power metering;
* :mod:`.runner` — executes a workload→core mapping and produces
  per-core measurements (the simulation counterpart of "run the
  stressmarks and read the skitters").
"""

from .tod import TodClock, TOD_STEP, SYNC_INTERVAL
from .variation import CoreVariation, draw_variation
from .workload import CurrentProgram, SyncSpec, idle_program
from .chip import Chip, ChipConfig, reference_chip
from .system import ServiceElement
from .runner import ChipRunner, CoreMeasurement, RunOptions, RunResult

__all__ = [
    "TodClock",
    "TOD_STEP",
    "SYNC_INTERVAL",
    "CoreVariation",
    "draw_variation",
    "CurrentProgram",
    "SyncSpec",
    "idle_program",
    "Chip",
    "ChipConfig",
    "reference_chip",
    "ServiceElement",
    "ChipRunner",
    "CoreMeasurement",
    "RunOptions",
    "RunResult",
]
