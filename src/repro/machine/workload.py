"""Compiled electrical behavior of a per-core workload.

A :class:`CurrentProgram` is what a workload looks like to the power
delivery network: a low and a high current level, a stimulus frequency
alternating between them, how many consecutive ΔI events fire per
burst, and how the burst is synchronized to the TOD.  The stressmark
generator (:mod:`repro.core.stressmark`) compiles its programs down to
this form using the microarchitecture's power model; the run engine
(:mod:`repro.machine.runner`) consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from .tod import SYNC_INTERVAL, TOD_STEP

__all__ = ["SyncSpec", "CurrentProgram", "idle_program"]


@dataclass(frozen=True)
class SyncSpec:
    """TOD-based burst synchronization.

    Attributes
    ----------
    offset:
        Programmed misalignment after each sync point (multiple of the
        62.5 ns TOD step).
    events_per_sync:
        Consecutive ΔI events fired per burst before re-synchronizing
        (the paper's default between sync points is one thousand).
    interval:
        Sync-point spacing (4 ms on the platform).
    """

    offset: float = 0.0
    events_per_sync: int = 1000
    interval: float = SYNC_INTERVAL

    def __post_init__(self) -> None:
        if self.events_per_sync < 1:
            raise ConfigError("need at least one event per sync burst")
        if self.offset < 0:
            raise ConfigError("misalignment offsets are non-negative")
        steps = self.offset / TOD_STEP
        if abs(steps - round(steps)) > 1e-6:
            raise ConfigError(
                f"offset {self.offset!r}s is not a multiple of the TOD step"
            )

    def with_offset(self, offset: float) -> "SyncSpec":
        """Copy with a different programmed misalignment."""
        return replace(self, offset=offset)


@dataclass(frozen=True)
class CurrentProgram:
    """Electrical view of one core's workload.

    ``freq_hz`` of ``None`` means a steady current (idle or a constant
    workload): no ΔI events are generated.
    """

    name: str
    i_low: float
    i_high: float
    freq_hz: float | None = None
    duty: float = 0.5
    rise_time: float = 2e-9
    sync: SyncSpec | None = None

    def __post_init__(self) -> None:
        if self.i_low < 0 or self.i_high < self.i_low:
            raise ConfigError(
                f"{self.name}: need 0 <= i_low <= i_high "
                f"(got {self.i_low}, {self.i_high})"
            )
        if self.freq_hz is not None and self.freq_hz <= 0:
            raise ConfigError(f"{self.name}: stimulus frequency must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ConfigError(f"{self.name}: duty must be in (0, 1)")
        if self.rise_time <= 0:
            raise ConfigError(f"{self.name}: rise time must be positive")

    @property
    def delta_i(self) -> float:
        """ΔI of one event (A)."""
        return self.i_high - self.i_low

    @property
    def is_steady(self) -> bool:
        """True when the program generates no ΔI events."""
        return self.freq_hz is None or self.delta_i == 0.0

    @property
    def is_phase_randomized(self) -> bool:
        """True when the run engine draws a random burst phase for this
        program: it generates ΔI events but is not (effectively)
        TOD-synchronized.  A sync spec whose burst period exceeds the
        sync interval cannot actually align and counts as unsynced,
        mirroring the runner's segment construction."""
        if self.is_steady:
            return False
        if self.sync is None:
            return True
        return (1.0 / self.freq_hz) > self.sync.interval

    @property
    def average_current(self) -> float:
        """Time-averaged current over a burst (A)."""
        if self.is_steady:
            return self.i_low
        return self.i_low + self.duty * self.delta_i

    def with_sync(self, sync: SyncSpec | None) -> "CurrentProgram":
        """Copy with a different synchronization specification."""
        return replace(self, sync=sync)


def idle_program(idle_current: float) -> CurrentProgram:
    """The 'nothing' workload of the paper's ΔI study: a core sitting
    at its static current."""
    return CurrentProgram(name="idle", i_low=idle_current, i_high=idle_current)
