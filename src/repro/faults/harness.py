"""Applying a :class:`~repro.faults.plan.FaultPlan` to real execution.

:class:`FaultyExecutor` wraps any engine executor (serial or process)
and injects the plan's faults into every mapped call:

* **crash** — inside a pool worker the process genuinely dies
  (``os._exit``), producing the ``BrokenProcessPool`` the executor's
  degradation path must absorb; in the main process (serial backend, or
  the parent's serial fallback) it raises :class:`InjectedCrash`
  instead, because killing the host would end the campaign rather than
  one worker.
* **hang** — the run stalls for ``hang_seconds`` before proceeding,
  exercising the per-run wall-clock watchdog.
* **exception** — the run raises :class:`InjectedFault`.

Transient faults (the default) fire at most once per process per run
key, the model of a flaky worker that a single retry fixes; permanent
faults fire on every attempt and must surface as structured failures.
Fault decisions are keyed by run content (see
:meth:`FaultPlan.decide <repro.faults.plan.FaultPlan.decide>`), so an
injected campaign fails the *same* runs regardless of backend or
execution order.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Sequence

from ..engine.fingerprint import canonical
from ..engine.resilience import GuardedOutcome, RetryPolicy
from ..errors import ReproError
from .plan import FaultPlan

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    "FaultyExecutor",
    "fault_key",
    "corrupt_cache_entries",
    "reset_fault_memo",
]


class InjectedFault(ReproError):
    """An artificial run failure produced by a :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """Stand-in for a dead worker when the run executes in the main
    process (where a real ``os._exit`` would kill the campaign)."""


class InjectedHang(InjectedFault):
    """Marker type for hang injection (not raised; hangs manifest as
    stalls and surface as :class:`~repro.errors.RunTimeoutError`)."""


#: Exit status of workers killed by crash injection (visible in the
#: pool's BrokenProcessPool message — greppable in CI logs).
CRASH_EXIT_STATUS = 13

#: Per-process memo of (plan seed, run key) transient faults already
#: delivered, so a retried run succeeds on its next attempt.
_FIRED: set[tuple[int, str]] = set()

#: Per-process successful-call counters for ``abort_after`` plans.
_CALLS: dict[int, int] = {}


def reset_fault_memo() -> None:
    """Forget fired faults and call counts (test isolation)."""
    _FIRED.clear()
    _CALLS.clear()


def fault_key(item: object) -> str:
    """The stable per-run key a fault decision hangs off.

    Engine work items arrive as ``((mapping, tag))`` tuples whose
    canonical form is process-stable; anything else falls back to
    :func:`~repro.engine.fingerprint.canonical` too (callers with
    richer items can pre-compute keys and pass tuples whose first
    element is the content fingerprint).
    """
    if isinstance(item, tuple) and item and isinstance(item[0], str):
        return item[0]
    return canonical(item)


class _FaultyFn:
    """Picklable wrapper that injects plan faults around one callable.

    The pid captured at construction distinguishes "running in the
    main process" (serial backend, parent fallback) from "running in a
    forked pool worker" — only the latter may genuinely die.
    """

    def __init__(
        self,
        plan: FaultPlan,
        fn: Callable,
        key_fn: Callable[[object], str] = fault_key,
    ):
        self.plan = plan
        self.fn = fn
        self.key_fn = key_fn
        self.main_pid = os.getpid()

    def _should_fire(self, key: str) -> bool:
        memo_key = (self.plan.seed, key)
        if self.plan.transient and memo_key in _FIRED:
            return False
        _FIRED.add(memo_key)
        return True

    def __call__(self, item: object):
        key = self.key_fn(item)
        kind = self.plan.decide(key)
        if kind is not None and self._should_fire(key):
            if kind == "crash":
                if os.getpid() != self.main_pid:
                    os._exit(CRASH_EXIT_STATUS)
                raise InjectedCrash(f"injected worker crash for run {key[:12]}")
            if kind == "hang":
                time.sleep(self.plan.hang_seconds)
            elif kind == "exception":
                raise InjectedFault(f"injected fault for run {key[:12]}")
        value = self.fn(item)
        if self.plan.abort_after is not None:
            count = _CALLS.get(self.plan.seed, 0) + 1
            _CALLS[self.plan.seed] = count
            if count >= self.plan.abort_after:
                raise KeyboardInterrupt(
                    f"injected host interruption after {count} runs"
                )
        return value


class FaultyExecutor:
    """An engine executor with a :class:`FaultPlan` bolted on.

    Drop-in for :class:`~repro.engine.executor.SerialExecutor` /
    :class:`~repro.engine.executor.ProcessExecutor`: ``map`` and
    ``map_guarded`` delegate to the wrapped backend with every call
    routed through the plan.  The engine's resilience machinery is
    expected to absorb whatever the plan throws — that is the point.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        key_fn: Callable[[object], str] = fault_key,
    ):
        self.inner = inner
        self.plan = plan
        self.key_fn = key_fn

    @property
    def name(self) -> str:
        return f"faulty+{self.inner.name}"

    @property
    def jobs(self) -> int:
        return self.inner.jobs

    def map(self, fn: Callable, items: Sequence) -> list:
        return self.inner.map(_FaultyFn(self.plan, fn, self.key_fn), items)

    def map_guarded(
        self,
        fn: Callable,
        items: Sequence,
        retry: RetryPolicy | None = None,
        **kwargs,
    ) -> list[GuardedOutcome]:
        return self.inner.map_guarded(
            _FaultyFn(self.plan, fn, self.key_fn), items, retry, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultyExecutor({self.inner!r}, {self.plan.describe()})"


def corrupt_cache_entries(
    cache_dir: str | Path, plan: FaultPlan, count: int | None = None
) -> list[Path]:
    """Tear *count* (default ``plan.corrupt_entries``) disk-cache
    payloads, the way a killed process without atomic writes would.

    Victims are chosen deterministically — entries are ranked by the
    plan's per-key draw — and each victim is truncated to half its
    size, producing the truncated-pickle corruption the cache's
    quarantine path must turn into a recompute.  Returns the torn
    paths.
    """
    count = plan.corrupt_entries if count is None else count
    cache_dir = Path(cache_dir)
    entries = sorted(
        path
        for path in cache_dir.rglob("*.pkl")
        if "quarantine" not in path.parts
    )
    entries.sort(key=lambda path: plan.draw(path.stem))
    victims = entries[:count]
    for path in victims:
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    return victims
