"""``repro.faults`` — deterministic fault injection for the engine.

The paper's measurement methodology treats failure as a first-class
outcome (the Vmin protocol undervolts *until* the R-Unit reports the
first error and the system reboots), and near-margin stress campaigns
expect worker crashes as the normal case.  This package is the test
substrate that lets the execution layer prove it survives all of that:

* :class:`FaultPlan` — a seeded, content-keyed schedule of injected
  faults (worker crashes, hangs, exceptions, corrupted disk-cache
  payloads, host interruption).  Decisions depend only on
  ``(seed, run key)``, never on execution order, so an injected
  campaign is exactly reproducible across backends and processes.
* :class:`FaultyExecutor` — wraps any engine executor and applies the
  plan to every mapped call.
* :func:`corrupt_cache_entries` — tears disk-cache payloads the way an
  interrupted process without atomic writes would have.

Set ``$REPRO_FAULTS`` (e.g. ``crash=0.2,exception=0.1,seed=7``) to run
any session-driven workload — including the whole engine test suite,
as CI does — under injection.
"""

from .harness import (
    FaultyExecutor,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    corrupt_cache_entries,
    reset_fault_memo,
)
from .plan import HOST_KINDS, FaultPlan

__all__ = [
    "FaultPlan",
    "HOST_KINDS",
    "FaultyExecutor",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    "corrupt_cache_entries",
    "reset_fault_memo",
]
