"""Seeded fault schedules.

A :class:`FaultPlan` decides, for each run, whether to inject a fault
and which kind — by hashing ``(plan seed, run key)`` into a uniform
draw and partitioning the unit interval by the configured rates.  The
decision is a pure function of the run's content key, so it does not
depend on execution order, backend, chunking, or which worker process
picks the run up: the *same* runs fail under serial and process
execution, which is what makes the determinism acceptance test
(fault-injected sweep ≡ fault-free sweep) meaningful.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, fields

from ..errors import ConfigError

__all__ = ["FaultPlan", "HOST_KINDS"]

#: Run-level injection kinds, in threshold order (they partition one
#: uniform draw, so their rates must sum to <= 1).
KINDS = ("crash", "hang", "exception")

#: Host-level injection kinds (fleet chaos).  Each draws independently
#: per ``(kind, key)`` — a worker can be told to die *and* to corrupt a
#: lease in one campaign.
HOST_KINDS = ("worker_kill", "lease_corrupt", "heartbeat_stall")


@dataclass(frozen=True)
class FaultPlan:
    """What to break, how often, and with which seed.

    Attributes
    ----------
    seed:
        Decorrelates plans: two plans with different seeds fail
        different runs.
    crash_rate:
        Fraction of runs whose worker process dies mid-run (simulated
        with ``os._exit`` inside pool workers — a genuinely broken
        pool — and an :class:`~repro.faults.InjectedCrash` exception
        when the run executes in the main process).
    hang_rate:
        Fraction of runs that stall for :attr:`hang_seconds` before
        proceeding (exercises the per-run timeout watchdog).
    exception_rate:
        Fraction of runs that raise :class:`~repro.faults.InjectedFault`.
    corrupt_entries:
        Number of disk-cache payloads
        :func:`~repro.faults.corrupt_cache_entries` should tear.
    hang_seconds:
        Stall duration for hang faults.
    transient:
        When true (default), each fault fires at most once per process
        per run key — the model of a flaky worker, which retry must
        absorb.  When false, the fault fires on every attempt and the
        run must surface as a structured failure.
    abort_after:
        Simulated host interruption: raise ``KeyboardInterrupt`` after
        this many successful injected-executor calls in the current
        process (``None`` disables).  Used to test checkpoint/resume.
    worker_kill_rate:
        Host-level (fleet chaos): fraction of ``(worker, claimed run)``
        pairs for which the whole fleet worker process dies right after
        committing its claim — the lease expires and a survivor must
        steal the run.
    lease_corrupt_rate:
        Host-level: fraction of ``(worker, claimed run)`` pairs whose
        claim entry the worker scribbles garbage over after claiming —
        the manifest must treat the malformed lease as expired rather
        than wedging the run.
    heartbeat_stall_rate:
        Host-level: fraction of heartbeat cycles a worker silently
        skips (a wedged-but-alive worker); long stalls let the lease
        expire and the run be stolen out from under a live process.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    corrupt_entries: int = 0
    hang_seconds: float = 30.0
    transient: bool = True
    abort_after: int | None = None
    worker_kill_rate: float = 0.0
    lease_corrupt_rate: float = 0.0
    heartbeat_stall_rate: float = 0.0

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.hang_rate, self.exception_rate)
        host_rates = (
            self.worker_kill_rate,
            self.lease_corrupt_rate,
            self.heartbeat_stall_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates + host_rates):
            raise ConfigError("fault rates must be within [0, 1]")
        if sum(rates) > 1.0:
            raise ConfigError(
                f"fault rates must sum to <= 1 (got {sum(rates):g})"
            )
        if self.corrupt_entries < 0:
            raise ConfigError("corrupt_entries must be >= 0")
        if self.hang_seconds <= 0:
            raise ConfigError("hang_seconds must be > 0")
        if self.abort_after is not None and self.abort_after < 1:
            raise ConfigError("abort_after must be >= 1")

    # -- decisions ------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when the plan can actually inject something."""
        return (
            self.crash_rate > 0
            or self.hang_rate > 0
            or self.exception_rate > 0
            or self.corrupt_entries > 0
            or self.abort_after is not None
            or self.host_active
        )

    @property
    def host_active(self) -> bool:
        """True when the plan injects host-level (fleet) faults."""
        return (
            self.worker_kill_rate > 0
            or self.lease_corrupt_rate > 0
            or self.heartbeat_stall_rate > 0
        )

    def draw(self, key: str) -> float:
        """Uniform [0, 1) draw for *key*: a pure, process-stable
        function of ``(seed, key)`` (hashlib, never ``hash()``)."""
        digest = hashlib.sha256(f"{self.seed}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide(self, key: str) -> str | None:
        """The fault kind injected for run *key*, or ``None``."""
        draw = self.draw(key)
        threshold = 0.0
        for kind, rate in zip(
            KINDS, (self.crash_rate, self.hang_rate, self.exception_rate)
        ):
            threshold += rate
            if draw < threshold:
                return kind
        return None

    def decide_host(self, kind: str, key: str) -> bool:
        """Whether host-level fault *kind* fires for *key* (e.g. a
        ``worker:point`` pair or a ``worker:cycle`` heartbeat tick).
        Each kind draws independently on a kind-salted key, so one key
        can trigger several host faults — unlike run-level kinds,
        which partition a single draw."""
        if kind not in HOST_KINDS:
            raise ConfigError(
                f"unknown host fault kind {kind!r}; expected one of "
                f"{HOST_KINDS}"
            )
        rate = getattr(self, f"{kind}_rate")
        return rate > 0 and self.draw(f"{kind}|{key}") < rate

    # -- construction ---------------------------------------------------
    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Plan from ``$REPRO_FAULTS``, or ``None`` when unset/blank.

        Spec format: comma-separated ``key=value`` pairs, e.g.
        ``crash=0.2,exception=0.1,hang=0.05,hang_seconds=0.2,seed=7``.
        ``crash``/``hang``/``exception`` abbreviate the ``*_rate``
        fields, ``corrupt`` abbreviates ``corrupt_entries``, and a bare
        ``permanent`` flag sets ``transient=False``.
        """
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``$REPRO_FAULTS`` mini-language (see
        :meth:`from_env`)."""
        aliases = {
            "crash": "crash_rate",
            "hang": "hang_rate",
            "exception": "exception_rate",
            "corrupt": "corrupt_entries",
            "kill": "worker_kill_rate",
            "lease_corrupt": "lease_corrupt_rate",
            "stall": "heartbeat_stall_rate",
        }
        field_types = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {}
        for raw in spec.split(","):
            raw = raw.strip()
            if not raw:
                continue
            if raw == "permanent":
                kwargs["transient"] = False
                continue
            name, _, value = raw.partition("=")
            name = aliases.get(name.strip(), name.strip())
            if name not in field_types or not value.strip():
                raise ConfigError(
                    f"bad REPRO_FAULTS entry {raw!r}; expected "
                    "key=value with keys "
                    f"{sorted(set(aliases) | set(field_types))}"
                )
            try:
                if name in ("seed", "corrupt_entries", "abort_after"):
                    kwargs[name] = int(value)
                elif name == "transient":
                    kwargs[name] = value.strip().lower() in ("1", "true", "yes")
                else:
                    kwargs[name] = float(value)
            except ValueError:
                raise ConfigError(
                    f"bad REPRO_FAULTS value in {raw!r}"
                )
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for kind, rate in zip(
            KINDS, (self.crash_rate, self.hang_rate, self.exception_rate)
        ):
            if rate:
                parts.append(f"{kind}={rate:g}")
        if self.corrupt_entries:
            parts.append(f"corrupt={self.corrupt_entries}")
        for kind, alias in zip(HOST_KINDS, ("kill", "lease_corrupt", "stall")):
            rate = getattr(self, f"{kind}_rate")
            if rate:
                parts.append(f"{alias}={rate:g}")
        if self.abort_after is not None:
            parts.append(f"abort_after={self.abort_after}")
        if not self.transient:
            parts.append("permanent")
        return "FaultPlan(" + ", ".join(parts) + ")"
