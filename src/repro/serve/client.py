"""A small synchronous client for the simulation service.

Used by ``repro-noise query``, the CI smoke job and the TCP tests.
One client wraps one persistent connection (JSON-lines, many requests
per socket); :meth:`ServeClient.simulate` optionally retries ``busy``
replies after the server's own ``retry_after_s`` hint, which is how a
polite batch caller rides out a backpressure spike without hammering
the admission queue.
"""

from __future__ import annotations

import base64
import socket
import time

from ..errors import ProtocolError
from ..machine.runner import RunOptions
from ..machine.workload import CurrentProgram
from .protocol import encode_program, read_message, write_message

__all__ = ["ServeClient"]


class ServeClient:
    """One persistent connection to a :class:`NoiseServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4650,
        timeout: float | None = 120.0,
    ):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        for stream in (self._rfile, self._wfile):
            try:
                stream.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    # -- raw request -----------------------------------------------------
    def request(self, payload: dict) -> dict:
        """One request/reply round trip on this connection."""
        write_message(self._wfile, payload)
        reply = read_message(self._rfile)
        if reply is None:
            raise ProtocolError("server closed the connection mid-request")
        return reply

    # -- verbs -----------------------------------------------------------
    def simulate(
        self,
        mapping,
        options: RunOptions | dict | None = None,
        tag: object = None,
        *,
        chip: str | None = None,
        retry_busy: int = 0,
    ) -> dict:
        """Submit one simulation request.

        ``mapping`` is a sequence of :class:`CurrentProgram` / ``None``
        (or already-encoded program dicts).  ``chip`` selects a hosted
        chip identity on a multi-chip service (spec name, family label
        or fingerprint digest); omitted, the request goes to the
        server's default chip.  ``retry_busy`` re-submits up to that
        many times after a busy reply, sleeping the server's
        ``retry_after_s`` hint between attempts.
        """
        payload: dict = {
            "op": "simulate",
            "mapping": [
                encode_program(entry)
                if isinstance(entry, CurrentProgram) or entry is None
                else entry
                for entry in mapping
            ],
        }
        if chip is not None:
            payload["chip"] = chip
        if options is not None:
            payload["options"] = (
                _encode_options(options)
                if isinstance(options, RunOptions)
                else dict(options)
            )
        if tag is not None:
            payload["tag"] = tag
        attempts = 0
        while True:
            reply = self.request(payload)
            if reply.get("status") != "busy" or attempts >= retry_busy:
                return reply
            attempts += 1
            time.sleep(float(reply.get("retry_after_s") or 0.1))

    def fetch(self, fingerprint: str) -> bytes | None:
        """The raw pickled result payload for an engine cache key, or
        ``None`` on a miss — the fleet-worker verb: a worker probes the
        service's disk tier before executing a claimed run, so a fleet
        and the always-on service share one answer space."""
        reply = self.request({"op": "fetch", "fingerprint": fingerprint})
        if not reply.get("ok"):
            raise ProtocolError(
                f"fetch failed: {reply.get('error', 'unknown error')}"
            )
        payload = reply.get("payload")
        if payload is None:
            return None
        return base64.b64decode(payload)

    # -- stateful control sessions --------------------------------------
    def session_open(
        self,
        mapping,
        controller: dict,
        options: RunOptions | dict | None = None,
        *,
        windows_per_segment: int = 8,
        tag: object = None,
        chip: str | None = None,
        runit: bool = True,
    ) -> dict:
        """Open a stateful closed-loop session on the server.

        ``controller`` is a :func:`~repro.control.controllers.
        controller_from_spec` description (``{"kind": "integral",
        "gain": 0.1, ...}``).  The reply carries the ``session`` id for
        :meth:`session_step` / :meth:`session_close`, the window count
        and the resolved solve backend.
        """
        payload: dict = {
            "op": "session.open",
            "mapping": [
                encode_program(entry)
                if isinstance(entry, CurrentProgram) or entry is None
                else entry
                for entry in mapping
            ],
            "controller": dict(controller),
            "windows_per_segment": windows_per_segment,
            "runit": runit,
        }
        if options is not None:
            payload["options"] = (
                _encode_options(options)
                if isinstance(options, RunOptions)
                else dict(options)
            )
        if tag is not None:
            payload["tag"] = tag
        if chip is not None:
            payload["chip"] = chip
        return self.request(payload)

    def session_step(self, session: str, steps: int | str = 1) -> dict:
        """Advance an open session by *steps* windows (``"all"`` runs
        it to completion); the reply carries the per-window
        observations and, once done, the loop summary."""
        return self.request(
            {"op": "session.step", "session": session, "steps": steps}
        )

    def session_close(self, session: str) -> dict:
        """Close an open session; the reply carries its final loop
        summary and step accounting."""
        return self.request({"op": "session.close", "session": session})

    def health(self) -> dict:
        return self.request({"op": "health"})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the service's telemetry
        (what the optional plain-HTTP scrape endpoint serves)."""
        reply = self.request({"op": "metrics_text"})
        if not reply.get("ok"):
            raise ProtocolError(
                f"metrics_text failed: {reply.get('error', 'unknown error')}"
            )
        return reply.get("text", "")

    def shutdown(self) -> dict:
        """Ask the server to stop (it replies, then shuts down)."""
        return self.request({"op": "shutdown"})


def _encode_options(options: RunOptions) -> dict:
    """The servable subset of a :class:`RunOptions` as a JSON object."""
    return {
        "segments": options.segments,
        "events_cap": options.events_cap,
        "tail": options.tail,
        "isolated_edge_spacing": options.isolated_edge_spacing,
        "base_samples": options.base_samples,
        "seed": options.seed,
        "include_ssn": options.include_ssn,
        "nest_currents": dict(options.nest_currents),
        "vrm_response": options.vrm_response,
    }
