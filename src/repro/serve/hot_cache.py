"""The hot tier: a thread-safe LRU over *encoded* reply payloads.

The engine's :class:`~repro.engine.cache.ResultCache` stores pickled
:class:`RunResult` objects and is deliberately single-threaded (it is
only ever touched from the service's executor thread).  The hot tier
sits in front of it, inside the request handlers: it maps a run
fingerprint straight to the JSON-ready ``result`` dict of a previous
reply, so a repeat query costs one lock + one dict lookup — no engine,
no queue, no pickle, no re-encode.  That is the path the < 50 ms
hot-tier latency target rides on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["HotCache"]


class HotCache:
    """Bounded thread-safe LRU of fingerprint → encoded reply payload."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        """The cached payload for *key* (refreshing its recency), or
        ``None``."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """Occupancy + hit/miss/eviction counters (the ``hot`` block of
        a ``health`` reply)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HotCache({len(self)}/{self.max_entries})"
