"""The always-on simulation service (``repro-noise serve``).

A long-running process that keeps one chip and a warm
:class:`~repro.engine.session.SimulationSession` pool resident and
answers simulation requests over a threaded TCP/JSON-lines endpoint,
through three tiers: an in-memory hot LRU of encoded replies, the
engine's content-addressed :class:`~repro.engine.cache.ResultCache`,
and actual execution — with single-flight coalescing of identical
in-flight requests and bounded-queue backpressure in front of the
engine.  See :mod:`repro.serve.server` for the tier diagram and the
threading contract.

One process can host several chip identities at once
(:mod:`repro.serve.roster`): extra :class:`~repro.chips.ChipSpec`
members fingerprint immediately, build lazily on their first
execution-tier miss, and the least-recently-used cold chip is evicted
when the resident budget fills.  Requests select a chip with their
``chip`` field; requests without it hit the default chip exactly as in
a single-chip service.
"""

from .client import ServeClient
from .coalesce import Flight, SingleFlight
from .hot_cache import HotCache
from .protocol import (
    CONTROL_OPS,
    OPS,
    TIERS,
    SimRequest,
    decode_program,
    decode_request,
    encode_observation,
    encode_program,
    encode_result,
    read_message,
    write_message,
)
from .roster import ChipEntry, ChipRoster
from .scrape import MetricsHTTPServer, start_metrics_http
from .server import DEFAULT_PORT, NoiseServer, SimulationService, start_server
from .sessions import ControlSession, ControlSessionRegistry

__all__ = [
    "CONTROL_OPS",
    "DEFAULT_PORT",
    "ChipEntry",
    "ChipRoster",
    "ControlSession",
    "ControlSessionRegistry",
    "Flight",
    "HotCache",
    "MetricsHTTPServer",
    "NoiseServer",
    "OPS",
    "ServeClient",
    "SimRequest",
    "SimulationService",
    "SingleFlight",
    "TIERS",
    "start_metrics_http",
    "decode_program",
    "decode_request",
    "encode_observation",
    "encode_program",
    "encode_result",
    "read_message",
    "start_server",
    "write_message",
]
