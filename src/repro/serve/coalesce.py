"""Single-flight request coalescing.

When N clients ask for the same (cold) fingerprint concurrently, only
the first — the *leader* — submits work to the engine; the others
attach to the leader's in-flight :class:`Flight` and wake up when it
resolves.  The engine therefore executes each unique run at most once
per flight no matter how many clients race for it, which is the
serving-side counterpart of the planner's pre-execution dedup.

A flight resolves exactly once, with either a reply payload or an
error (including the *busy* rejection: when the leader cannot even be
admitted to the queue, every rider of its flight gets the same busy
reply — they were betting on work that never started).
"""

from __future__ import annotations

import threading

__all__ = ["Flight", "SingleFlight"]


class Flight:
    """One in-flight computation: an event plus its eventual outcome."""

    __slots__ = ("key", "_done", "payload", "tier", "error", "riders")

    def __init__(self, key: str):
        self.key = key
        self._done = threading.Event()
        self.payload: dict | None = None
        self.tier: str | None = None
        self.error: dict | None = None
        self.riders = 0  # followers attached (leader excluded)

    def resolve(self, payload: dict, tier: str) -> None:
        """Publish a successful outcome and wake every rider."""
        self.payload = payload
        self.tier = tier
        self._done.set()

    def reject(self, error: dict) -> None:
        """Publish a failure reply (error/busy) and wake every rider."""
        self.error = error
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the flight resolves; False on timeout."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class SingleFlight:
    """The registry of in-flight fingerprints."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, Flight] = {}

    def join(self, key: str) -> tuple[bool, Flight]:
        """Attach to the flight for *key*, creating it if absent.

        Returns ``(leader, flight)``: the leader must eventually
        :meth:`finish` the flight (resolve or reject), followers just
        wait on it.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.riders += 1
                return False, flight
            flight = self._flights[key] = Flight(key)
            return True, flight

    def finish(self, flight: Flight) -> None:
        """Retire a resolved flight so the *next* identical request
        starts fresh (it will hit the hot tier instead)."""
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]

    def in_flight(self) -> int:
        """Number of distinct fingerprints currently flying."""
        with self._lock:
            return len(self._flights)

    def riders(self, key: str) -> int:
        """Followers currently attached to *key* (0 when not flying)."""
        with self._lock:
            flight = self._flights.get(key)
            return flight.riders if flight is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SingleFlight({self.in_flight()} in flight)"
