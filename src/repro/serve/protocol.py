"""Wire protocol of the simulation service: JSON-lines over TCP.

One request per line, one JSON object per reply.  The protocol is the
*only* place requests are parsed: both the TCP handler and the
in-process test harness decode through :func:`decode_request`, so a
request accepted over the wire and a request handed to the service
directly are the same object.

Request shape (``op`` defaults to ``"simulate"``)::

    {"op": "simulate",
     "mapping": [<program>|null, ...],     # per-core; short lists pad idle
     "options": {"segments": 2, ...},      # RunOptions overrides
     "tag": "client-tag"}                  # optional; scalar

    {"op": "health"}      → liveness + queue/tier occupancy
    {"op": "metrics"}     → telemetry snapshot (serve.* + engine.*)
    {"op": "shutdown"}    → stop the server after replying

Stateful control sessions (the closed-loop engine behind the wire)::

    {"op": "session.open",
     "mapping": [...], "options": {...},   # as for simulate
     "controller": {"kind": "integral", "gain": 0.1, ...},
     "windows_per_segment": 8}             → {"session": id, "windows": N}
    {"op": "session.step", "session": id, "steps": 3 | "all"}
    {"op": "session.close", "session": id}

``session.step`` replies carry the per-window observations
(:func:`encode_observation`) and, once the loop is complete, the same
JSON summary :class:`~repro.control.loop.ClosedLoopRun` produces
in-process — the serve path and the CLI path are comparable object
for object.

A ``<program>`` object mirrors :class:`~repro.machine.workload.
CurrentProgram`: ``{"name", "i_low", "i_high", "freq_hz", "duty",
"rise_time", "sync": {"offset", "events_per_sync", "interval"}}`` with
everything except the currents optional.

Replies carry ``ok`` plus, for simulate, the serving ``tier`` (``hot``
/ ``cache`` / ``executed`` / ``coalesced``), the run ``fingerprint``
(the same content address the engine cache uses — computed through
:class:`repro.plan.spec.PlannedRun`, so the service and the batch
drivers provably share one key space) and the encoded ``result``.
Overload is a ``{"ok": false, "status": "busy", "retry_after_s": ...}``
reply, the 429 of this protocol.

``collect_waveforms`` is rejected: waveforms are numpy arrays, and a
serving reply must stay JSON.
"""

from __future__ import annotations

import dataclasses
import json

from ..errors import ConfigError, ProtocolError
from ..machine.chip import N_CORES, Chip
from ..machine.runner import RunOptions, RunResult
from ..machine.workload import CurrentProgram, SyncSpec
from ..plan.spec import PlannedRun, chip_identity

__all__ = [
    "CONTROL_OPS",
    "OPS",
    "TIERS",
    "SimRequest",
    "decode_request",
    "decode_program",
    "encode_observation",
    "encode_program",
    "encode_result",
    "read_message",
    "write_message",
]

#: Request verbs the service answers.  ``fetch`` is the fleet-worker
#: verb: ``{"op": "fetch", "fingerprint": <engine cache key>}`` returns
#: the raw disk-tier payload (base64 pickle bytes) when the service has
#: it, so a fleet sharing a serve endpoint shares one answer space.
#: The stateful-session verb family: one open closed-loop stepping
#: session per id, stepped and closed by later requests on any
#: connection.  All three execute on the service's single executor
#: thread — the engine-ownership contract extends to control state.
CONTROL_OPS = ("session.open", "session.step", "session.close")

OPS = (
    "simulate", "fetch", "health", "metrics", "metrics_text", "shutdown",
) + CONTROL_OPS

#: Tiers a simulate reply can be served from.
TIERS = ("hot", "cache", "executed", "coalesced")

#: RunOptions fields a request may override.  ``collect_waveforms`` is
#: deliberately absent (non-JSON payload) and ``nest_currents`` is
#: allowed as a flat name→amps object.
_OPTION_FIELDS = frozenset({
    "segments", "events_cap", "tail", "isolated_edge_spacing",
    "base_samples", "seed", "include_ssn", "nest_currents",
    "vrm_response",
})

_SYNC_FIELDS = frozenset({"offset", "events_per_sync", "interval"})
_PROGRAM_FIELDS = frozenset({
    "name", "i_low", "i_high", "freq_hz", "duty", "rise_time", "sync",
})


@dataclasses.dataclass(frozen=True)
class SimRequest:
    """One decoded simulation request, ready for the engine."""

    mapping: tuple[CurrentProgram | None, ...]
    options: RunOptions
    tag: object

    def fingerprint(self, chip: Chip) -> str:
        """The content address this request resolves to on *chip* —
        byte-identical to :meth:`SimulationSession.fingerprint`, which
        is what lets the service answer from the engine's disk cache
        and lets batch campaigns pre-warm the service."""
        return self.fingerprint_for(chip_identity(chip.config, chip.chip_id))

    def fingerprint_for(self, identity: str) -> str:
        """The same content address, from a chip *identity* string
        (:func:`~repro.plan.spec.chip_identity`) — what lets the
        multi-chip service fingerprint a request against a chip it has
        not built yet (lazy build is only paid on a cold miss)."""
        planned = PlannedRun(
            mapping=self.mapping, tag=self.tag, options=self.options
        )
        return planned.fingerprint(identity)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def decode_program(payload: dict, core: int) -> CurrentProgram:
    """A :class:`CurrentProgram` from its JSON form."""
    _require(
        isinstance(payload, dict),
        f"core {core}: program must be an object or null "
        f"(got {type(payload).__name__})",
    )
    unknown = set(payload) - _PROGRAM_FIELDS
    _require(not unknown, f"core {core}: unknown program field(s) "
                          f"{sorted(unknown)}")
    for field in ("i_low", "i_high"):
        _require(
            isinstance(payload.get(field), (int, float)),
            f"core {core}: program needs numeric {field!r}",
        )
    sync = payload.get("sync")
    sync_spec = None
    if sync is not None:
        _require(
            isinstance(sync, dict),
            f"core {core}: sync must be an object or null",
        )
        unknown = set(sync) - _SYNC_FIELDS
        _require(not unknown, f"core {core}: unknown sync field(s) "
                              f"{sorted(unknown)}")
        try:
            sync_spec = SyncSpec(**sync)
        except (ConfigError, TypeError) as error:
            raise ProtocolError(f"core {core}: invalid sync: {error}")
    kwargs = {
        key: payload[key]
        for key in ("name", "freq_hz", "duty", "rise_time")
        if key in payload
    }
    kwargs.setdefault("name", f"serve-core{core}")
    try:
        return CurrentProgram(
            i_low=float(payload["i_low"]),
            i_high=float(payload["i_high"]),
            sync=sync_spec,
            **kwargs,
        )
    except (ConfigError, TypeError, ValueError) as error:
        raise ProtocolError(f"core {core}: invalid program: {error}")


def encode_program(program: CurrentProgram | None) -> dict | None:
    """The JSON form of one per-core program (client-side helper;
    round-trips through :func:`decode_program`)."""
    if program is None:
        return None
    payload: dict = {
        "name": program.name,
        "i_low": program.i_low,
        "i_high": program.i_high,
        "freq_hz": program.freq_hz,
        "duty": program.duty,
        "rise_time": program.rise_time,
    }
    if program.sync is not None:
        payload["sync"] = {
            "offset": program.sync.offset,
            "events_per_sync": program.sync.events_per_sync,
            "interval": program.sync.interval,
        }
    return payload


def _decode_options(payload: object, defaults: RunOptions) -> RunOptions:
    """Request options: *defaults* with the request's overrides applied
    (the service's context options, so a bare request simulates under
    the same fidelity the batch CLI would use)."""
    if payload is None:
        return dataclasses.replace(defaults)
    _require(isinstance(payload, dict), "options must be an object")
    if "collect_waveforms" in payload:
        raise ProtocolError(
            "collect_waveforms is not servable (waveforms are not JSON); "
            "use the batch CLI for fig8-style runs"
        )
    unknown = set(payload) - _OPTION_FIELDS
    _require(not unknown, f"unknown option field(s) {sorted(unknown)}")
    try:
        return dataclasses.replace(defaults, **payload)
    except (ConfigError, TypeError) as error:
        raise ProtocolError(f"invalid options: {error}")


def decode_request(
    payload: dict,
    defaults: RunOptions | None = None,
    n_cores: int = N_CORES,
) -> SimRequest:
    """Validate and compile one ``simulate`` request.

    *n_cores* is the core count of the chip the request targets (the
    reference chip's six when unspecified); short mappings pad to it.
    """
    _require(isinstance(payload, dict), "request must be a JSON object")
    mapping_payload = payload.get("mapping")
    _require(
        isinstance(mapping_payload, (list, tuple)),
        "request needs a 'mapping' array (one entry per core)",
    )
    _require(
        0 < len(mapping_payload) <= n_cores,
        f"mapping must name 1..{n_cores} cores "
        f"(got {len(mapping_payload)})",
    )
    mapping: list[CurrentProgram | None] = []
    for core, entry in enumerate(mapping_payload):
        mapping.append(
            None if entry is None else decode_program(entry, core)
        )
    # Short mappings pad with idle cores — the common "load one core"
    # query should not have to spell out five nulls.
    mapping.extend([None] * (n_cores - len(mapping)))
    options = _decode_options(payload.get("options"), defaults or RunOptions())
    tag = payload.get("tag", "serve")
    _require(
        tag is None or isinstance(tag, (str, int, float)),
        f"tag must be a scalar (got {type(tag).__name__})",
    )
    return SimRequest(
        mapping=tuple(mapping), options=options, tag=tag or "serve"
    )


def encode_result(result: RunResult) -> dict:
    """The JSON body of a simulate reply (stable across tiers: an
    encoded hot-tier replay is byte-identical to the encoding of the
    freshly computed result — the tier-equality acceptance test)."""
    return {
        "max_p2p": result.max_p2p,
        "worst_vmin": result.worst_vmin,
        "measurements": [
            {
                "core": m.core,
                "p2p_pct": m.p2p_pct,
                "v_min": m.v_min,
                "v_max": m.v_max,
                "droop": m.droop,
                "coherent_delta_i": m.coherent_delta_i,
            }
            for m in result.measurements
        ],
    }


def encode_observation(observation) -> dict:
    """The JSON body of one stepped window (a
    :class:`~repro.engine.stepping.WindowObservation`) — everything a
    remote controller needs to close the loop client-side, and exactly
    the fields the in-process loop summaries are computed from."""
    return {
        "index": observation.index,
        "segment": observation.segment,
        "window": observation.window,
        "t_start": observation.t_start,
        "t_end": observation.t_end,
        "n_samples": observation.n_samples,
        "supply_bias": observation.supply_bias,
        "v_min": list(observation.v_min),
        "v_mean": list(observation.v_mean),
        "v_max": list(observation.v_max),
        "worst_vmin": observation.worst_vmin,
        "active_cores": list(observation.active_cores),
        "utilization": observation.utilization,
        "droop_events": observation.droop_events,
        "coherent": list(observation.coherent),
    }


# -- JSON-lines framing ---------------------------------------------------

def write_message(stream, payload: dict) -> None:
    """Write one JSON object as a single line and flush it."""
    stream.write((json.dumps(payload) + "\n").encode("utf-8"))
    stream.flush()


def read_message(stream) -> dict | None:
    """Read one JSON line; ``None`` on a closed stream.

    A syntactically broken line raises :class:`ProtocolError` — the
    server turns that into a ``bad-request`` reply instead of dropping
    the connection.
    """
    line = stream.readline()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except ValueError:
        raise ProtocolError("request is not valid JSON")
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    return payload
