"""The always-on simulation service: three tiers, one warm engine.

``repro-noise serve`` keeps a chip (modal decomposition + response
library) and a :class:`~repro.engine.session.SimulationSession` pool
warm in one long-running process, and answers simulation requests over
a threaded TCP/JSON-lines endpoint.  A request travels::

    handler thread                        executor thread
    --------------                        ---------------
    decode + fingerprint
    [1] hot tier (HotCache) ── hit ─▶ reply "hot" (lock + dict lookup)
    [2] single-flight join ── follower ─▶ wait, reply "coalesced"
    [3] admission queue ── full ─▶ reply "busy" (+retry_after_s)
            │ leader
            ▼
        bounded queue ────────────▶ [4] ResultCache (memory+disk)
                                        ── hit ─▶ reply "cache"
                                    [5] SimulationSession.run_many
                                        (batched misses, warm pool,
                                         retry/degradation semantics)
                                        ─▶ reply "executed"

Every tier transition is accounted in :mod:`repro.obs` (``serve.*``
counters, a request-latency histogram, ``serve.request`` events and
``serve.batch`` spans under ``--trace``), so the running service
answers its own ``metrics`` verb with the same telemetry shape the
batch CLI exports.

Threading contract: request handler threads touch only thread-safe
state (the hot tier, the single-flight registry, the admission queue,
lock-guarded counters).  The engine — sessions, the result cache, the
process pool — is owned by the single executor thread, which also
gives the service its graceful-degradation story for free: a worker
process dying mid-request is absorbed by the session's retry/degrade
path, and a run that still fails permanently becomes a structured
``error`` reply for exactly the requests riding on it, never a dead
server.
"""

from __future__ import annotations

import base64
import queue
import socketserver
import threading
import time

from typing import Sequence

from ..chips import ChipSpec
from ..control.controllers import controller_from_spec
from ..control.loop import ClosedLoopRun
from ..control.study import CONTROL_RUN_TAG
from ..engine.cache import ResultCache, global_cache
from ..engine.executor import Executor, make_executor
from ..engine.fingerprint import canonical, content_key
from ..engine.resilience import RetryPolicy, RunFailure
from ..engine.session import SimulationSession, resolve_backend_name
from ..engine.stepping import SteppingSession
from ..errors import ConfigError, ControlError, ProtocolError, SolverError
from ..machine.chip import Chip
from ..machine.runner import RunOptions
from ..measure.runit import RUnit, RUnitConfig
from ..obs import Telemetry, get_telemetry, prometheus_text
from ..obs.series import SERIES_CAPACITY, TelemetrySeries, series_state
from ..obs.slo import SloPolicy, default_serve_slos
from ..plan.spec import chip_identity
from .coalesce import Flight, SingleFlight
from .hot_cache import HotCache
from .protocol import (
    CONTROL_OPS,
    OPS,
    decode_request,
    encode_observation,
    encode_result,
    read_message,
    write_message,
)
from .roster import ChipRoster
from .sessions import ControlSessionRegistry

__all__ = ["SimulationService", "NoiseServer", "start_server"]

#: Default TCP port (none of the IANA well-knowns; "VN" on a phone pad).
DEFAULT_PORT = 4650

_UNSET = object()
_STOP = object()


class _WorkItem:
    """One admitted leader request, queued for the executor thread."""

    __slots__ = ("fingerprint", "request", "flight", "entry", "admitted_s")

    def __init__(self, fingerprint, request, flight, entry):
        self.fingerprint = fingerprint
        self.request = request
        self.flight = flight
        self.entry = entry
        self.admitted_s = time.perf_counter()


class _ControlWork:
    """One ``session.*`` request, queued for the executor thread.

    Control verbs never coalesce (each is a state transition of one
    named session, not an idempotent lookup), so the item carries its
    own event/reply pair instead of riding a flight.
    """

    __slots__ = ("payload", "event", "reply", "admitted_s")

    def __init__(self, payload: dict):
        self.payload = payload
        self.event = threading.Event()
        self.reply: dict | None = None
        self.admitted_s = time.perf_counter()

    def settle(self, reply: dict) -> None:
        self.reply = reply
        self.event.set()


class SimulationService:
    """Tiered request answering over one warm chip.

    Parameters
    ----------
    chip:
        The chip every request of this service simulates on (its
        identity is part of every fingerprint).
    default_options:
        Options applied when a request omits them (the serving
        equivalent of the batch CLI's context options).
    cache:
        Engine result cache (tier 2); the process-global cache when
        omitted, so ``--cache-dir`` wires the disk tier in exactly as
        for batch runs.
    executor / jobs:
        The warm fan-out backend shared by every session (tier 3).
    retry:
        Per-run fault-isolation policy (environment default when
        omitted).
    queue_limit:
        Bound of the admission queue.  A leader that cannot be
        admitted — and every follower riding its flight — gets a
        ``busy`` reply with a ``retry_after_s`` hint instead of
        unbounded queueing: load sheds at the edge, not in the engine.
    hot_entries:
        Bound of the hot tier.
    max_batch:
        How many queued requests the executor thread drains into one
        ``run_many`` call (distinct fingerprints in one batch fan out
        across the worker pool together).
    max_wait_s:
        Hard ceiling a handler waits on a flight before replying with
        an error (defends clients against a wedged engine).
    backend:
        Solve path of every warm session (``auto``/``reference``/
        ``batched``; environment default when omitted).  On any
        non-reference backend, :meth:`start` pre-compiles the warm
        chip's kernel, so even the service's first cold request skips
        the kernel-build cost.
    window_s:
        Period of the live metrics ticker: every ``window_s`` the
        service snapshots its telemetry into the windowed series
        (rates, rolling percentiles) and evaluates the SLO policy
        against the fresh window.  ``0`` disables the ticker (tests
        drive :meth:`tick_metrics` directly).
    slo:
        The :class:`~repro.obs.slo.SloPolicy` the ticker evaluates
        (:func:`~repro.obs.slo.default_serve_slos` when omitted).
    chips:
        Extra :class:`~repro.chips.ChipSpec` identities to host next to
        the default chip (e.g. a chip family behind one endpoint).  A
        request selects one with its ``chip`` field (spec name, label
        or fingerprint digest); requests without the field go to the
        default chip, byte-identically to a single-chip service.
        Hosted chips fingerprint immediately but build lazily — the
        heavy solver artifacts are only paid when a request misses
        into the execution tier.
    max_resident_chips:
        How many non-default chips may stay built at once; building
        one more evicts the least-recently-used cold chip (and its
        warm sessions — its hot tier survives).
    chip_hot_entries:
        Hot-tier bound of each extra hosted chip (the default chip
        keeps ``hot_entries``).
    max_sessions:
        How many stateful control sessions (``session.open``) may stay
        open at once.  Each pins a solved stimulus in memory, so this
        is the residency budget of the control plane the way
        ``max_resident_chips`` budgets the simulate plane.
    session_ttl_s:
        Idle lifetime of an open control session; sessions idle past
        it are pruned (accounted as ``serve.session.expired``) on the
        next control request.
    """

    def __init__(
        self,
        chip: Chip,
        default_options: RunOptions | None = None,
        *,
        cache: ResultCache | None = None,
        executor: Executor | str | None = None,
        jobs: int | None = None,
        retry: RetryPolicy | None = None,
        faults: object = _UNSET,
        queue_limit: int = 32,
        hot_entries: int = 256,
        max_batch: int = 8,
        max_wait_s: float = 600.0,
        telemetry: Telemetry | None = None,
        backend: str | None = None,
        window_s: float = 5.0,
        slo: SloPolicy | None = None,
        chips: Sequence[ChipSpec] = (),
        max_resident_chips: int = 2,
        chip_hot_entries: int = 64,
        max_sessions: int = 8,
        session_ttl_s: float = 900.0,
    ):
        if queue_limit < 1:
            raise ConfigError(f"queue_limit must be >= 1 (got {queue_limit})")
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1 (got {max_batch})")
        if window_s < 0:
            raise ConfigError(f"window_s must be >= 0 (got {window_s})")
        self.chip = chip
        # Digest of the canonical chip identity: what health replies,
        # events and banners show (the raw identity string is long).
        self.chip_fp = content_key(chip_identity(chip.config, chip.chip_id))
        self.default_options = default_options or RunOptions()
        self.cache = cache if cache is not None else global_cache()
        if isinstance(executor, (str, type(None))):
            executor = make_executor(executor, jobs)
        self.executor = executor
        self.retry = retry or RetryPolicy.from_env()
        self._faults = faults
        self.hot = HotCache(hot_entries)
        # Multi-chip roster: the default chip is entry 0 (pinned, its
        # hot tier *is* self.hot); extra specs host lazily.
        self.roster = ChipRoster(
            chip,
            self.hot,
            chips,
            max_resident=max_resident_chips,
            hot_entries=chip_hot_entries,
        )
        self.flights = SingleFlight()
        # Stateful control sessions (the ``session.*`` verb family).
        self.control = ControlSessionRegistry(
            max_sessions=max_sessions, ttl_s=session_ttl_s
        )
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.backend = resolve_backend_name(backend)
        self.telemetry = telemetry or get_telemetry()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        # Warm sessions, keyed (chip digest, canonical options).
        self._sessions: dict[tuple[str, str], SimulationSession] = {}
        self._metrics_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closing = False
        self._started_s = time.time()
        # Live metrics plane: windowed series + SLO policy, driven by
        # the ticker thread (or tick_metrics() directly in tests).
        self.window_s = float(window_s)
        self.series = TelemetrySeries(capacity=SERIES_CAPACITY)
        self.slo_policy = slo if slo is not None else default_serve_slos()
        self._slo_status: list = []
        self._ticker: threading.Thread | None = None
        self._ticker_stop = threading.Event()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SimulationService":
        """Start the executor thread (idempotent), pre-warming the
        chip's compiled kernel on any non-reference backend so the
        first cold request pays a solve, not a kernel build."""
        self._warm_kernel()
        if self._thread is None or not self._thread.is_alive():
            self._closing = False
            self._thread = threading.Thread(
                target=self._drain, name="repro-serve-exec", daemon=True
            )
            self._thread.start()
        if self.window_s > 0 and (
            self._ticker is None or not self._ticker.is_alive()
        ):
            self._ticker_stop.clear()
            self._ticker = threading.Thread(
                target=self._tick_loop, name="repro-serve-ticker", daemon=True
            )
            self._ticker.start()
        return self

    def _warm_kernel(self) -> None:
        if self.backend == "reference":
            return
        try:
            with self.telemetry.time("engine.kernel.compile_seconds"):
                self.chip.compiled_kernel
        except SolverError as error:
            # 'auto' sessions fall back to the reference path on their
            # own (and account for it); an explicit 'batched' service
            # must refuse to start rather than silently degrade.
            if self.backend == "batched":
                raise
            self.telemetry.emit(
                "kernel.fallback",
                chip=self.chip_fp,
                error=f"{type(error).__name__}: {error}",
            )

    def stop(self, timeout: float = 30.0) -> None:
        """Stop accepting work, drain the queue, join the executor."""
        self._ticker_stop.set()
        if self._ticker is not None:
            self._ticker.join(min(timeout, 2.0))
            self._ticker = None
        if self._thread is None:
            return
        self._closing = True
        self._queue.put(_STOP)
        self._thread.join(timeout)
        self._thread = None
        self.telemetry.emit("serve.stopped", uptime_s=self.uptime_s)

    @property
    def uptime_s(self) -> float:
        return time.time() - self._started_s

    # -- request entry point --------------------------------------------
    def handle(self, payload: dict) -> dict:
        """Answer one decoded JSON request (the TCP handler and the
        in-process tests both enter here)."""
        op = payload.get("op", "simulate")
        if op == "fetch":
            return self._fetch(payload)
        if op == "health":
            return self.health()
        if op == "metrics":
            return self.metrics()
        if op == "metrics_text":
            return self.metrics_text()
        if op == "shutdown":
            # The transport layer owns actually stopping the server;
            # an in-process caller just gets the acknowledgement.
            return {"ok": True, "status": "ok", "stopping": True}
        if op in CONTROL_OPS:
            return self._control(payload)
        if op != "simulate":
            self._count("serve.bad_requests")
            return {
                "ok": False,
                "status": "bad-request",
                "error": f"unknown op {op!r}; expected one of {list(OPS)}",
            }
        return self._simulate(payload)

    def _simulate(self, payload: dict) -> dict:
        start = time.perf_counter()
        self._count("serve.requests")
        try:
            entry = self.roster.resolve(payload.get("chip"))
            request = decode_request(
                payload, self.default_options, n_cores=entry.n_cores
            )
        except (ProtocolError, ConfigError) as error:
            self._count("serve.bad_requests")
            return {"ok": False, "status": "bad-request", "error": str(error)}
        # Fingerprint against the chip's *identity* — never its build —
        # so requests for a cold hosted chip stay cheap until one
        # actually misses into the execution tier.
        fingerprint = request.fingerprint_for(entry.identity)

        # Tier 1: hot replay, entirely inside the handler thread.
        hot = entry.hot.get(fingerprint)
        if hot is not None:
            return self._reply(fingerprint, hot, "hot", start)

        if self._closing:
            self._count("serve.busy")
            return self._busy_reply()

        # Tier 2/3 admission: coalesce onto one flight per fingerprint.
        leader, flight = self.flights.join(fingerprint)
        if leader:
            item = _WorkItem(fingerprint, request, flight, entry)
            try:
                self._queue.put_nowait(item)
            except queue.Full:
                self._count("serve.busy")
                flight.reject(self._busy_reply())
                self.flights.finish(flight)
        else:
            self._count("serve.coalesced")

        if not flight.wait(self.max_wait_s):
            self._count("serve.wait_timeouts")
            return {
                "ok": False,
                "status": "error",
                "error": f"timed out after {self.max_wait_s:g}s waiting "
                f"for execution",
                "fingerprint": fingerprint,
            }
        if flight.error is not None:
            return dict(flight.error)
        tier = flight.tier if leader else "coalesced"
        return self._reply(fingerprint, flight.payload, tier, start)

    def _fetch(self, payload: dict) -> dict:
        """Answer a fleet worker's cache probe: the raw disk-tier
        payload for a fingerprint, base64-encoded (pickle bytes are
        not JSON).  Runs entirely in the handler thread —
        :meth:`ResultCache.peek_bytes` is a pure disk read, so this
        never competes with the executor thread for the engine."""
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            self._count("serve.bad_requests")
            return {
                "ok": False,
                "status": "bad-request",
                "error": "fetch needs a 'fingerprint' string",
            }
        raw = self.cache.peek_bytes(fingerprint)
        if raw is None:
            self._count("serve.fetch_misses")
            return {
                "ok": True,
                "status": "miss",
                "fingerprint": fingerprint,
                "payload": None,
            }
        self._count("serve.fetch_hits")
        return {
            "ok": True,
            "status": "hit",
            "fingerprint": fingerprint,
            "payload": base64.b64encode(raw).decode("ascii"),
        }

    # -- stateful control sessions ---------------------------------------
    def _control(self, payload: dict) -> dict:
        """Handler-thread entry of the ``session.*`` verbs: admit onto
        the (shared, bounded) executor queue and wait — all session
        state, like all engine state, is touched only by the executor
        thread."""
        start = time.perf_counter()
        self._count("serve.requests")
        if self._closing:
            self._count("serve.busy")
            return self._busy_reply()
        work = _ControlWork(payload)
        try:
            self._queue.put_nowait(work)
        except queue.Full:
            self._count("serve.busy")
            return self._busy_reply()
        if not work.event.wait(self.max_wait_s):
            self._count("serve.wait_timeouts")
            return {
                "ok": False,
                "status": "error",
                "error": f"timed out after {self.max_wait_s:g}s waiting "
                f"for the control executor",
            }
        elapsed = time.perf_counter() - start
        with self._metrics_lock:
            self.telemetry.observe("serve.request.seconds", elapsed)
            self.telemetry.observe("serve.session.seconds", elapsed)
        return dict(work.reply or {})

    def _run_control(self, work: _ControlWork) -> None:
        """Executor-thread side of one control verb."""
        op = work.payload.get("op")
        try:
            with self.telemetry.span("serve.control", op=op):
                reply = self._control_dispatch(op, work.payload)
        except (ProtocolError, ConfigError, ControlError) as error:
            self._count("serve.bad_requests")
            reply = {
                "ok": False, "status": "bad-request", "error": str(error),
            }
        except BaseException as error:  # noqa: BLE001 - keep serving
            self._count("serve.control_errors")
            reply = {
                "ok": False,
                "status": "error",
                "error": f"{type(error).__name__}: {error}",
            }
        work.settle(reply)

    def _control_dispatch(self, op: str, payload: dict) -> dict:
        for expired in self.control.prune():
            self._count("serve.session.expired")
            self.telemetry.emit(
                "serve.session_expired",
                session=expired.session_id,
                steps=expired.steps_served,
            )
        if op == "session.open":
            return self._session_open(payload)
        if op == "session.step":
            return self._session_step(payload)
        return self._session_close(payload)

    def _session_open(self, payload: dict) -> dict:
        if self.control.full:
            self._count("serve.busy")
            reply = self._busy_reply()
            reply["error"] = (
                f"control session capacity reached "
                f"({self.control.max_sessions} open)"
            )
            return reply
        entry = self.roster.resolve(payload.get("chip"))
        request = decode_request(
            payload, self.default_options, n_cores=entry.n_cores
        )
        windows = payload.get("windows_per_segment", 8)
        if (
            isinstance(windows, bool)
            or not isinstance(windows, int)
            or windows < 1
        ):
            raise ProtocolError(
                "windows_per_segment must be a positive integer"
            )
        # Default the run tag to the control studies' tag, so a serve
        # session's baseline fingerprint matches the CLI/plan paths.
        tag = payload.get("tag") or CONTROL_RUN_TAG
        chip = self.roster.resident_chip(entry)
        controller = controller_from_spec(payload.get("controller"), chip)
        stepping = SteppingSession(
            chip,
            list(request.mapping),
            request.options,
            run_tag=tag,
            windows_per_segment=windows,
            backend=self.backend,
            telemetry=self.telemetry,
        )
        runit = (
            RUnit(RUnitConfig(), chip.vnom)
            if payload.get("runit", True)
            else None
        )
        loop = ClosedLoopRun(
            stepping, controller, runit=runit, telemetry=self.telemetry
        )
        session = self.control.open(loop, entry.digest, controller.kind)
        self._count("serve.session.opened")
        self.telemetry.emit(
            "serve.session_opened",
            session=session.session_id,
            chip=entry.digest[:12],
            controller=controller.kind,
            windows=stepping.n_windows,
        )
        return {
            "ok": True,
            "status": "ok",
            "session": session.session_id,
            "chip": entry.digest,
            "controller": controller.kind,
            "windows": stepping.n_windows,
            "backend": stepping.resolved_backend,
        }

    def _session_step(self, payload: dict) -> dict:
        session = self.control.get(payload.get("session"))
        steps = payload.get("steps", 1)
        if steps == "all":
            budget = None
        elif (
            not isinstance(steps, bool)
            and isinstance(steps, int)
            and steps >= 1
        ):
            budget = steps
        else:
            raise ProtocolError("steps must be a positive integer or 'all'")
        loop = session.loop
        observations = []
        while not loop.session.done and (
            budget is None or len(observations) < budget
        ):
            observations.append(loop.step())
        self.control.record_steps(session, len(observations))
        self._count("serve.session.steps", len(observations))
        reply = {
            "ok": True,
            "status": "ok",
            "session": session.session_id,
            "observations": [
                encode_observation(obs) for obs in observations
            ],
            "position": loop.session.position,
            "windows": loop.session.n_windows,
            "done": loop.session.done,
        }
        if loop.session.done:
            reply["summary"] = loop.summary()
        return reply

    def _session_close(self, payload: dict) -> dict:
        session = self.control.close(payload.get("session"))
        self._count("serve.session.closed")
        self.telemetry.emit(
            "serve.session_closed",
            session=session.session_id,
            steps=session.steps_served,
            done=session.loop.session.done,
        )
        return {
            "ok": True,
            "status": "ok",
            "session": session.session_id,
            "steps_served": session.steps_served,
            "done": session.loop.session.done,
            "summary": session.loop.summary(),
        }

    # -- verbs ----------------------------------------------------------
    def health(self) -> dict:
        """Liveness + occupancy (the ``/healthz`` of this protocol)."""
        return {
            "ok": True,
            "status": "closing" if self._closing else "ok",
            "uptime_s": round(self.uptime_s, 3),
            "chip": self.chip_fp,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self._queue.maxsize,
            "in_flight": self.flights.in_flight(),
            "hot": self.hot.stats(),
            "sessions": len(self._sessions),
            "executor": getattr(self.executor, "name", "custom"),
            "backend": self.backend,
            "chips": self.roster.stats(),
            "control_sessions": self.control.stats(),
        }

    def metrics(self) -> dict:
        """The telemetry snapshot (serve.* + engine.*) plus tier stats,
        request-latency percentiles and the latest SLO evaluation (the
        ``/metrics`` of this protocol)."""
        return {
            "ok": True,
            "status": "ok",
            "uptime_s": round(self.uptime_s, 3),
            "hot": self.hot.stats(),
            "metrics": self._safe_snapshot(),
            "percentiles": self.request_percentiles(),
            "slo": [status.to_dict() for status in self._slo_status],
            "window_s": self.window_s,
            "windows": len(self.series),
            "chips": self.roster.stats(),
            "control_sessions": self.control.stats(),
        }

    def metrics_text(self) -> dict:
        """The same telemetry as Prometheus text exposition — the
        ``metrics_text`` verb and the body of the optional plain-HTTP
        ``GET /metrics`` scrape endpoint."""
        try:
            text = prometheus_text(
                self._safe_snapshot(),
                labels={"chip": self.chip_fp[:12]},
                gauges=self.gauges(),
            )
        except ValueError as error:  # pragma: no cover - defensive
            return {"ok": False, "status": "error", "error": str(error)}
        return {"ok": True, "status": "ok", "text": text}

    def request_percentiles(self) -> dict:
        """Cumulative p50/p95/p99 of the overall and per-tier request
        latency histograms (only the ones that recorded anything)."""
        out: dict = {}
        names = ["serve.request.seconds"] + [
            f"serve.request.{tier}.seconds"
            for tier in ("hot", "cache", "coalesced", "executed")
        ]
        for name in names:
            histogram = self.telemetry.histogram(name)
            if histogram is None or not histogram.count:
                continue
            summary = histogram.summary()
            summary.pop("buckets", None)
            out[name] = summary
        return out

    def gauges(self) -> dict:
        """Instantaneous operational gauges for the exposition: queue
        occupancy, hot-tier occupancy and hit ratio, live qps and
        windowed p95 (from the series), SLO burn rates."""
        hot = self.hot.stats()
        counters = self.telemetry.counters
        answered = sum(
            counters.get(f"serve.tier.{tier}", 0)
            for tier in ("hot", "cache", "coalesced", "executed")
        )
        served_without_engine = sum(
            counters.get(f"serve.tier.{tier}", 0)
            for tier in ("hot", "cache", "coalesced")
        )
        gauges = {
            "serve.uptime.seconds": round(self.uptime_s, 3),
            "serve.queue.depth": self._queue.qsize(),
            "serve.queue.limit": self._queue.maxsize,
            "serve.in.flight": self.flights.in_flight(),
            "serve.hot.entries": hot["entries"],
            "serve.hot.capacity": hot["capacity"],
            "serve.sessions.warm": len(self._sessions),
            "serve.chips.hosted": len(self.roster),
            "serve.chips.resident": self.roster.stats()["resident"],
            "serve.window.seconds": self.window_s,
            "serve.tier.hit.ratio": (
                round(served_without_engine / answered, 6) if answered else 0.0
            ),
            # Smoothed over the last 3 windows so a scrape between
            # bursts does not read 0.
            "serve.qps": round(self.series.rate("serve.requests", k=3), 6),
        }
        control = self.control.stats()
        gauges["serve.control.sessions.open"] = control["open"]
        gauges["serve.control.sessions.capacity"] = control["capacity"]
        gauges["serve.control.steps.served"] = control["steps_served"]
        p95 = self.series.percentile("serve.request.seconds", 95, k=3)
        if p95 is not None:
            gauges["serve.request.p95.seconds"] = round(p95, 6)
        for status in list(self._slo_status):
            slug = status.slo.name.replace("-", "_")
            gauges[f"serve.slo.{slug}.burn.rate"] = round(status.burn_rate, 4)
            gauges[f"serve.slo.{slug}.sli"] = round(status.sli, 6)
        return gauges

    # -- live metrics ticker ---------------------------------------------
    def tick_metrics(self, now: float | None = None):
        """One live-metrics step: snapshot → window delta → SLO
        evaluation.  The ticker thread calls this every ``window_s``;
        tests call it directly with pinned timestamps."""
        state = self._safe_series_state()
        window = self.series.tick_state(state, now)
        if window is not None:
            self._slo_status = self.slo_policy.evaluate_and_emit(
                window, self.telemetry
            )
        return window

    def _tick_loop(self) -> None:
        while not self._ticker_stop.wait(self.window_s):
            try:
                self.tick_metrics()
            except Exception:  # noqa: BLE001 - keep ticking
                self._count("serve.tick_errors")

    def _safe_series_state(self) -> dict:
        for _ in range(8):
            try:
                return series_state(self.telemetry)
            except RuntimeError:
                continue
        return {"counters": {}, "timers": {}, "histograms": {}}  # pragma: no cover

    def _safe_snapshot(self) -> dict:
        # The executor thread mutates counters while we copy them; a
        # dict that changes size mid-copy raises — retry, it settles.
        for _ in range(8):
            try:
                return self.telemetry.snapshot()
            except RuntimeError:
                continue
        return {"counters": {}}  # pragma: no cover - pathological churn

    # -- executor thread -------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            # Simulate leaders batch into one run_many; control verbs
            # (session.open/step/close) are state transitions of named
            # sessions and run one at a time, after the batch, still on
            # this one thread — the engine-ownership contract.
            batch: list[_WorkItem] = []
            controls: list[_ControlWork] = []
            (controls if isinstance(item, _ControlWork) else batch).append(
                item
            )
            while len(batch) + len(controls) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    self._queue.put(_STOP)  # re-arm for the outer loop
                    break
                (
                    controls if isinstance(extra, _ControlWork) else batch
                ).append(extra)
            if batch:
                try:
                    self._process(batch)
                except BaseException as error:  # noqa: BLE001 - keep serving
                    for entry in batch:
                        if not entry.flight.done:
                            entry.flight.reject({
                                "ok": False,
                                "status": "error",
                                "error": f"{type(error).__name__}: {error}",
                                "fingerprint": entry.fingerprint,
                            })
                            self.flights.finish(entry.flight)
                    self._count("serve.batch_errors")
            for work in controls:
                self._run_control(work)

    def _process(self, batch: list[_WorkItem]) -> None:
        with self.telemetry.span("serve.batch", requests=len(batch)):
            # Tier 2: the engine result cache (memory LRU + disk).
            misses: list[_WorkItem] = []
            for item in batch:
                cached = self.cache.get(item.fingerprint)
                if cached is not None:
                    self._settle(item, encode_result(cached), "cache")
                else:
                    misses.append(item)
            if not misses:
                return
            # Tier 3: execute, batched per (chip, options set) so
            # distinct concurrent requests fan out over the warm pool
            # together — one warm session per chip identity and
            # options, exactly the grouping the plan executor uses.
            groups: dict[tuple[str, str], list[_WorkItem]] = {}
            for item in misses:
                key = (item.entry.digest, canonical(item.request.options))
                groups.setdefault(key, []).append(item)
            for key, items in groups.items():
                self._execute_group(self._session_for(key, items[0]), items)

    def _execute_group(
        self, session: SimulationSession, items: list[_WorkItem]
    ) -> None:
        results = session.run_many(
            [list(item.request.mapping) for item in items],
            [item.request.tag for item in items],
        )
        for item, result in zip(items, results):
            if isinstance(result, RunFailure):
                self._count("serve.failures")
                flight = item.flight
                flight.reject({
                    "ok": False,
                    "status": "error",
                    "error": result.describe(),
                    "fingerprint": item.fingerprint,
                })
                self.flights.finish(flight)
                self.telemetry.emit(
                    "serve.request",
                    fingerprint=item.fingerprint,
                    tier="error",
                    error=result.describe(),
                )
            else:
                self._count("serve.executed")
                self._settle(item, encode_result(result), "executed")

    def _session_for(
        self, key: tuple[str, str], item: _WorkItem
    ) -> SimulationSession:
        """The warm session for one (chip, canonical options) pair
        (created on first use, then reused until the chip is evicted).

        Runs on the executor thread: a cold hosted chip is built here
        (the lazy-build cost lands on the first execution-tier miss),
        and any chips the build evicted lose their warm sessions."""
        session = self._sessions.get(key)
        if session is None:
            chip = self.roster.resident_chip(item.entry)
            for digest in self.roster.take_evicted():
                self._sessions = {
                    k: s for k, s in self._sessions.items()
                    if k[0] != digest
                }
                self._count("serve.chip_evictions")
                self.telemetry.emit(
                    "serve.chip_evicted", chip=digest,
                    resident=self.roster.stats()["resident"],
                )
            kwargs = {}
            if self._faults is not _UNSET:
                kwargs["faults"] = self._faults
            session = SimulationSession(
                chip,
                item.request.options,
                cache=self.cache,
                executor=self.executor,
                retry=self.retry,
                on_failure="collect",
                telemetry=self.telemetry,
                backend=self.backend,
                **kwargs,
            )
            self._sessions[key] = session
            self._count("serve.sessions_built")
        else:
            # Keep the roster's LRU clock honest for resident chips.
            self.roster.resident_chip(item.entry)
        return session

    def _settle(self, item: _WorkItem, payload: dict, tier: str) -> None:
        """Publish a finished computation: hot tier first, then the
        flight, then retire it — so there is no instant where a repeat
        request finds neither a hot entry nor an in-flight future."""
        item.entry.hot.put(item.fingerprint, payload)
        item.flight.resolve(payload, tier)
        self.flights.finish(item.flight)

    # -- accounting ------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self.telemetry.increment(name, amount)

    def _reply(
        self, fingerprint: str, payload: dict, tier: str, start: float
    ) -> dict:
        elapsed_ms = (time.perf_counter() - start) * 1e3
        with self._metrics_lock:
            self.telemetry.increment(f"serve.tier.{tier}")
            self.telemetry.observe("serve.request.seconds", elapsed_ms / 1e3)
            # Per-tier latency distribution: what the tier SLOs and the
            # BENCH_serve hot/warm/cold percentiles are built from.
            self.telemetry.observe(
                f"serve.request.{tier}.seconds", elapsed_ms / 1e3
            )
        self.telemetry.emit(
            "serve.request",
            fingerprint=fingerprint,
            tier=tier,
            dur_ms=round(elapsed_ms, 3),
        )
        return {
            "ok": True,
            "tier": tier,
            "fingerprint": fingerprint,
            "elapsed_ms": round(elapsed_ms, 3),
            "result": payload,
        }

    def _busy_reply(self) -> dict:
        retry_after = self._retry_after_s()
        self.telemetry.emit("serve.busy", retry_after_s=retry_after)
        return {
            "ok": False,
            "status": "busy",
            "error": "admission queue is full",
            "retry_after_s": retry_after,
        }

    def _retry_after_s(self) -> float:
        """Backpressure hint: roughly how long the current queue takes
        to drain, from the measured per-run latency."""
        histogram = self.telemetry.histogram("engine.run.seconds")
        mean = histogram.mean if histogram is not None else None
        per_run = mean if mean else 0.25
        estimate = max(1, self._queue.qsize()) * per_run
        return round(min(max(estimate, 0.1), 30.0), 3)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulationService(chip={self.chip_fp[:12]}…, "
            f"queue={self._queue.qsize()}/{self._queue.maxsize})"
        )


# -- TCP transport --------------------------------------------------------


class _RequestHandler(socketserver.StreamRequestHandler):
    """One persistent JSON-lines connection (many requests per
    socket); the service logic lives entirely in the handler's
    :class:`SimulationService`."""

    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        service: SimulationService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                payload = read_message(self.rfile)
            except ProtocolError as error:
                write_message(
                    self.wfile,
                    {"ok": False, "status": "bad-request",
                     "error": str(error)},
                )
                continue
            if payload is None:
                return
            if payload.get("op") == "shutdown":
                write_message(
                    self.wfile, {"ok": True, "status": "ok", "stopping": True}
                )
                self.server.initiate_shutdown()  # type: ignore[attr-defined]
                return
            try:
                response = service.handle(payload)
            except BrokenPipeError:  # client went away mid-wait
                return
            try:
                write_message(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError):
                return


class NoiseServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front end over one :class:`SimulationService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SimulationService):
        super().__init__(address, _RequestHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    def initiate_shutdown(self) -> None:
        """Stop ``serve_forever`` from inside a handler thread (a
        direct ``shutdown()`` call would deadlock the handler on its
        own serve loop)."""
        threading.Thread(target=self.shutdown, daemon=True).start()


def start_server(
    service: SimulationService, host: str = "127.0.0.1", port: int = 0
) -> tuple[NoiseServer, threading.Thread]:
    """Start *service* behind a TCP endpoint in a background thread;
    returns the bound server (``server.port`` is the actual port when
    0 was requested) and the serving thread."""
    service.start()
    service.telemetry.emit(
        "serve.started", host=host, port=port, chip=service.chip_fp
    )
    server = NoiseServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-tcp", daemon=True
    )
    thread.start()
    return server, thread
