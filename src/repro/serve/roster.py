"""Multi-chip hosting roster for the simulation service.

One service process can host several chip identities — the default
(always-resident) chip plus any number of declarative
:class:`~repro.chips.ChipSpec` members, e.g. a whole chip family behind
one endpoint.  The roster keeps chip *identity* cheap and chip *build*
lazy:

* every hosted spec gets its identity string and fingerprint digest at
  registration time (a :meth:`~repro.chips.ChipSpec.compile`, no modal
  decomposition), so requests against a never-built chip fingerprint
  and answer from the hot/disk tiers without paying a build;
* the heavy :class:`~repro.machine.chip.Chip` (modal decomposition +
  response library + kernel) is built only when a request actually
  misses into the execution tier, on the executor thread;
* at most ``max_resident`` non-default chips stay built — building one
  more evicts the least-recently-used cold chip (its warm sessions go
  with it; its per-chip hot tier survives, replies are cheap JSON).

The default chip is pinned: it is never evicted and its hot tier is the
service's original hot tier, so a service hosting extra chips treats
default-chip requests byte-identically to a single-chip service.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Sequence

from ..chips import ChipSpec
from ..engine.fingerprint import content_key
from ..errors import ConfigError
from ..machine.chip import Chip
from ..plan.spec import chip_identity
from .hot_cache import HotCache

__all__ = ["ChipEntry", "ChipRoster"]


class ChipEntry:
    """One hosted chip identity."""

    __slots__ = (
        "name", "spec", "identity", "digest", "n_cores", "hot",
        "chip", "pinned", "last_used_s", "requests",
    )

    def __init__(
        self,
        name: str,
        identity: str,
        n_cores: int,
        hot: HotCache,
        *,
        spec: ChipSpec | None = None,
        chip: Chip | None = None,
        pinned: bool = False,
    ):
        self.name = name
        self.spec = spec
        self.identity = identity
        self.digest = content_key(identity)
        self.n_cores = n_cores
        self.hot = hot
        self.chip = chip
        self.pinned = pinned
        self.last_used_s = 0.0
        self.requests = 0

    @property
    def resident(self) -> bool:
        """Whether the heavy chip artifacts are currently built."""
        return self.chip is not None

    def labels(self) -> set[str]:
        """Every name this entry answers to."""
        labels = {self.name, self.digest}
        if self.spec is not None:
            labels.add(self.spec.name)
            if "/" in self.spec.name:
                labels.add(self.spec.name.split("/", 1)[1])
        return labels


class ChipRoster:
    """The set of chip identities one service hosts.

    The entry table is immutable after construction (handler threads
    resolve against it lock-free); residency — lazy builds and LRU
    eviction — is mutated under the roster lock, by the executor
    thread only.
    """

    def __init__(
        self,
        default_chip: Chip,
        default_hot: HotCache,
        specs: Sequence[ChipSpec] = (),
        *,
        max_resident: int = 2,
        hot_entries: int = 64,
        default_name: str = "default",
    ):
        if max_resident < 1:
            raise ConfigError(
                f"max_resident must be >= 1 (got {max_resident})"
            )
        self.max_resident = max_resident
        self._lock = threading.Lock()
        self.builds = 0
        self.evictions = 0
        #: Digests evicted since the last :meth:`take_evicted` call
        #: (the service drops the matching warm sessions).
        self._evicted: list[str] = []
        self.default = ChipEntry(
            default_name,
            chip_identity(default_chip.config, default_chip.chip_id),
            default_chip.n_cores,
            default_hot,
            chip=default_chip,
            pinned=True,
        )
        self._entries: list[ChipEntry] = [self.default]
        self._by_label: dict[str, ChipEntry] = {}
        for spec in specs:
            entry = ChipEntry(
                spec.name,
                spec.identity(),
                spec.n_cores,
                HotCache(hot_entries),
                spec=spec,
            )
            if entry.digest == self.default.digest:
                # The default chip re-declared as a spec: alias it so
                # both addresses serve the one pinned entry (and the
                # one hot tier).
                self._alias(self.default, entry.labels())
                continue
            if any(entry.digest == other.digest for other in self._entries):
                raise ConfigError(
                    f"chip {spec.name!r} duplicates an already-hosted "
                    "chip identity"
                )
            self._entries.append(entry)
            self._alias(entry, entry.labels())
        self._alias(self.default, self.default.labels())

    def _alias(self, entry: ChipEntry, labels: Iterable[str]) -> None:
        for label in labels:
            existing = self._by_label.setdefault(label, entry)
            if existing is not entry:
                raise ConfigError(
                    f"chip label {label!r} is ambiguous between "
                    f"{existing.name!r} and {entry.name!r}"
                )

    # -- lookup (handler threads, lock-free) ----------------------------
    def resolve(self, selector: object) -> ChipEntry:
        """The entry a request's ``chip`` field addresses (the default
        entry for ``None``); raises :class:`ConfigError` with the
        hosted names on a miss."""
        if selector is None:
            return self.default
        if isinstance(selector, str) and selector in self._by_label:
            return self._by_label[selector]
        raise ConfigError(
            f"unknown chip {selector!r}; hosted chips are "
            f"{[entry.name for entry in self._entries]}"
        )

    def entries(self) -> list[ChipEntry]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- residency (executor thread) ------------------------------------
    def resident_chip(self, entry: ChipEntry) -> Chip:
        """The built chip of *entry*, building it (and evicting the
        LRU cold chip over budget) on first execution-tier use.

        Returns the built chip; when a build evicted chips, the caller
        learns it through :meth:`take_evicted` and must drop any warm
        sessions bound to them.
        """
        with self._lock:
            entry.last_used_s = time.monotonic()
            entry.requests += 1
            if entry.chip is not None:
                return entry.chip
            entry.chip = entry.spec.build()
            self.builds += 1
            self._evict_over_budget()
            return entry.chip

    def _evict_over_budget(self) -> None:
        evictable = [
            candidate
            for candidate in self._entries
            if candidate.resident and not candidate.pinned
        ]
        while len(evictable) > self.max_resident:
            coldest = min(evictable, key=lambda c: c.last_used_s)
            evictable.remove(coldest)
            coldest.chip = None
            self.evictions += 1
            self._evicted.append(coldest.digest)

    def take_evicted(self) -> list[str]:
        with self._lock:
            evicted, self._evicted = self._evicted, []
            return evicted

    # -- reporting ------------------------------------------------------
    def stats(self) -> dict:
        """Occupancy digest for health replies and gauges."""
        with self._lock:
            return {
                "hosted": len(self._entries),
                "resident": sum(
                    1 for entry in self._entries if entry.resident
                ),
                "max_resident": self.max_resident,
                "builds": self.builds,
                "evictions": self.evictions,
                "chips": [
                    {
                        "name": entry.name,
                        "chip": entry.digest,
                        "n_cores": entry.n_cores,
                        "resident": entry.resident,
                        "requests": entry.requests,
                        "hot": entry.hot.stats(),
                    }
                    for entry in self._entries
                ],
            }
