"""Server-side control sessions: the state behind ``session.*`` verbs.

One :class:`ControlSession` wraps one
:class:`~repro.control.loop.ClosedLoopRun` (a controller bound to a
stepping engine session) and lives across requests — possibly across
connections — until it is closed or idles past its TTL.  The
:class:`ControlSessionRegistry` bounds how many may stay open at once:
every open session pins a solved stimulus (the stepping session's
full-horizon waveform block) in memory, so the bound is the residency
budget of the control plane the way ``max_resident_chips`` is the
residency budget of the simulate plane.

Threading contract (inherited from the server): session *mutations* —
open, step, close, prune — happen only on the service's single
executor thread, which also owns the engine.  Handler threads read
:meth:`ControlSessionRegistry.stats` for health/metrics replies, so the
registry table itself is lock-guarded; the per-session counters it
reports are plain ints (atomic enough for monitoring reads).
"""

from __future__ import annotations

import threading
import time

from ..control.loop import ClosedLoopRun
from ..errors import ConfigError, ControlError

__all__ = ["ControlSession", "ControlSessionRegistry"]


class ControlSession:
    """One open closed-loop session and its accounting."""

    __slots__ = (
        "session_id",
        "loop",
        "chip_digest",
        "controller_kind",
        "created_s",
        "last_used_s",
        "steps_served",
    )

    def __init__(
        self,
        session_id: str,
        loop: ClosedLoopRun,
        chip_digest: str,
        controller_kind: str,
        now: float,
    ):
        self.session_id = session_id
        self.loop = loop
        self.chip_digest = chip_digest
        self.controller_kind = controller_kind
        self.created_s = now
        self.last_used_s = now
        self.steps_served = 0

    def touch(self, now: float) -> None:
        self.last_used_s = now

    def residency(self, now: float) -> dict:
        """This session's line in the health reply: who it is, how far
        along it is, and how long it has been holding its stimulus."""
        stepping = self.loop.session
        return {
            "session": self.session_id,
            "chip": self.chip_digest[:12],
            "controller": self.controller_kind,
            "position": stepping.position,
            "windows": stepping.n_windows,
            "done": stepping.done,
            "steps_served": self.steps_served,
            "violations": self.loop.violations,
            "age_s": round(now - self.created_s, 3),
            "idle_s": round(now - self.last_used_s, 3),
        }


class ControlSessionRegistry:
    """Bounded, TTL-pruned table of open control sessions."""

    def __init__(self, max_sessions: int = 8, ttl_s: float = 900.0):
        if max_sessions < 1:
            raise ConfigError(
                f"max_sessions must be >= 1 (got {max_sessions})"
            )
        if ttl_s <= 0:
            raise ConfigError(f"ttl_s must be > 0 (got {ttl_s})")
        self.max_sessions = max_sessions
        self.ttl_s = float(ttl_s)
        self._lock = threading.Lock()
        self._sessions: dict[str, ControlSession] = {}
        self._serial = 0
        self._opened = 0
        self._closed = 0
        self._expired = 0
        self._steps = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def full(self) -> bool:
        with self._lock:
            return len(self._sessions) >= self.max_sessions

    def open(
        self,
        loop: ClosedLoopRun,
        chip_digest: str,
        controller_kind: str,
        now: float | None = None,
    ) -> ControlSession:
        """Register a new session (ids are a monotone serial — the
        registry never recycles one, so a stale client fails with
        "unknown session", not someone else's loop)."""
        now = time.time() if now is None else now
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise ControlError(
                    f"control session capacity reached "
                    f"({self.max_sessions} open)"
                )
            self._serial += 1
            session_id = f"cs-{self._serial:06d}"
            session = ControlSession(
                session_id, loop, chip_digest, controller_kind, now
            )
            self._sessions[session_id] = session
            self._opened += 1
        return session

    def get(self, session_id: object, now: float | None = None) -> ControlSession:
        with self._lock:
            session = self._sessions.get(session_id)  # type: ignore[arg-type]
        if session is None:
            raise ControlError(f"unknown control session {session_id!r}")
        session.touch(time.time() if now is None else now)
        return session

    def record_steps(self, session: ControlSession, count: int) -> None:
        session.steps_served += count
        with self._lock:
            self._steps += count

    def close(self, session_id: object) -> ControlSession:
        with self._lock:
            session = self._sessions.pop(session_id, None)  # type: ignore[arg-type]
            if session is not None:
                self._closed += 1
        if session is None:
            raise ControlError(f"unknown control session {session_id!r}")
        return session

    def prune(self, now: float | None = None) -> list[ControlSession]:
        """Drop sessions idle past the TTL; returns what was dropped
        (the caller owns the telemetry for each)."""
        now = time.time() if now is None else now
        with self._lock:
            expired = [
                session
                for session in self._sessions.values()
                if now - session.last_used_s > self.ttl_s
            ]
            for session in expired:
                del self._sessions[session.session_id]
            self._expired += len(expired)
        return expired

    def stats(self, now: float | None = None) -> dict:
        """Occupancy + per-session residency, for health/metrics."""
        now = time.time() if now is None else now
        with self._lock:
            sessions = list(self._sessions.values())
            opened, closed, expired, steps = (
                self._opened, self._closed, self._expired, self._steps,
            )
        return {
            "open": len(sessions),
            "capacity": self.max_sessions,
            "ttl_s": self.ttl_s,
            "opened": opened,
            "closed": closed,
            "expired": expired,
            "steps_served": steps,
            "residency": [session.residency(now) for session in sessions],
        }
