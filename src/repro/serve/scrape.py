"""Optional plain-HTTP Prometheus scrape endpoint for the service.

The native transport of :mod:`repro.serve` is JSON-lines over TCP —
great for clients, opaque to a Prometheus scraper.  This module bolts a
minimal stdlib HTTP server (``http.server``, no new dependencies) next
to the native endpoint::

    GET /metrics   → text/plain Prometheus exposition (metrics_text)
    GET /healthz   → application/json health verb

Started by ``repro-noise serve --http-metrics PORT``; both endpoints
read only thread-safe service state (the telemetry snapshot, gauges),
so a scrape never competes with the executor thread for the engine.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsHTTPServer", "start_metrics_http"]


class _ScrapeHandler(BaseHTTPRequestHandler):
    server_version = "repro-noise-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/metrics"):
            reply = service.metrics_text()
            if not reply.get("ok"):
                self._send(500, "text/plain; charset=utf-8",
                           reply.get("error", "exposition failed"))
                return
            self._send(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                reply["text"],
            )
        elif path == "/healthz":
            self._send(
                200,
                "application/json; charset=utf-8",
                json.dumps(service.health()),
            )
        else:
            self._send(404, "text/plain; charset=utf-8",
                       f"no such path {path!r}; try /metrics or /healthz")

    def _send(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, *args) -> None:  # noqa: D102 - silence stderr
        pass


class MetricsHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP front end over one :class:`SimulationService`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service):
        super().__init__(address, _ScrapeHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_metrics_http(
    service, host: str = "127.0.0.1", port: int = 0
) -> tuple[MetricsHTTPServer, threading.Thread]:
    """Serve ``/metrics`` + ``/healthz`` for *service* in a background
    thread; returns the bound server (``server.port`` resolves port 0)
    and its thread."""
    server = MetricsHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-scrape", daemon=True
    )
    thread.start()
    return server, thread
