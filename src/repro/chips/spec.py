"""Declarative chip specifications.

A :class:`ChipSpec` is the small, validated, JSON-round-trippable
description of one chip-family member: core count and topology row
rule, decap budget, package RLC scaling, technology node and variation
seed.  It *compiles* to the full :class:`~repro.machine.chip.ChipConfig`
(every element value resolved against the calibrated reference chip)
and fingerprints through the same content-address the planner, engine
cache and serving layer already share.

The neutrality guarantee
------------------------
``ChipSpec()`` — the default spec — compiles to a configuration that is
canonically **byte-identical** to ``ChipConfig()``, the ambient default
every pre-family call site used.  All scale factors default to exactly
``1.0`` and multiplication by 1.0 is exact in IEEE arithmetic, so
threading the spec layer through machine → experiments → plan → serve
perturbs no existing cache key, plan fingerprint or wire fingerprint
for the default chip.  ``tests/chips`` pins the digest as a regression
constant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace

from ..engine.fingerprint import content_key
from ..errors import ConfigError
from ..machine.chip import Chip, ChipConfig
from ..pdn.topology import MAX_CORES
from ..pdn.zec12 import reference_chip_parameters
from ..uarch.resources import default_core_config
from .scaling import (
    REFERENCE_NODE,
    SCALING_MODELS,
    TECH_NODES,
    energy_factor,
    freq_factor,
    vdd_factor,
)

__all__ = ["ChipSpec", "reference_spec"]

#: Sanity bound on the multiplicative scale knobs: a family member an
#: order of magnitude off the calibrated part is a typo, not a design.
_MAX_SCALE = 10.0


@dataclass(frozen=True)
class ChipSpec:
    """One declarative chip-family member.

    Attributes
    ----------
    name:
        Human label (family expansion fills it in); **not** part of the
        chip fingerprint — two specs differing only in name are the
        same silicon.
    n_cores:
        Core count; the two-row topology rule (even ids north, odd ids
        south) extends the reference floorplan.
    decap_scale:
        Multiplier on the per-node on-chip decap budget (core grid,
        domain, deep-trench L3, nest units).
    package_l_scale, package_r_scale:
        Multipliers on the package interconnect RLC (board→package and
        C4 inductances / resistances).
    tech_node:
        Technology node in nm; scales vdd, core clock and energy per
        instruction through :mod:`repro.chips.scaling`.
    scaling_model:
        ``"itrs"`` (aggressive) or ``"cons"`` (conservative).
    seed:
        Root seed of the process-variation and measurement-noise draw.
    chip_id:
        Which manufactured instance of this design (selects the
        variation stream, exactly as :class:`Chip` does).
    """

    name: str = "reference"
    n_cores: int = 6
    decap_scale: float = 1.0
    package_l_scale: float = 1.0
    package_r_scale: float = 1.0
    tech_node: int = REFERENCE_NODE
    scaling_model: str = "itrs"
    seed: int = 17
    chip_id: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError("chip spec needs a non-empty name")
        if not isinstance(self.n_cores, int) or isinstance(self.n_cores, bool):
            raise ConfigError("n_cores must be an integer")
        if not 2 <= self.n_cores <= MAX_CORES:
            raise ConfigError(
                f"n_cores must be in 2..{MAX_CORES} (got {self.n_cores})"
            )
        for knob in ("decap_scale", "package_l_scale", "package_r_scale"):
            value = getattr(self, knob)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigError(f"{knob} must be a number")
            if not 0 < value <= _MAX_SCALE:
                raise ConfigError(
                    f"{knob} must be in (0, {_MAX_SCALE}] (got {value})"
                )
        if self.tech_node not in TECH_NODES:
            raise ConfigError(
                f"tech_node must be one of {TECH_NODES} (got {self.tech_node})"
            )
        if self.scaling_model not in SCALING_MODELS:
            raise ConfigError(
                f"scaling_model must be one of {SCALING_MODELS} "
                f"(got {self.scaling_model!r})"
            )
        for knob in ("seed", "chip_id"):
            value = getattr(self, knob)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ConfigError(f"{knob} must be a non-negative integer")

    # -- compilation ----------------------------------------------------
    def compile(self) -> ChipConfig:
        """The fully-resolved :class:`ChipConfig` this spec names.

        Every knob is applied as a multiplier on the calibrated
        reference values; the default spec multiplies everything by
        exactly 1.0 and therefore compiles to a config canonically
        identical to ``ChipConfig()``.
        """
        vdd = vdd_factor(self.tech_node, self.scaling_model)
        freq = freq_factor(self.tech_node, self.scaling_model)
        energy = energy_factor(self.tech_node, self.scaling_model)

        pdn = reference_chip_parameters()
        pdn = replace(
            pdn,
            n_cores=self.n_cores,
            vnom=pdn.vnom * vdd,
            c_core=pdn.c_core * self.decap_scale,
            c_dom=pdn.c_dom * self.decap_scale,
            c_l3=pdn.c_l3 * self.decap_scale,
            c_unit=pdn.c_unit * self.decap_scale,
            l_mb=pdn.l_mb * self.package_l_scale,
            l_c4=pdn.l_c4 * self.package_l_scale,
            r_mb=pdn.r_mb * self.package_r_scale,
            r_c4=pdn.r_c4 * self.package_r_scale,
        )
        core = default_core_config()
        core = replace(
            core,
            clock_hz=core.clock_hz * freq,
            vnom=core.vnom * vdd,
            static_power_w=core.static_power_w * energy,
            floor_power_w=core.floor_power_w * energy,
        )
        return ChipConfig(pdn=pdn, core=core, seed=self.seed)

    def build(self) -> Chip:
        """A concrete :class:`Chip` instance of this spec (prefer the
        memoized :func:`repro.chips.build_chip` in hot paths)."""
        return Chip(self.compile(), self.chip_id)

    # -- identity -------------------------------------------------------
    def identity(self) -> str:
        """The canonical chip-identity string — byte-identical to
        :func:`~repro.plan.spec.chip_identity` of the compiled config
        and to :func:`~repro.engine.fingerprint.chip_fingerprint` of
        the built chip, without building anything heavy."""
        from ..plan.spec import chip_identity

        return chip_identity(self.compile(), self.chip_id)

    def fingerprint(self) -> str:
        """The stable chip fingerprint digest (SHA-256 of the identity
        string) — what the serving layer keys chip rosters on and the
        family campaign groups sessions by."""
        return content_key(self.identity())

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-ready dict; round-trips through :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ChipSpec":
        """The spec a :meth:`to_dict` payload names; rejects unknown
        keys so a typo'd knob cannot silently fall back to defaults."""
        if not isinstance(payload, dict):
            raise ConfigError("chip spec payload must be an object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown chip spec field(s) {sorted(unknown)}; "
                f"known fields are {sorted(known)}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigError(f"invalid chip spec: {error}")


def reference_spec() -> ChipSpec:
    """The default spec: the paper's calibrated six-core 32 nm part.

    ``reference_spec().build()`` is the same silicon as
    :func:`repro.machine.chip.reference_chip`, and its fingerprint is
    the regression constant ``tests/chips`` pins.
    """
    return ChipSpec()
