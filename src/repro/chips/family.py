"""Named chip families: declarative sweeps over :class:`ChipSpec` axes.

A :class:`ChipFamily` is a base spec plus one or more *axes* — spec
fields with the value list each member takes.  Expansion is the
cartesian product in declared axis order, each member named
deterministically (``family/cores4-decap0.5``), so a family member can
be addressed stably from the CLI, a campaign manifest or a serving
roster.

Builtin families cover the sweeps the figures ask for: the core-count
sweep behind the resonance-shift discussion (Figure 7: more cores →
more switched capacitance → lower resonant frequency), the decap-budget
ablation, the tech-node projection, and a three-member ``quick`` family
small enough for CI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from itertools import product

from ..errors import ConfigError
from ..machine.chip import Chip
from .spec import ChipSpec

__all__ = [
    "ChipFamily",
    "FAMILIES",
    "get_family",
    "list_families",
    "build_chip",
]

#: Spec fields a family may sweep.  ``name`` is derived, ``chip_id``
#: names an instance rather than a design — sweeping either would make
#: member naming ambiguous.
_SWEEPABLE = frozenset(
    f.name for f in dataclasses.fields(ChipSpec)
) - {"name"}


def _axis_label(field: str, value: object) -> str:
    """Compact member-name fragment for one axis value."""
    short = {
        "n_cores": "cores",
        "decap_scale": "decap",
        "package_l_scale": "pkgl",
        "package_r_scale": "pkgr",
        "tech_node": "node",
        "scaling_model": "",
        "seed": "seed",
        "chip_id": "chip",
    }.get(field, field)
    if isinstance(value, float):
        return f"{short}{value:g}"
    return f"{short}{value}"


@dataclass(frozen=True)
class ChipFamily:
    """One named sweep over chip-spec axes.

    Attributes
    ----------
    name:
        The family's registry name (also the member-name prefix).
    description:
        One line for ``repro-noise family list``.
    axes:
        ``((field, (value, ...)), ...)`` — expansion is the cartesian
        product in this order.
    base:
        The spec every member starts from; axes override its fields.
    """

    name: str
    description: str
    axes: tuple[tuple[str, tuple], ...]
    base: ChipSpec = dataclass_field(default_factory=ChipSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("chip family needs a name")
        if not self.axes:
            raise ConfigError("chip family needs at least one axis")
        seen: set[str] = set()
        for axis_field, values in self.axes:
            if axis_field not in _SWEEPABLE:
                raise ConfigError(
                    f"family {self.name!r}: cannot sweep {axis_field!r}; "
                    f"sweepable fields are {sorted(_SWEEPABLE)}"
                )
            if axis_field in seen:
                raise ConfigError(
                    f"family {self.name!r}: duplicate axis {axis_field!r}"
                )
            seen.add(axis_field)
            if not values:
                raise ConfigError(
                    f"family {self.name!r}: axis {axis_field!r} has no values"
                )
            if len(set(values)) != len(values):
                raise ConfigError(
                    f"family {self.name!r}: axis {axis_field!r} repeats values"
                )

    def members(self) -> tuple[ChipSpec, ...]:
        """All member specs, in cartesian-product order."""
        fields = [axis_field for axis_field, _ in self.axes]
        out = []
        for combo in product(*(values for _, values in self.axes)):
            overrides = dict(zip(fields, combo))
            label = "-".join(
                _axis_label(axis_field, value)
                for axis_field, value in overrides.items()
            )
            out.append(
                dataclasses.replace(
                    self.base, name=f"{self.name}/{label}", **overrides
                )
            )
        return tuple(out)

    def member(self, name: str) -> ChipSpec:
        """The member a full or label-only name addresses."""
        for spec in self.members():
            if spec.name == name or spec.name.split("/", 1)[1] == name:
                return spec
        raise ConfigError(
            f"family {self.name!r} has no member {name!r}; members are "
            f"{[spec.name for spec in self.members()]}"
        )

    def __len__(self) -> int:
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size


#: Builtin families.  ``quick`` is the CI family: three members around
#: the reference core count, one of which (cores6) *is* the reference
#: chip — the neutrality canary.
FAMILIES: dict[str, ChipFamily] = {
    family.name: family
    for family in (
        ChipFamily(
            name="quick",
            description="3-member CI family: 4/6/8 cores around the "
                        "reference part (cores6 is the reference chip)",
            axes=(("n_cores", (4, 6, 8)),),
        ),
        ChipFamily(
            name="cores",
            description="core-count sweep 4..16: resonance shift and "
                        "guard-band growth with switched capacitance",
            axes=(("n_cores", (4, 6, 8, 10, 12, 14, 16)),),
        ),
        ChipFamily(
            name="decap",
            description="on-chip decap budget ablation at 0.5/0.75/1.0 "
                        "of the reference deep-trench budget",
            axes=(("decap_scale", (0.5, 0.75, 1.0)),),
        ),
        ChipFamily(
            name="nodes",
            description="tech-node projection 45/32/22/16 nm under ITRS "
                        "scaling (vdd, clock, energy per instruction)",
            axes=(("tech_node", (45, 32, 22, 16)),),
        ),
        ChipFamily(
            name="cores-decap",
            description="joint sweep: 4/6/8 cores x 0.5/1.0 decap budget",
            axes=(
                ("n_cores", (4, 6, 8)),
                ("decap_scale", (0.5, 1.0)),
            ),
        ),
    )
}


def get_family(name: str) -> ChipFamily:
    """The builtin family *name* addresses."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown chip family {name!r}; builtin families are "
            f"{sorted(FAMILIES)}"
        ) from None


def list_families() -> list[ChipFamily]:
    """All builtin families, in registry order."""
    return list(FAMILIES.values())


@lru_cache(maxsize=8)
def build_chip(spec: ChipSpec) -> Chip:
    """The memoized chip instance of *spec*: one process-wide build per
    spec, so every layer (experiments, plan execution, serving) shares
    the heavy solver artifacts of a family member instead of rebuilding
    them per call site."""
    return spec.build()
