"""repro.chips — declarative chip specs and named chip families.

The family layer turns chip identity from an ambient global (the one
:func:`~repro.machine.chip.reference_chip`) into an explicit, validated
parameter: a :class:`ChipSpec` compiles to a full
:class:`~repro.machine.chip.ChipConfig` and fingerprints through the
same content address the planner, engine cache and serving layer
already share, and a :class:`ChipFamily` expands a named sweep
(``cores``, ``decap``, ``nodes`` …) into fingerprinted member specs.

The default spec compiles byte-identically to the pre-family default
chip — no existing cache key, plan fingerprint or wire fingerprint
moves (see :mod:`repro.chips.spec` for the guarantee and ``tests/
chips`` for the pinned regression digest).
"""

from .family import (
    FAMILIES,
    ChipFamily,
    build_chip,
    get_family,
    list_families,
)
from .scaling import (
    REFERENCE_NODE,
    SCALING_MODELS,
    TECH_NODES,
    energy_factor,
    freq_factor,
    vdd_factor,
)
from .spec import ChipSpec, reference_spec

__all__ = [
    "ChipSpec",
    "reference_spec",
    "ChipFamily",
    "FAMILIES",
    "get_family",
    "list_families",
    "build_chip",
    "REFERENCE_NODE",
    "TECH_NODES",
    "SCALING_MODELS",
    "vdd_factor",
    "freq_factor",
    "energy_factor",
]
