"""Technology-node scaling tables for chip-family variants.

The paper's evaluation platform is a 32 nm mainframe part; family
variants at other nodes scale the supply voltage, core clock and
per-instruction energy with published projections.  Two models are
carried, following the Lumos dark-silicon framework's convention:

* ``itrs`` — aggressive ITRS roadmap scaling;
* ``cons`` — conservative scaling (Borkar-style, voltage nearly flat).

The raw tables are normalized to the 45 nm node, as published.  The
factors this module exposes are re-based to the **32 nm reference
node**, so the reference chip scales by exactly ``1.0`` on every axis
(``x / x == 1.0`` in IEEE arithmetic) — the fingerprint-neutrality
guarantee of the spec layer rests on that exactness.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = [
    "REFERENCE_NODE",
    "TECH_NODES",
    "SCALING_MODELS",
    "vdd_factor",
    "freq_factor",
    "energy_factor",
]

#: The evaluation platform's technology node (nm); all factors are 1.0
#: here by construction.
REFERENCE_NODE = 32

#: Nodes the projection tables cover (nm), largest feature size first.
TECH_NODES = (45, 32, 22, 16, 11, 8)

#: Supported scaling models.
SCALING_MODELS = ("itrs", "cons")

# Raw projections, normalized at 45 nm (ITRS 2010 tables / conservative
# scaling as tabulated by the Lumos framework).
_VDD_SCALE = {
    "itrs": {45: 1.0, 32: 0.93, 22: 0.84, 16: 0.75, 11: 0.68, 8: 0.62},
    "cons": {45: 1.0, 32: 0.93, 22: 0.88, 16: 0.86, 11: 0.84, 8: 0.84},
}
_FREQ_SCALE = {
    "itrs": {45: 1.0, 32: 1.09, 22: 2.38, 16: 3.21, 11: 4.17, 8: 3.85},
    "cons": {45: 1.0, 32: 1.10, 22: 1.19, 16: 1.25, 11: 1.30, 8: 1.34},
}
_ENERGY_SCALE = {
    "itrs": {45: 1.0, 32: 0.66, 22: 0.54, 16: 0.38, 11: 0.25, 8: 0.12},
    "cons": {45: 1.0, 32: 0.71, 22: 0.52, 16: 0.39, 11: 0.29, 8: 0.22},
}


def _factor(table: dict[str, dict[int, float]], node: int, model: str) -> float:
    if model not in SCALING_MODELS:
        raise ConfigError(
            f"unknown scaling model {model!r}; pick one of {SCALING_MODELS}"
        )
    column = table[model]
    if node not in column:
        raise ConfigError(
            f"no projection for tech node {node} nm; "
            f"tabulated nodes are {TECH_NODES}"
        )
    return column[node] / column[REFERENCE_NODE]


def vdd_factor(node: int, model: str = "itrs") -> float:
    """Supply-voltage multiplier at *node*, relative to 32 nm."""
    return _factor(_VDD_SCALE, node, model)


def freq_factor(node: int, model: str = "itrs") -> float:
    """Core-clock multiplier at *node*, relative to 32 nm."""
    return _factor(_FREQ_SCALE, node, model)


def energy_factor(node: int, model: str = "itrs") -> float:
    """Per-instruction-energy (and hence core-power) multiplier at
    *node*, relative to 32 nm."""
    return _factor(_ENERGY_SCALE, node, model)
