"""Utilization traces for the dynamic guard-banding study.

The paper (§VII-B): "the benefits of this simple mechanism depend on
the utilization rates of the processor on real environments".  A
:class:`UtilizationTrace` is a step function of active-core counts over
time; :func:`synthetic_utilization_trace` generates plausible
diurnal-style traces, seeded and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import stream

__all__ = ["UtilizationTrace", "synthetic_utilization_trace"]


@dataclass
class UtilizationTrace:
    """Active-core counts over uniform time intervals.

    ``counts[k]`` is the number of cores that may execute work during
    interval ``k``; every interval spans ``interval_s`` seconds.
    """

    counts: np.ndarray
    interval_s: float
    n_cores: int = 6

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=int)
        if self.counts.size == 0:
            raise ConfigError("trace needs at least one interval")
        if self.interval_s <= 0:
            raise ConfigError("interval must be positive")
        if self.counts.min() < 0 or self.counts.max() > self.n_cores:
            raise ConfigError("active-core counts out of range")

    @property
    def duration_s(self) -> float:
        return float(self.counts.size * self.interval_s)

    @property
    def mean_utilization(self) -> float:
        """Average fraction of cores active."""
        return float(self.counts.mean() / self.n_cores)

    def occupancy_shares(self) -> dict[int, float]:
        """Fraction of time spent at each active-core count (sums to 1)."""
        values, counts = np.unique(self.counts, return_counts=True)
        total = self.counts.size
        return {int(v): float(c) / total for v, c in zip(values, counts)}


def synthetic_utilization_trace(
    seed: int = 0,
    intervals: int = 288,
    interval_s: float = 300.0,
    n_cores: int = 6,
    base_load: float = 0.35,
    peak_load: float = 0.85,
    noise: float = 0.12,
) -> UtilizationTrace:
    """A diurnal utilization trace: low overnight, peaking mid-cycle.

    Defaults produce one day at five-minute resolution.  ``base_load``
    and ``peak_load`` bound the sinusoidal mean; ``noise`` adds seeded
    per-interval jitter before rounding to whole cores.
    """
    if not 0.0 <= base_load <= peak_load <= 1.0:
        raise ConfigError("need 0 <= base_load <= peak_load <= 1")
    if intervals < 1:
        raise ConfigError("need at least one interval")
    rng = stream(seed, "utilization-trace", intervals, interval_s)
    phase = np.linspace(0.0, 2.0 * np.pi, intervals, endpoint=False)
    mean = base_load + (peak_load - base_load) * 0.5 * (1.0 - np.cos(phase))
    jitter = rng.normal(0.0, noise, size=intervals) if noise > 0 else 0.0
    load = np.clip(mean + jitter, 0.0, 1.0)
    counts = np.rint(load * n_cores).astype(int)
    return UtilizationTrace(counts=counts, interval_s=interval_s, n_cores=n_cores)
