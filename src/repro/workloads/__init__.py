"""Workload modeling beyond stressmarks.

The paper's optimization discussion (§VII) reasons about *real* machine
load: customer codes whose ΔI reaches only ~80 % of the stressmarks',
utilization that varies over time, and schedulers that decide where
work lands.  This package provides those abstractions:

* :mod:`.profiles` — named synthetic workload profiles (steady
  services, bursty batch jobs, resonant-risk codes, idle) that compile
  to :class:`~repro.machine.workload.CurrentProgram` via the core's
  power model;
* :mod:`.traces` — utilization traces (active-core counts over time)
  used by the dynamic guard-banding controller.
"""

from .profiles import WorkloadProfile, build_profile_library, compile_profile
from .traces import UtilizationTrace, synthetic_utilization_trace

__all__ = [
    "WorkloadProfile",
    "build_profile_library",
    "compile_profile",
    "UtilizationTrace",
    "synthetic_utilization_trace",
]
