"""Synthetic workload profiles.

A :class:`WorkloadProfile` describes a workload's *electrical
personality* relative to the platform's stressmark envelope: what
fraction of the maximum ΔI its power swings reach, at what dominant
frequency they occur, and whether its activity is steady or bursty.
The paper's customer-code extrapolation ("the magnitude of the ΔI
events generated on each core is around ~80% of the maximum possible
ΔI ... ΔI events are not synchronized") is one such profile.

Profiles compile to :class:`~repro.machine.workload.CurrentProgram`
against a :class:`~repro.core.generator.StressmarkGenerator`, so their
current levels are grounded in the same power model the stressmarks
use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.generator import StressmarkGenerator
from ..errors import ConfigError
from ..machine.workload import CurrentProgram, SyncSpec

__all__ = ["WorkloadProfile", "compile_profile", "build_profile_library"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Electrical personality of a workload class.

    Attributes
    ----------
    name:
        Identifier (``"oltp"``, ``"batch-fp"`` ...).
    delta_i_fraction:
        Power-swing magnitude as a fraction of the platform's maximum
        stressmark ΔI (0 = perfectly steady).
    activity_fraction:
        Baseline power position between the minimum (0) and maximum (1)
        sustained levels — how hot the code runs between swings.
    dominant_freq_hz:
        Characteristic frequency of its power swings; ``None`` for
        steady workloads.
    duty:
        High-phase fraction of a swing period.
    synchronized:
        True only for adversarial/test codes that align their swings
        across cores (real customer code does not).
    """

    name: str
    delta_i_fraction: float
    activity_fraction: float
    dominant_freq_hz: float | None
    duty: float = 0.5
    synchronized: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.delta_i_fraction <= 1.0:
            raise ConfigError(f"{self.name}: delta_i_fraction must be in [0, 1]")
        if not 0.0 <= self.activity_fraction <= 1.0:
            raise ConfigError(f"{self.name}: activity_fraction must be in [0, 1]")
        if self.dominant_freq_hz is not None and self.dominant_freq_hz <= 0:
            raise ConfigError(f"{self.name}: dominant frequency must be positive")
        if self.delta_i_fraction > 0 and self.dominant_freq_hz is None:
            raise ConfigError(
                f"{self.name}: swinging workloads need a dominant frequency"
            )

    @property
    def is_steady(self) -> bool:
        return self.delta_i_fraction == 0.0 or self.dominant_freq_hz is None


def compile_profile(
    profile: WorkloadProfile, generator: StressmarkGenerator
) -> CurrentProgram:
    """Compile *profile* to a current program on *generator*'s platform.

    The platform envelope comes from the generator's max/min power
    sequences: ``i_floor`` is the min-power level, ``i_ceiling`` the
    max-power level; the profile's baseline and swing are placed inside
    that envelope (clamped so the swing never exceeds the ceiling).
    """
    builder = generator.max_builder
    vnom = generator.target.core.vnom
    i_floor = builder._low_estimate.watts / vnom
    i_ceiling = builder._high_estimate.watts / vnom
    span = i_ceiling - i_floor

    swing = profile.delta_i_fraction * span
    base = i_floor + profile.activity_fraction * (span - swing)
    if profile.is_steady:
        return CurrentProgram(
            name=f"wl-{profile.name}", i_low=base, i_high=base
        )
    sync = SyncSpec() if profile.synchronized else None
    return CurrentProgram(
        name=f"wl-{profile.name}",
        i_low=base,
        i_high=base + swing,
        freq_hz=profile.dominant_freq_hz,
        duty=profile.duty,
        rise_time=generator.target.core.ramp_time,
        sync=sync,
    )


def build_profile_library(resonant_freq_hz: float = 2.6e6) -> dict[str, WorkloadProfile]:
    """A library of representative workload classes.

    The ``customer-worst`` entry is the paper's extrapolation: ~80 % of
    the maximum ΔI, unsynchronized, at the resonant band (the worst
    place a real code could land).
    """
    return {
        profile.name: profile
        for profile in (
            WorkloadProfile(
                name="idle",
                delta_i_fraction=0.0,
                activity_fraction=0.0,
                dominant_freq_hz=None,
            ),
            WorkloadProfile(
                name="steady-service",
                delta_i_fraction=0.10,
                activity_fraction=0.45,
                dominant_freq_hz=5e4,
            ),
            WorkloadProfile(
                name="oltp",
                delta_i_fraction=0.35,
                activity_fraction=0.55,
                dominant_freq_hz=4e5,
                duty=0.4,
            ),
            WorkloadProfile(
                name="batch-fp",
                delta_i_fraction=0.55,
                activity_fraction=0.70,
                dominant_freq_hz=1.2e6,
                duty=0.6,
            ),
            WorkloadProfile(
                name="customer-worst",
                delta_i_fraction=0.80,
                activity_fraction=0.20,
                dominant_freq_hz=resonant_freq_hz,
            ),
            WorkloadProfile(
                name="didt-test",
                delta_i_fraction=1.0,
                activity_fraction=0.0,
                dominant_freq_hz=resonant_freq_hz,
                synchronized=True,
            ),
        )
    }
