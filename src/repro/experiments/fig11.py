"""Figure 11 — noise sensitivity to ΔI magnitude and source
distribution.

(a) maximum per-core noise vs. the percentage of the chip's maximum ΔI,
    across workload mappings of {idle, medium, max} dI/dt stressmarks;
    noise grows with ΔI, and the achievable ΔI is bounded by the number
    of active cores.
(b) the same dataset grouped by workload distribution (#max-#medium):
    spreading the ΔI sources matters far less than the total ΔI.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..analysis.report import render_table
from ..plan import RunPlan
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


@register_plan("fig11a")
def plan_fig11a(context: ExperimentContext) -> RunPlan:
    return context.plan_delta_i_points()


@register_plan("fig11b")
def plan_fig11b(context: ExperimentContext) -> RunPlan:
    return context.plan_delta_i_points()


@register("fig11a", "Max noise vs. % of maximum ΔI across mappings")
def run_fig11a(context: ExperimentContext) -> ExperimentResult:
    points = context.delta_i_points()
    # Max noise observed at each ΔI level, with the active-core count
    # (the paper's dotted regions).
    by_delta: dict[float, list] = defaultdict(list)
    for point in points:
        by_delta[round(point.delta_i_pct, 1)].append(point)
    rows = []
    scatter = []
    for delta_pct in sorted(by_delta):
        bucket = by_delta[delta_pct]
        worst = max(p.max_p2p for p in bucket)
        min_cores = min(p.active_cores for p in bucket)
        rows.append([f"{delta_pct:.1f}", f"{worst:.1f}", min_cores])
        scatter.append((delta_pct, worst, min_cores))
    text = render_table(
        ["% of max ΔI", "max %p2p", "min active cores"], rows,
        title="Noise vs. ΔI magnitude (paper Fig. 11a)",
    )
    deltas = np.array([s[0] for s in scatter])
    worsts = np.array([s[1] for s in scatter])
    monotone_corr = float(np.corrcoef(deltas, worsts)[0, 1]) if len(scatter) > 2 else 1.0
    near60 = [s for s in scatter if 50 <= s[0] <= 70]
    data = {
        "scatter": scatter,
        "points": points,
        "noise_rises_with_delta_i": monotone_corr > 0.9,
        "noise_at_60pct": max((s[1] for s in near60), default=None),
        "max_noise": float(worsts.max()) if len(scatter) else 0.0,
    }
    return ExperimentResult("fig11a", "Noise vs. ΔI magnitude", text, data)


@register("fig11b", "Average noise vs. workload distribution")
def run_fig11b(context: ExperimentContext) -> ExperimentResult:
    points = context.delta_i_points()
    rows = []
    by_distribution = {}
    for point in points:
        by_distribution.setdefault(point.distribution, []).append(point)
    for distribution in sorted(by_distribution):
        bucket = by_distribution[distribution]
        avg = float(np.mean([np.mean(p.p2p_by_core) for p in bucket]))
        delta = bucket[0].delta_i_pct
        label = f"{distribution[0]}-{distribution[1]}"
        rows.append([label, f"{delta:.1f}", f"{avg:.1f}"])
        by_distribution[distribution] = (delta, avg)
    text = render_table(
        ["#max-#med", "% of max ΔI", "avg %p2p"], rows,
        title="Noise vs. workload distribution (paper Fig. 11b)",
    )
    # Paper's probe: at ~50% ΔI, is a spread 0-6 distribution noisier
    # than a concentrated 3-0 one?  (A weak trend either way.)
    spread = by_distribution.get((0, 6), (None, None))[1]
    packed = by_distribution.get((3, 0), (None, None))[1]
    data = {
        "by_distribution": {
            f"{k[0]}-{k[1]}": v for k, v in by_distribution.items()
        },
        "spread_0_6_avg": spread,
        "packed_3_0_avg": packed,
        "distribution_effect": None
        if spread is None or packed is None
        else spread - packed,
    }
    return ExperimentResult("fig11b", "Noise vs. workload distribution", text, data)
