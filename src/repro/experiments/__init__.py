"""Experiment drivers: one module per paper table/figure.

Each driver regenerates the rows/series of its table or figure on the
simulated platform and renders them as text; the benchmark harness
(``benchmarks/``) wraps these drivers one-to-one, and EXPERIMENTS.md
records paper-vs-measured for each.

Use :func:`repro.experiments.registry.get_experiment` /
:func:`repro.experiments.registry.all_experiments` for programmatic
access, or the ``repro-noise`` CLI.
"""

from .registry import (
    ExperimentResult,
    all_experiments,
    compile_campaign,
    compile_family_campaign,
    compile_plan,
    get_experiment,
    run_experiment,
)
from .common import (
    ExperimentContext,
    context_for_spec,
    default_context,
    quick_context,
)

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "compile_campaign",
    "compile_family_campaign",
    "compile_plan",
    "get_experiment",
    "run_experiment",
    "ExperimentContext",
    "context_for_spec",
    "default_context",
    "quick_context",
]
