"""Figure 7 — noise vs. stimulus frequency (no sync) and the impedance
profile.

(a) maximum per-core %p2p noise when one unsynchronized copy of the
    max dI/dt stressmark runs on each core, swept across stimulus
    frequencies: two resonant bands (low-tens-of-kHz and ~2 MHz).
(b) the PDN impedance profile Z(f) whose peaks the noise bands track,
    with no resonance above 5 MHz (deep-trench eDRAM shift).
"""

from __future__ import annotations

from ..analysis.report import render_series
from ..analysis.sensitivity import (
    default_frequency_grid,
    plan_stimulus_frequency,
    sweep_stimulus_frequency,
)
from ..pdn.impedance import find_resonances, impedance_profile
from ..plan import RunPlan
from ..units import format_freq
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


@register_plan("fig7a")
def plan_fig7a(context: ExperimentContext) -> RunPlan:
    freqs = default_frequency_grid(
        points_per_decade=context.freq_points_per_decade
    )
    return plan_stimulus_frequency(
        context.generator, context.chip, freqs,
        synchronize=False, options=context.options,
    )


@register("fig7a", "Noise vs. stimulus frequency (unsynchronized)")
def run_fig7a(context: ExperimentContext) -> ExperimentResult:
    freqs = default_frequency_grid(
        points_per_decade=context.freq_points_per_decade
    )
    points = sweep_stimulus_frequency(
        context.generator,
        context.chip,
        freqs,
        synchronize=False,
        session=context.session,
    )
    series = {
        f"core{c} %p2p": [p.p2p_by_core[c] for p in points]
        for c in range(context.chip.n_cores)
    }
    text = render_series(
        "stimulus", [format_freq(p.freq_hz) for p in points], series,
        title="Max per-core noise, unsynchronized stressmarks (paper Fig. 7a)",
    )
    peak = max(points, key=lambda p: p.max_p2p)
    data = {
        "freqs_hz": [p.freq_hz for p in points],
        "max_by_core": {c: max(s) for c, s in enumerate(zip(*[p.p2p_by_core for p in points]))},
        "peak_freq_hz": peak.freq_hz,
        "peak_p2p": peak.max_p2p,
        "points": [(p.freq_hz, p.p2p_by_core) for p in points],
    }
    return ExperimentResult("fig7a", "Noise vs. stimulus frequency (unsync)", text, data)


@register("fig7b", "Post-silicon impedance profile Z(f)")
def run_fig7b(context: ExperimentContext) -> ExperimentResult:
    chip = context.chip
    profile = impedance_profile(
        chip.netlist, "load_core0", "core0",
        f_min=1e3, f_max=1e9, modal=chip.modal,
    )
    resonances = find_resonances(profile)
    sample_freqs = [1e3, 1e4, 3.7e4, 1e5, 5e5, 2.6e6, 5e6, 1e7, 1e8, 1e9]
    rows = {"Z (mOhm)": [profile.at(f) * 1e3 for f in sample_freqs]}
    text = render_series(
        "frequency", [format_freq(f) for f in sample_freqs], rows,
        title="PDN impedance profile (paper Fig. 7b)", fmt="{:.3f}",
    )
    text += "\nresonant bands: " + ", ".join(
        f"{format_freq(f)} ({z * 1e3:.2f} mOhm)" for f, z in resonances
    )
    above_5mhz = profile.ohms[profile.freqs_hz > 5e6]
    data = {
        "resonances": resonances,
        "z_at_resonance": resonances[0][1] if resonances else None,
        "no_peak_above_5mhz": bool(
            (above_5mhz.max() if above_5mhz.size else 0.0) < resonances[0][1]
        ),
    }
    return ExperimentResult("fig7b", "Impedance profile Z(f)", text, data)
