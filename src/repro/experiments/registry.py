"""Experiment registry and the shared result record.

Each experiment driver may register two callables: the *executor*
(:func:`register`) that runs the experiment and renders its result, and
the *plan compiler* (:func:`register_plan`) that returns the
declarative :class:`~repro.plan.spec.RunPlan` of exactly the chip runs
the executor would issue.  :func:`compile_campaign` merges the plans of
a multi-figure campaign into one deduplicated
:class:`~repro.plan.planner.CampaignPlan` — the object the
``repro-noise plan`` dry-run reports on and ``--shard i/N`` slices.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ExperimentError
from ..obs import get_telemetry
from ..plan import CampaignPlan, RunPlan
from .common import ExperimentContext, context_for_spec, default_context

__all__ = [
    "ExperimentResult",
    "register",
    "register_plan",
    "get_experiment",
    "all_experiments",
    "run_experiment",
    "compile_plan",
    "compile_campaign",
    "compile_family_campaign",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Paper reference (``table1``, ``fig7a`` ...).
    title:
        Human-readable description.
    text:
        Rendered rows/series, printable as-is.
    data:
        Structured payload for programmatic checks (tests, EXPERIMENTS
        bookkeeping); contents are experiment specific.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


ExperimentFn = Callable[[ExperimentContext], ExperimentResult]
PlanFn = Callable[[ExperimentContext], RunPlan]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}
_PLANS: dict[str, PlanFn] = {}


def register(experiment_id: str, title: str):
    """Decorator registering an experiment driver under *experiment_id*."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")

        @functools.wraps(fn)
        def timed(context: ExperimentContext) -> ExperimentResult:
            # Per-experiment wall clock, surfaced by ``run --profile``
            # and the exporter's telemetry artifact; under ``--trace``
            # also one span per experiment in the campaign's span tree.
            telemetry = get_telemetry()
            dropped_before = telemetry.counter("engine.points_dropped")
            with telemetry.span(f"experiment.{experiment_id}"):
                with telemetry.time(f"experiment.{experiment_id}.seconds"):
                    result = fn(context)
            dropped = (
                telemetry.counter("engine.points_dropped") - dropped_before
            )
            if dropped:
                # Collect-mode sweeps dropped failed points: mark the
                # count in the exported payload (the event log has the
                # per-point detail).
                result.data.setdefault("dropped_points", dropped)
            return result

        _REGISTRY[experiment_id] = (title, timed)
        return timed

    return wrap


def register_plan(experiment_id: str):
    """Decorator registering an experiment's *plan compiler*: a
    function returning the :class:`RunPlan` of exactly the chip runs
    the registered executor would issue (same mappings, same tags, same
    options — fingerprint-identical, which is what makes planner dedup
    counts match execution counts)."""

    def wrap(fn: PlanFn) -> PlanFn:
        if experiment_id in _PLANS:
            raise ExperimentError(
                f"duplicate plan compiler for {experiment_id!r}"
            )
        _PLANS[experiment_id] = fn
        return fn

    return wrap


def compile_plan(
    experiment_id: str, context: ExperimentContext | None = None
) -> RunPlan:
    """The declarative run plan of one experiment, attributed to its
    id.  Experiments without chip runs (``fig7b``, ``fig13b``,
    ``table1`` — pure analysis of the platform) compile to an empty
    plan."""
    _ensure_loaded()
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    context = context or default_context()
    compiler = _PLANS.get(experiment_id)
    if compiler is None:
        return RunPlan.for_chip(context.chip)
    return compiler(context).tagged(experiment_id)


def compile_campaign(
    experiment_ids: Sequence[str],
    context: ExperimentContext | None = None,
) -> CampaignPlan:
    """Merge the plans of *experiment_ids* into one deduplicated
    campaign plan (shared runs — e.g. Fig. 7a/9's unsynchronized
    frequency sweep, Fig. 11/13a's ΔI dataset — collapse here, before
    execution)."""
    context = context or default_context()
    with get_telemetry().span(
        "plan.compile", experiments=list(experiment_ids)
    ):
        plans = [compile_plan(eid, context) for eid in experiment_ids]
        return CampaignPlan.compile(plans)


def compile_family_campaign(
    experiment_ids: Sequence[str],
    family,
    *,
    quick: bool = False,
    members: Sequence | None = None,
):
    """Compile *experiment_ids* across every member of a chip *family*
    (a :class:`~repro.chips.ChipFamily` or a builtin family name).

    Each member gets its own spec-parameterized context (same fidelity
    tier for all members) and its own deduplicated
    :class:`CampaignPlan`; the result is the
    :class:`~repro.plan.FamilyCampaign` the family CLI verb plans,
    shards and executes.  The reference member's plan is fingerprint-
    identical to what :func:`compile_campaign` produces standalone.
    """
    from ..chips import get_family
    from ..plan import FamilyCampaign

    if isinstance(family, str):
        family = get_family(family)

    def plan_for(spec) -> CampaignPlan:
        context = context_for_spec(spec, quick=quick)
        plans = [compile_plan(eid, context) for eid in experiment_ids]
        return CampaignPlan.compile(plans)

    with get_telemetry().span(
        "plan.compile_family",
        family=family.name,
        experiments=list(experiment_ids),
    ):
        return FamilyCampaign.compile(family, plan_for, members=members)


def _ensure_loaded() -> None:
    # Import the driver modules for their registration side effects.
    from . import (  # noqa: F401
        ctrl, table1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
        fig15,
    )


def all_experiments() -> dict[str, str]:
    """Mapping of experiment id → title."""
    _ensure_loaded()
    return {eid: title for eid, (title, _) in sorted(_REGISTRY.items())}


def get_experiment(experiment_id: str) -> ExperimentFn:
    """The driver function for *experiment_id*."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, context: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment (building the default context if needed)."""
    driver = get_experiment(experiment_id)
    return driver(context or default_context())
