"""Experiment registry and the shared result record."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ExperimentError
from ..telemetry import get_telemetry
from .common import ExperimentContext, default_context

__all__ = [
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Paper reference (``table1``, ``fig7a`` ...).
    title:
        Human-readable description.
    text:
        Rendered rows/series, printable as-is.
    data:
        Structured payload for programmatic checks (tests, EXPERIMENTS
        bookkeeping); contents are experiment specific.
    """

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


ExperimentFn = Callable[[ExperimentContext], ExperimentResult]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def register(experiment_id: str, title: str):
    """Decorator registering an experiment driver under *experiment_id*."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")

        @functools.wraps(fn)
        def timed(context: ExperimentContext) -> ExperimentResult:
            # Per-experiment wall clock, surfaced by ``run --profile``
            # and the exporter's telemetry artifact; under ``--trace``
            # also one span per experiment in the campaign's span tree.
            telemetry = get_telemetry()
            dropped_before = telemetry.counter("engine.points_dropped")
            with telemetry.span(f"experiment.{experiment_id}"):
                with telemetry.time(f"experiment.{experiment_id}.seconds"):
                    result = fn(context)
            dropped = (
                telemetry.counter("engine.points_dropped") - dropped_before
            )
            if dropped:
                # Collect-mode sweeps dropped failed points: mark the
                # count in the exported payload (the event log has the
                # per-point detail).
                result.data.setdefault("dropped_points", dropped)
            return result

        _REGISTRY[experiment_id] = (title, timed)
        return timed

    return wrap


def _ensure_loaded() -> None:
    # Import the driver modules for their registration side effects.
    from . import (  # noqa: F401
        table1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15,
    )


def all_experiments() -> dict[str, str]:
    """Mapping of experiment id → title."""
    _ensure_loaded()
    return {eid: title for eid, (title, _) in sorted(_REGISTRY.items())}


def get_experiment(experiment_id: str) -> ExperimentFn:
    """The driver function for *experiment_id*."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, context: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment (building the default context if needed)."""
    driver = get_experiment(experiment_id)
    return driver(context or default_context())
