"""Figure 13 — inter-core noise propagation.

(a) the correlation matrix of per-core noise across all workload
    mappings: all pairs correlate strongly (shared PDN), but two
    clusters emerge — {0,2,4} and {1,3,5}, the two core rows separated
    by the damping L3;
(b) a simulated ΔI step on core 0: cores 2 and 4 receive the noise
    faster and more strongly than the opposite row.
"""

from __future__ import annotations

import numpy as np

from ..analysis.correlation import correlation_matrix, detect_clusters
from ..analysis.propagation import propagation_traces
from ..analysis.report import render_table
from ..pdn.topology import row_cores
from ..plan import RunPlan
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


@register_plan("fig13a")
def plan_fig13a(context: ExperimentContext) -> RunPlan:
    # Identical dataset to Fig. 11a/11b — the planner dedups it.
    return context.plan_delta_i_points()


@register("fig13a", "Inter-core noise correlation across mappings")
def run_fig13a(context: ExperimentContext) -> ExperimentResult:
    points = context.delta_i_points()
    n_cores = context.chip.n_cores
    matrix = correlation_matrix(points)
    clusters = detect_clusters(matrix)
    rows = [
        [f"core{i}"] + [f"{matrix[i, j]:.3f}" for j in range(n_cores)]
        for i in range(n_cores)
    ]
    text = render_table(
        ["", *(f"core{j}" for j in range(n_cores))], rows,
        title="Noise correlation across workload mappings (paper Fig. 13a)",
    )
    text += f"\nclusters: {clusters[0]} and {clusters[1]}"
    off_diagonal = matrix[~np.eye(n_cores, dtype=bool)]
    data = {
        "matrix": matrix,
        "clusters": clusters,
        "min_correlation": float(off_diagonal.min()),
        "all_above_0_9": bool(off_diagonal.min() > 0.9),
        "row_clusters_detected": sorted(map(tuple, clusters))
        == sorted(row_cores(n_cores)),
    }
    return ExperimentResult("fig13a", "Inter-core noise correlation", text, data)


@register("fig13b", "ΔI step on core 0: propagation to the other cores")
def run_fig13b(context: ExperimentContext) -> ExperimentResult:
    mark = context.generator.max_didt(freq_hz=context.resonant_freq_hz)
    trace = propagation_traces(
        context.chip, source_core=0, delta_i=mark.delta_i
    )
    rows = [
        [
            f"core{c}",
            f"{trace.peak_droop_by_core[c] * 1e3:.2f}",
            f"{trace.time_to_10pct_by_core[c] * 1e9:.1f}",
        ]
        for c in range(context.chip.n_cores)
    ]
    text = render_table(
        ["observer", "peak droop (mV)", "time to 10% of peak (ns)"], rows,
        title="ΔI step on core 0 (paper Fig. 13b, design-tool mode)",
    )
    north, south = row_cores(context.chip.n_cores)
    same_cores = [c for c in north if c != 0]
    same_row = [trace.peak_droop_by_core[c] for c in same_cores]
    cross_row = [trace.peak_droop_by_core[c] for c in south]
    same_row_t = [trace.time_to_10pct_by_core[c] for c in same_cores]
    cross_row_t = [trace.time_to_10pct_by_core[c] for c in south]
    data = {
        "trace": trace,
        "same_row_stronger": min(same_row) > max(cross_row),
        "same_row_faster": max(same_row_t) <= min(cross_row_t),
        "peaks_mv": [p * 1e3 for p in trace.peak_droop_by_core],
    }
    return ExperimentResult("fig13b", "Step propagation from core 0", text, data)
