"""Figure 10 — noise sensitivity to ΔI event misalignment.

Stressmarks at the resonant stimulus frequency synchronize every 4 ms
with programmed offsets spread evenly over [0, max-misalignment] in
62.5 ns TOD steps; per-core noise is averaged across offset→core
assignments.  A small misalignment collapses most of the
synchronization effect.
"""

from __future__ import annotations

from ..analysis.report import render_series
from ..analysis.sensitivity import plan_misalignment, sweep_misalignment
from ..machine.tod import TOD_STEP
from ..plan import RunPlan
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


def _misalignments() -> list[float]:
    return [k * TOD_STEP for k in range(0, 11)]  # 0 .. 625 ns


@register_plan("fig10")
def plan_fig10(context: ExperimentContext) -> RunPlan:
    return plan_misalignment(
        context.generator,
        context.chip,
        _misalignments(),
        freq_hz=context.resonant_freq_hz,
        options=context.options,
        assignments_sample=context.misalignment_assignments,
    )


@register("fig10", "Noise vs. maximum allowed ΔI misalignment")
def run(context: ExperimentContext) -> ExperimentResult:
    misalignments = _misalignments()
    results = sweep_misalignment(
        context.generator,
        context.chip,
        misalignments,
        freq_hz=context.resonant_freq_hz,
        session=context.session,
        assignments_sample=context.misalignment_assignments,
    )
    xs = [f"{m * 1e9:.1f}ns" for m in misalignments]
    series = {
        f"core{c} %p2p": [results[m][c] for m in misalignments]
        for c in range(context.chip.n_cores)
    }
    text = render_series(
        "max misalignment", xs, series,
        title="Average noise vs. maximum allowed misalignment (paper Fig. 10)",
    )
    aligned = max(results[misalignments[0]])
    one_step = max(results[misalignments[1]])
    tail = max(max(results[m]) for m in misalignments[4:])
    data = {
        "misalignments_s": misalignments,
        "noise_by_misalignment": {m: results[m] for m in misalignments},
        "aligned_max": aligned,
        "one_step_max": one_step,
        "tail_max": tail,
        "one_step_drop": aligned - one_step,
    }
    return ExperimentResult("fig10", "Noise vs. misalignment", text, data)
