"""Figure 14 — two mappings of three worst-case stressmarks.

The paper contrasts a cross-cluster mapping (cores 1, 4, 5 — worst-case
24.6 %p2p) with a same-cluster mapping (cores 0, 2, 4 — worst-case
28.2 %p2p): packing the stressmarks into one noise cluster costs a few
%p2p points of worst-case noise, and the middle core of a loaded row is
amplified by sitting between two noisy neighbors.
"""

from __future__ import annotations

from ..analysis.mapping import MappingOutcome
from ..analysis.report import render_table
from ..machine.workload import idle_program
from ..plan import RunPlan
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan

CROSS_CLUSTER = (1, 4, 5)
SAME_CLUSTER = (0, 2, 4)


def _compile_fig14(context: ExperimentContext):
    """The exact (mappings, tags) the driver issues — shared with the
    plan compiler."""
    program = context.generator.max_didt(
        freq_hz=context.resonant_freq_hz, synchronize=True
    ).current_program()
    idle = idle_program(context.generator.target.idle_current)
    placements = (CROSS_CLUSTER, SAME_CLUSTER)
    mappings = [
        [program if c in cores else idle
         for c in range(context.chip.n_cores)]
        for cores in placements
    ]
    tags: list[object] = [("fig14", cores) for cores in placements]
    return mappings, tags, placements


@register_plan("fig14")
def plan_fig14(context: ExperimentContext) -> RunPlan:
    mappings, tags, _ = _compile_fig14(context)
    return RunPlan.from_batch(
        context.chip, mappings, tags, context.options
    )


@register("fig14", "Best-vs-worst mapping of three stressmarks")
def run(context: ExperimentContext) -> ExperimentResult:
    # These two placements are a subset of the exhaustive Fig. 15 study;
    # running them through the session replays its cached results.
    mappings, tags, placements = _compile_fig14(context)
    results = context.session.run_many(mappings, tags=tags)
    outcomes: dict[tuple[int, ...], MappingOutcome] = {
        cores: MappingOutcome(cores=cores, p2p_by_core=result.p2p_by_core)
        for cores, result in zip(placements, results)
    }

    rows = []
    for cores, outcome in outcomes.items():
        rows.append(
            [
                "{" + ",".join(map(str, cores)) + "}",
                " ".join(f"{p:.1f}" for p in outcome.p2p_by_core),
                f"{outcome.worst_noise:.1f}",
                f"core{outcome.worst_core}",
            ]
        )
    text = render_table(
        ["stressmark cores", "per-core %p2p", "worst", "worst core"], rows,
        title="Two mappings of 3 worst-case dI/dt stressmarks (paper Fig. 14)",
    )
    cross = outcomes[CROSS_CLUSTER]
    same = outcomes[SAME_CLUSTER]
    data = {
        "cross_cluster_worst": cross.worst_noise,
        "same_cluster_worst": same.worst_noise,
        "same_cluster_is_noisier": same.worst_noise > cross.worst_noise,
        "penalty": same.worst_noise - cross.worst_noise,
        "outcomes": outcomes,
    }
    return ExperimentResult("fig14", "Mapping comparison (3 stressmarks)", text, data)
