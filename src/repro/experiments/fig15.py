"""Figure 15 — noise-reduction opportunity of noise-aware workload
mapping.

For each number of stressmarks to schedule (0–6), every core placement
is executed; the gap between the worst and the best placement's
worst-case noise is the headroom a noise-aware mapper can claim.  The
gap peaks at intermediate counts (2–4 workloads) and vanishes at the
extremes, where there is no placement freedom.
"""

from __future__ import annotations

from ..analysis.mapping import mapping_extremes, plan_mapping_extremes
from ..analysis.report import render_table
from ..plan import RunPlan
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


@register_plan("fig15")
def plan_fig15(context: ExperimentContext) -> RunPlan:
    program = context.generator.max_didt(
        freq_hz=context.resonant_freq_hz, synchronize=True
    ).current_program()
    return plan_mapping_extremes(
        context.chip, program,
        workload_counts=list(range(0, context.chip.n_cores + 1)),
        options=context.options,
    )


@register("fig15", "Worst-case noise reduction via workload mapping")
def run(context: ExperimentContext) -> ExperimentResult:
    program = context.generator.max_didt(
        freq_hz=context.resonant_freq_hz, synchronize=True
    ).current_program()
    studies = mapping_extremes(
        context.chip, program,
        workload_counts=list(range(0, context.chip.n_cores + 1)),
        session=context.session,
    )
    rows = []
    deltas = {}
    for count in sorted(studies):
        study = studies[count]
        best = study.best
        worst = study.worst
        deltas[count] = study.reduction_opportunity
        rows.append(
            [
                count,
                f"{worst.worst_noise:.1f}",
                "{" + ",".join(map(str, worst.cores)) + "}",
                f"{best.worst_noise:.1f}",
                "{" + ",".join(map(str, best.cores)) + "}",
                f"{study.reduction_opportunity:.1f}",
            ]
        )
    text = render_table(
        ["#workloads", "worst mapping", "cores", "best mapping", "cores", "reduction"],
        rows,
        title="Noise-aware workload mapping opportunity (paper Fig. 15)",
    )
    mid = max(deltas.get(k, 0.0) for k in (2, 3, 4))
    data = {
        "reduction_by_count": deltas,
        "mid_count_reduction": mid,
        "extremes_have_no_freedom": deltas.get(0, 0.0) == 0.0
        and deltas.get(context.chip.n_cores, 0.0) == 0.0,
        "studies": studies,
    }
    return ExperimentResult("fig15", "Mapping opportunity per workload count", text, data)
