"""Durable export of experiment results.

Experiment drivers return structured :class:`ExperimentResult` payloads;
this module persists them so a characterization campaign leaves
artifacts behind (as the paper's lab campaigns do): one text report and
one JSON payload per experiment, plus an index and a telemetry snapshot
(run/cache/solver counters, per-experiment wall clock, latency
histograms with p50/p95/p99, and — under ``--trace`` — per-span-name
summaries and the campaign span tree).

Every artifact is published atomically (temp file + rename), and
:func:`export_telemetry` stands alone so the CLI can flush the
telemetry snapshot even when a campaign dies partway — a failed
campaign must still be diagnosable from its output directory.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from pathlib import Path

import numpy as np

from ..errors import ExperimentError
from ..ioutil import atomic_write_json, atomic_write_text
from ..obs import Telemetry, get_telemetry
from .registry import ExperimentResult

__all__ = [
    "export_result",
    "export_results",
    "export_telemetry",
    "jsonable",
]


def jsonable(value):
    """Recursively convert an experiment payload into JSON-encodable
    data.  Numpy scalars/arrays become Python numbers/lists; dataclasses
    become dicts; tuples become lists; unknown objects fall back to
    ``repr`` (payloads sometimes carry rich analysis objects)."""
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if is_dataclass(value) and not isinstance(value, type):
        return jsonable(asdict(value))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def export_result(result: ExperimentResult, directory: Path | str) -> Path:
    """Write one experiment's text + JSON artifacts (atomically);
    returns the JSON path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / f"{result.experiment_id}.txt"
    json_path = directory / f"{result.experiment_id}.json"
    atomic_write_text(text_path, str(result) + "\n")
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "data": jsonable(result.data),
    }
    atomic_write_json(json_path, payload)
    return json_path


def export_telemetry(
    directory: Path | str, telemetry: Telemetry | None = None
) -> Path:
    """Write ``telemetry.json`` — the campaign's engine counters
    (runs, cache hits/misses, retries/failures, solver calls) and
    timers, from *telemetry* or the process-wide sink.

    Deliberately independent of any experiment results so the CLI can
    flush it from a ``finally`` block when a campaign fails partway.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    snapshot = (telemetry or get_telemetry()).snapshot()
    return atomic_write_json(directory / "telemetry.json", snapshot)


def export_results(
    results: list[ExperimentResult],
    directory: Path | str,
    telemetry: Telemetry | None = None,
) -> Path:
    """Export a batch and write an ``index.json``; returns its path.

    Also writes ``telemetry.json`` via :func:`export_telemetry`.
    """
    if not results:
        raise ExperimentError("nothing to export")
    directory = Path(directory)
    for result in results:
        export_result(result, directory)
    index = {
        result.experiment_id: result.title for result in results
    }
    index_path = directory / "index.json"
    atomic_write_json(index_path, index)
    export_telemetry(directory, telemetry)
    return index_path
