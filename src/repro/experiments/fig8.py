"""Figure 8 — oscilloscope shot of core 0's voltage under the noisiest
stressmark (~2 MHz, synchronized): a 20 µs window and a single period.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import render_table
from ..measure.oscilloscope import capture_trace, plan_capture_trace
from ..plan import RunPlan
from ..units import format_freq, format_time
from .common import ExperimentContext
from .registry import ExperimentResult, register, register_plan


@register_plan("fig8")
def plan_fig8(context: ExperimentContext) -> RunPlan:
    program = context.generator.max_didt(
        freq_hz=context.resonant_freq_hz, synchronize=True
    ).current_program()
    return plan_capture_trace(
        context.chip,
        [program] * context.chip.n_cores,
        options=context.options,
    )


@register("fig8", "Oscilloscope shot of voltage noise on core 0")
def run(context: ExperimentContext) -> ExperimentResult:
    mark = context.generator.max_didt(
        freq_hz=context.resonant_freq_hz, synchronize=True
    )
    program = mark.current_program()
    trace = capture_trace(
        context.chip, [program] * context.chip.n_cores, node="core0",
        session=context.session,
    )
    period = 1.0 / program.freq_hz
    # The burst occupies the head of the capture; crop a settled window.
    start = 2 * period
    shot = trace.crop(start, min(start + 20e-6, trace.times[-1]))
    single = trace.crop(3 * period, 4 * period)

    # Periodicity check: autocorrelation of the windowed waveform should
    # peak at the stimulus period (the paper: "the repetition of the
    # sinusoidal form ... confirms the correctness of the stressmark").
    wave = shot.volts - shot.volts.mean()
    dt = shot.times[1] - shot.times[0]
    correlation = np.correlate(wave, wave, mode="full")[wave.size - 1 :]
    lag_min = int(0.5 * period / dt)
    lag_max = min(int(1.5 * period / dt), correlation.size - 1)
    best_lag = lag_min + int(np.argmax(correlation[lag_min : lag_max + 1]))
    measured_period = best_lag * dt

    rows = [
        ["capture window", format_time(shot.times[-1] - shot.times[0])],
        ["stimulus", format_freq(program.freq_hz)],
        ["waveform p2p", f"{shot.peak_to_peak * 1e3:.1f} mV"],
        ["single-period p2p", f"{single.peak_to_peak * 1e3:.1f} mV"],
        ["autocorrelation period", format_time(measured_period)],
        ["stimulus period", format_time(period)],
    ]
    text = render_table(
        ["quantity", "value"], rows,
        title="Voltage on core 0, max dI/dt stressmark at resonance (paper Fig. 8)",
    )
    data = {
        "p2p_volts": shot.peak_to_peak,
        "single_period_p2p_volts": single.peak_to_peak,
        "measured_period_s": measured_period,
        "stimulus_period_s": period,
        "period_match": abs(measured_period - period) < 0.1 * period,
        "times": shot.times,
        "volts": shot.volts,
    }
    return ExperimentResult("fig8", "Oscilloscope shot (20 µs + single period)", text, data)
