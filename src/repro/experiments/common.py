"""Shared experiment context: the reference platform, built once.

The expensive artifacts — the EPI profile, the max-power search, the
chip's modal decomposition and response library, and the ΔI mapping
dataset shared by Figures 11 and 13a — are cached on the context so a
full experiment suite builds each of them exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..analysis.sensitivity import DeltaIMappingPoint, sweep_delta_i_mappings
from ..core.generator import StressmarkGenerator
from ..machine.chip import Chip, reference_chip
from ..machine.runner import ChipRunner, RunOptions

__all__ = ["ExperimentContext", "default_context", "quick_context"]

#: The resonant stimulus frequency of the reference chip (its first
#: droop sits at ~2.6 MHz; the paper's platform showed ~2 MHz).
RESONANT_FREQ_HZ = 2.6e6


@dataclass
class ExperimentContext:
    """Bound platform + tuning knobs for one experiment suite run."""

    generator: StressmarkGenerator
    chip: Chip
    options: RunOptions
    freq_points_per_decade: int = 5
    delta_i_placements: int = 4
    misalignment_assignments: int = 6
    resonant_freq_hz: float = RESONANT_FREQ_HZ
    _delta_i_points: list[DeltaIMappingPoint] | None = field(
        default=None, repr=False
    )

    @property
    def runner(self) -> ChipRunner:
        return ChipRunner(self.chip)

    def delta_i_points(self) -> list[DeltaIMappingPoint]:
        """The ΔI workload-mapping dataset (Figures 11 and 13a),
        computed once per context."""
        if self._delta_i_points is None:
            self._delta_i_points = sweep_delta_i_mappings(
                self.generator,
                self.chip,
                freq_hz=self.resonant_freq_hz,
                options=self.options,
                placements_per_distribution=self.delta_i_placements,
            )
        return self._delta_i_points


@lru_cache(maxsize=2)
def default_context() -> ExperimentContext:
    """The full-fidelity context used by the benchmark harness."""
    return ExperimentContext(
        generator=StressmarkGenerator(epi_repetitions=400),
        chip=reference_chip(),
        options=RunOptions(segments=8),
    )


@lru_cache(maxsize=2)
def quick_context() -> ExperimentContext:
    """A reduced-cost context for tests and smoke runs: shorter EPI
    loops, fewer segments and sweep points.  Shapes are preserved;
    absolute readings may shift by a quantization step."""
    return ExperimentContext(
        generator=StressmarkGenerator(epi_repetitions=80, ipc_keep=200),
        chip=reference_chip(),
        options=RunOptions(segments=4, base_samples=1536),
        freq_points_per_decade=3,
        delta_i_placements=2,
        misalignment_assignments=3,
    )
