"""Shared experiment context: the reference platform, built once.

The expensive artifacts are shared at two levels.  The heavyweight
*platform* pieces — the stressmark generator (EPI profile + max-power
search) and the chip (modal decomposition + response library) — are
memoized per parameter set at module level, so every context over the
same platform reuses them.  The *runs* themselves are deduplicated by
the engine's content-addressed result cache: the ΔI mapping dataset
shared by Figures 11 and 13a, the unsynchronized frequency sweep shared
by Figures 7a and 9, and the placement studies shared by Figures 14/15
are each solved once per campaign no matter how many figures (or
repeated context factories) ask for them.

``context_for_spec()`` is *the* context factory: it binds a declarative
:class:`~repro.chips.ChipSpec` (the reference spec when unspecified) to
a fidelity tier, building the member chip through the process-wide
:func:`~repro.chips.build_chip` memo so every context over the same
chip fingerprint shares the heavy solver artifacts.
``default_context()`` / ``quick_context()`` are thin wrappers over it;
each call returns a fresh :class:`ExperimentContext` with fresh
:class:`RunOptions`, so mutating one caller's context (e.g. flipping
``collect_waveforms``) can no longer leak into another's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from ..analysis.sensitivity import (
    DeltaIMappingPoint,
    plan_delta_i_mappings,
    sweep_delta_i_mappings,
)
from ..chips import ChipSpec, build_chip, reference_spec
from ..core.generator import StressmarkGenerator
from ..engine import SimulationSession
from ..machine.chip import Chip
from ..machine.runner import ChipRunner, RunOptions
from ..plan import RunPlan

__all__ = [
    "ExperimentContext",
    "context_for_spec",
    "default_context",
    "quick_context",
]

#: The resonant stimulus frequency of the reference chip (its first
#: droop sits at ~2.6 MHz; the paper's platform showed ~2 MHz).
RESONANT_FREQ_HZ = 2.6e6


@dataclass
class ExperimentContext:
    """Bound platform + tuning knobs for one experiment suite run."""

    generator: StressmarkGenerator
    chip: Chip
    options: RunOptions
    freq_points_per_decade: int = 5
    delta_i_placements: int = 4
    misalignment_assignments: int = 6
    resonant_freq_hz: float = RESONANT_FREQ_HZ
    #: The declarative spec this context's chip was compiled from
    #: (``None`` for contexts built around a hand-made chip).
    spec: ChipSpec | None = None
    #: ``"raise"`` aborts an experiment on a permanently failed run;
    #: ``"collect"`` (the CLI's ``--on-failure collect``) keeps partial
    #: sweeps — the drivers drop and trace the failed points instead.
    on_failure: str = "raise"
    _session: SimulationSession | None = field(default=None, repr=False)

    @property
    def session(self) -> SimulationSession:
        """The engine session every run of this context executes
        through (built over the process-shared result cache and the
        environment-selected executor)."""
        if self._session is None:
            self._session = SimulationSession(
                self.chip, self.options, on_failure=self.on_failure
            )
        return self._session

    @property
    def runner(self) -> ChipRunner:
        """The raw (uncached) runner underneath the session."""
        return self.session.runner

    def delta_i_points(self) -> list[DeltaIMappingPoint]:
        """The ΔI workload-mapping dataset (Figures 11 and 13a); its
        runs are served from the engine cache after the first sweep."""
        return sweep_delta_i_mappings(
            self.generator,
            self.chip,
            freq_hz=self.resonant_freq_hz,
            options=self.options,
            placements_per_distribution=self.delta_i_placements,
            session=self.session,
        )

    def plan_delta_i_points(self) -> RunPlan:
        """The declarative form of :meth:`delta_i_points` — the one
        dataset Figures 11a, 11b and 13a all compile to, so the
        campaign planner collapses their requests to a single set of
        unique runs."""
        return plan_delta_i_mappings(
            self.generator,
            self.chip,
            freq_hz=self.resonant_freq_hz,
            options=self.options,
            placements_per_distribution=self.delta_i_placements,
        )


@lru_cache(maxsize=4)
def _shared_generator(
    epi_repetitions: int, ipc_keep: int | None = None
) -> StressmarkGenerator:
    """Process-wide generator memo (EPI profile + search are pure
    functions of these parameters)."""
    if ipc_keep is None:
        return StressmarkGenerator(epi_repetitions=epi_repetitions)
    return StressmarkGenerator(
        epi_repetitions=epi_repetitions, ipc_keep=ipc_keep
    )


def _env_on_failure() -> str:
    """Failure mode from ``$REPRO_ON_FAILURE`` (the ``--on-failure``
    CLI flag exports it); ``raise`` when unset."""
    return os.environ.get("REPRO_ON_FAILURE", "").strip().lower() or "raise"


def context_for_spec(
    spec: ChipSpec | None = None, *, quick: bool = False
) -> ExperimentContext:
    """The spec-parameterized context factory.

    Binds *spec* (the reference spec when ``None``) to the requested
    fidelity tier.  The chip is built through the process-wide
    :func:`~repro.chips.build_chip` memo, so every context over the
    same chip fingerprint — default or family member — shares one set
    of heavy solver artifacts, and the default spec's contexts are
    bit-for-bit the contexts the pre-family factories produced.

    ``quick=True`` selects the reduced-cost tier for tests and smoke
    runs: shorter EPI loops, fewer segments and sweep points.  Shapes
    are preserved; absolute readings may shift by a quantization step.
    """
    spec = spec if spec is not None else reference_spec()
    if quick:
        return ExperimentContext(
            generator=_shared_generator(epi_repetitions=80, ipc_keep=200),
            chip=build_chip(spec),
            options=RunOptions(segments=4, base_samples=1536),
            freq_points_per_decade=3,
            delta_i_placements=2,
            misalignment_assignments=3,
            spec=spec,
            on_failure=_env_on_failure(),
        )
    return ExperimentContext(
        generator=_shared_generator(epi_repetitions=400),
        chip=build_chip(spec),
        options=RunOptions(segments=8),
        spec=spec,
        on_failure=_env_on_failure(),
    )


def default_context() -> ExperimentContext:
    """A full-fidelity context over the reference chip (benchmark
    harness fidelity) — :func:`context_for_spec` with the defaults.
    """
    return context_for_spec()


def quick_context() -> ExperimentContext:
    """A reduced-cost context over the reference chip —
    :func:`context_for_spec` with ``quick=True``.
    """
    return context_for_spec(quick=True)
