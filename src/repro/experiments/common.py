"""Shared experiment context: the reference platform, built once.

The expensive artifacts are shared at two levels.  The heavyweight
*platform* pieces — the stressmark generator (EPI profile + max-power
search) and the chip (modal decomposition + response library) — are
memoized per parameter set at module level, so every context over the
same platform reuses them.  The *runs* themselves are deduplicated by
the engine's content-addressed result cache: the ΔI mapping dataset
shared by Figures 11 and 13a, the unsynchronized frequency sweep shared
by Figures 7a and 9, and the placement studies shared by Figures 14/15
are each solved once per campaign no matter how many figures (or
repeated context factories) ask for them.

``default_context()`` / ``quick_context()`` are *factories*: each call
returns a fresh :class:`ExperimentContext` with fresh
:class:`RunOptions`, so mutating one caller's context (e.g. flipping
``collect_waveforms``) can no longer leak into another's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from ..analysis.sensitivity import (
    DeltaIMappingPoint,
    plan_delta_i_mappings,
    sweep_delta_i_mappings,
)
from ..core.generator import StressmarkGenerator
from ..engine import SimulationSession
from ..machine.chip import Chip, reference_chip
from ..machine.runner import ChipRunner, RunOptions
from ..plan import RunPlan

__all__ = ["ExperimentContext", "default_context", "quick_context"]

#: The resonant stimulus frequency of the reference chip (its first
#: droop sits at ~2.6 MHz; the paper's platform showed ~2 MHz).
RESONANT_FREQ_HZ = 2.6e6


@dataclass
class ExperimentContext:
    """Bound platform + tuning knobs for one experiment suite run."""

    generator: StressmarkGenerator
    chip: Chip
    options: RunOptions
    freq_points_per_decade: int = 5
    delta_i_placements: int = 4
    misalignment_assignments: int = 6
    resonant_freq_hz: float = RESONANT_FREQ_HZ
    #: ``"raise"`` aborts an experiment on a permanently failed run;
    #: ``"collect"`` (the CLI's ``--on-failure collect``) keeps partial
    #: sweeps — the drivers drop and trace the failed points instead.
    on_failure: str = "raise"
    _session: SimulationSession | None = field(default=None, repr=False)

    @property
    def session(self) -> SimulationSession:
        """The engine session every run of this context executes
        through (built over the process-shared result cache and the
        environment-selected executor)."""
        if self._session is None:
            self._session = SimulationSession(
                self.chip, self.options, on_failure=self.on_failure
            )
        return self._session

    @property
    def runner(self) -> ChipRunner:
        """The raw (uncached) runner underneath the session."""
        return self.session.runner

    def delta_i_points(self) -> list[DeltaIMappingPoint]:
        """The ΔI workload-mapping dataset (Figures 11 and 13a); its
        runs are served from the engine cache after the first sweep."""
        return sweep_delta_i_mappings(
            self.generator,
            self.chip,
            freq_hz=self.resonant_freq_hz,
            options=self.options,
            placements_per_distribution=self.delta_i_placements,
            session=self.session,
        )

    def plan_delta_i_points(self) -> RunPlan:
        """The declarative form of :meth:`delta_i_points` — the one
        dataset Figures 11a, 11b and 13a all compile to, so the
        campaign planner collapses their requests to a single set of
        unique runs."""
        return plan_delta_i_mappings(
            self.generator,
            self.chip,
            freq_hz=self.resonant_freq_hz,
            options=self.options,
            placements_per_distribution=self.delta_i_placements,
        )


@lru_cache(maxsize=4)
def _shared_generator(
    epi_repetitions: int, ipc_keep: int | None = None
) -> StressmarkGenerator:
    """Process-wide generator memo (EPI profile + search are pure
    functions of these parameters)."""
    if ipc_keep is None:
        return StressmarkGenerator(epi_repetitions=epi_repetitions)
    return StressmarkGenerator(
        epi_repetitions=epi_repetitions, ipc_keep=ipc_keep
    )


@lru_cache(maxsize=1)
def _shared_chip() -> Chip:
    """Process-wide reference chip memo (modal decomposition + response
    library are immutable once built)."""
    return reference_chip()


def _env_on_failure() -> str:
    """Failure mode from ``$REPRO_ON_FAILURE`` (the ``--on-failure``
    CLI flag exports it); ``raise`` when unset."""
    return os.environ.get("REPRO_ON_FAILURE", "").strip().lower() or "raise"


def default_context() -> ExperimentContext:
    """A full-fidelity context (benchmark harness fidelity).

    Factory semantics: every call returns a *fresh* context with fresh
    options; the heavyweight generator/chip artifacts are shared, and
    run results are shared through the engine cache.
    """
    return ExperimentContext(
        generator=_shared_generator(epi_repetitions=400),
        chip=_shared_chip(),
        options=RunOptions(segments=8),
        on_failure=_env_on_failure(),
    )


def quick_context() -> ExperimentContext:
    """A reduced-cost context for tests and smoke runs: shorter EPI
    loops, fewer segments and sweep points.  Shapes are preserved;
    absolute readings may shift by a quantization step.  Factory
    semantics, like :func:`default_context`.
    """
    return ExperimentContext(
        generator=_shared_generator(epi_repetitions=80, ipc_keep=200),
        chip=_shared_chip(),
        options=RunOptions(segments=4, base_samples=1536),
        freq_points_per_decade=3,
        delta_i_placements=2,
        misalignment_assignments=3,
        on_failure=_env_on_failure(),
    )
